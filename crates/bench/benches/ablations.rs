//! Criterion ablations over RIP's own design choices (DESIGN.md §6):
//! coarse-seed library size, candidate-window half-width, and the Newton
//! polish - the knobs the paper fixes in Section 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_core::{rip, tau_min_paper, RipConfig};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::{RepeaterLibrary, Technology};

fn bench_ablations(c: &mut Criterion) {
    let tech = Technology::generic_180nm();
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let target = tau_min_paper(&net, tech.device()) * 1.4;

    let mut group = c.benchmark_group("rip_coarse_library_size");
    group.sample_size(10);
    for count in [3usize, 5, 8] {
        let mut config = RipConfig::paper();
        config.coarse.library =
            RepeaterLibrary::uniform(80.0, 320.0 / (count - 1) as f64, count)
                .expect("valid library");
        group.bench_with_input(BenchmarkId::from_parameter(count), &config, |b, cfg| {
            b.iter(|| rip(&net, &tech, target, cfg).expect("feasible"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rip_window_half_slots");
    group.sample_size(10);
    for half in [5usize, 10, 20] {
        let mut config = RipConfig::paper();
        config.fine.window_half_slots = half;
        group.bench_with_input(BenchmarkId::from_parameter(half), &config, |b, cfg| {
            b.iter(|| rip(&net, &tech, target, cfg).expect("feasible"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rip_newton_polish");
    group.sample_size(10);
    for polish in [false, true] {
        let mut config = RipConfig::paper();
        config.refine.widths.newton_polish = polish;
        group.bench_with_input(BenchmarkId::from_parameter(polish), &config, |b, cfg| {
            b.iter(|| rip(&net, &tech, target, cfg).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
