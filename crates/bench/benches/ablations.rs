//! Ablations over RIP's own design choices (DESIGN.md §6): coarse-seed
//! library size, candidate-window half-width, and the Newton polish - the
//! knobs the paper fixes in Section 6. Each configuration gets its own
//! [`Engine`] session, mirroring how a production deployment would pin a
//! configuration.

use rip_bench::harness::run_case;
use rip_core::{Engine, RipConfig};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::{RepeaterLibrary, Technology};

fn main() {
    let tech = Technology::generic_180nm();
    let probe = Engine::paper(tech.clone());
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let target = probe.tau_min(&net) * 1.4;

    println!("# rip_coarse_library_size");
    for count in [3usize, 5, 8] {
        let mut config = RipConfig::paper();
        config.coarse.library = RepeaterLibrary::uniform(80.0, 320.0 / (count - 1) as f64, count)
            .expect("valid library");
        let engine = Engine::new(tech.clone(), config);
        run_case(&format!("rip_coarse_library_size/{count}"), || {
            engine.solve(&net, target).expect("feasible");
        });
    }

    println!("# rip_window_half_slots");
    for half in [5usize, 10, 20] {
        let mut config = RipConfig::paper();
        config.fine.window_half_slots = half;
        let engine = Engine::new(tech.clone(), config);
        run_case(&format!("rip_window_half_slots/{half}"), || {
            engine.solve(&net, target).expect("feasible");
        });
    }

    println!("# rip_newton_polish");
    for polish in [false, true] {
        let mut config = RipConfig::paper();
        config.refine.widths.newton_polish = polish;
        let engine = Engine::new(tech.clone(), config);
        run_case(&format!("rip_newton_polish/{polish}"), || {
            engine.solve(&net, target).expect("feasible");
        });
    }
}
