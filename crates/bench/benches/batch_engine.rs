//! Bench for the batch [`Engine`]: session-cached single-net solves vs
//! cold one-shot solves, and parallel batch throughput. The `bench_batch`
//! binary runs the larger 100-net version and records it in
//! `BENCH_batch.json`.

use rip_bench::harness::run_case;
use rip_core::{rip, BatchTarget, Engine, RipConfig};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;

fn main() {
    let tech = Technology::generic_180nm();
    let config = RipConfig::paper();
    let nets = NetGenerator::suite(RandomNetConfig::default(), 2005, 10).expect("valid config");
    let engine = Engine::new(tech.clone(), config.clone());
    let targets: Vec<f64> = nets.iter().map(|net| engine.tau_min(net) * 1.4).collect();
    let batch_target = BatchTarget::PerNetFs(targets.clone());

    run_case("engine/solve_cached_single_net", || {
        engine.solve(&nets[0], targets[0]).expect("feasible");
    });

    run_case("free_fn/rip_cold_single_net", || {
        rip(&nets[0], &tech, targets[0], &config).expect("feasible");
    });

    run_case("engine/solve_batch_10", || {
        let outs = engine.solve_batch(&nets, &batch_target);
        assert!(outs.iter().all(Result::is_ok));
    });

    run_case("free_fn/sequential_10", || {
        for (net, &t) in nets.iter().zip(&targets) {
            rip(net, &tech, t, &config).expect("feasible");
        }
    });
}
