//! Bench for the Table 2 runtime axis: baseline power-DP cost as the
//! library granularity shrinks over the fixed (10u, 400u) range.
//!
//! Expected shape: runtime grows steeply as g_DP goes 40u -> 10u (the
//! pseudo-polynomial (cap, delay, width) frontier), while RIP's cost
//! (benched in `rip_pipeline`) stays flat.

use rip_bench::harness::run_case;
use rip_core::{BaselineConfig, Engine};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;

fn main() {
    let engine = Engine::paper(Technology::generic_180nm());
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let target = engine.tau_min(&net) * 1.5;

    println!("# baseline_dp_granularity");
    for g in [40.0, 30.0, 20.0, 10.0] {
        let config = BaselineConfig::paper_table2(g);
        run_case(&format!("baseline_dp_granularity/{g}u"), || {
            engine
                .baseline(&net, &config, target)
                .expect("feasible target");
        });
    }
}
