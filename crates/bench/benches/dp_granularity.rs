//! Criterion bench for the Table 2 runtime axis: baseline power-DP cost
//! as the library granularity shrinks over the fixed (10u, 400u) range.
//!
//! Expected shape: runtime grows steeply as g_DP goes 40u -> 10u (the
//! pseudo-polynomial (cap, delay, width) frontier), while RIP's cost
//! (benched in `rip_pipeline`) stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_core::{baseline_dp, tau_min_paper, BaselineConfig};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;

fn bench_dp_granularity(c: &mut Criterion) {
    let tech = Technology::generic_180nm();
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let target = tau_min_paper(&net, tech.device()) * 1.5;

    let mut group = c.benchmark_group("baseline_dp_granularity");
    group.sample_size(10);
    for g in [40.0, 30.0, 20.0, 10.0] {
        let config = BaselineConfig::paper_table2(g);
        group.bench_with_input(BenchmarkId::from_parameter(g as u64), &config, |b, cfg| {
            b.iter(|| {
                baseline_dp(&net, tech.device(), cfg, target).expect("feasible target")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_granularity);
criterion_main!(benches);
