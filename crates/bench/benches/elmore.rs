//! Criterion bench for the delay substrate: RC-profile interval queries
//! and full assignment evaluation (the inner loops of both DP and
//! REFINE).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_delay::{evaluate, Repeater, RepeaterAssignment};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;
use std::hint::black_box;

fn bench_elmore(c: &mut Criterion) {
    let tech = Technology::generic_180nm();
    let net = NetGenerator::suite(RandomNetConfig::default(), 7, 1)
        .expect("valid config")
        .remove(0);
    let len = net.total_length();

    c.bench_function("profile_interval_query", |b| {
        let profile = net.profile();
        let mut x = 0.1 * len;
        b.iter(|| {
            x = (x + 137.0) % (0.5 * len);
            black_box(profile.interval(x, x + 0.4 * len))
        })
    });

    let mut group = c.benchmark_group("evaluate_assignment");
    for n_reps in [2usize, 8, 24] {
        let spacing = len / (n_reps + 1) as f64;
        let asg = RepeaterAssignment::new(
            (1..=n_reps)
                .map(|i| Repeater::new(spacing * i as f64, 120.0))
                .collect(),
        )
        .expect("valid repeaters");
        group.bench_with_input(BenchmarkId::from_parameter(n_reps), &asg, |b, asg| {
            b.iter(|| evaluate(&net, tech.device(), black_box(asg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_elmore);
criterion_main!(benches);
