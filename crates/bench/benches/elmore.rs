//! Bench for the delay substrate: RC-profile interval queries and full
//! assignment evaluation (the inner loops of both DP and REFINE).

use rip_bench::harness::run_case;
use rip_delay::{evaluate, Repeater, RepeaterAssignment};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;
use std::hint::black_box;

fn main() {
    let tech = Technology::generic_180nm();
    let net = NetGenerator::suite(RandomNetConfig::default(), 7, 1)
        .expect("valid config")
        .remove(0);
    let len = net.total_length();

    let profile = net.profile();
    let mut x = 0.1 * len;
    run_case("profile_interval_query", || {
        x = (x + 137.0) % (0.5 * len);
        black_box(profile.interval(x, x + 0.4 * len));
    });

    println!("# evaluate_assignment");
    for n_reps in [2usize, 8, 24] {
        let spacing = len / (n_reps + 1) as f64;
        let asg = RepeaterAssignment::new(
            (1..=n_reps)
                .map(|i| Repeater::new(spacing * i as f64, 120.0))
                .collect(),
        )
        .expect("valid repeaters");
        run_case(&format!("evaluate_assignment/{n_reps}"), || {
            black_box(evaluate(&net, tech.device(), black_box(&asg)));
        });
    }
}
