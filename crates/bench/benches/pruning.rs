//! Bench for Pareto-pruning pressure: power-DP cost vs candidate density
//! (the other axis of the pseudo-polynomial blowup besides width
//! granularity).

use rip_bench::harness::run_case;
use rip_core::Engine;
use rip_dp::{solve_min_power, CandidateSet};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::{RepeaterLibrary, Technology};

fn main() {
    let tech = Technology::generic_180nm();
    let engine = Engine::paper(tech.clone());
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let target = engine.tau_min(&net) * 1.5;
    let library = RepeaterLibrary::range_step(10.0, 400.0, 40.0).expect("valid library");

    println!("# power_dp_candidate_density");
    for step in [400.0, 200.0, 100.0, 50.0] {
        let cands = CandidateSet::uniform(&net, step);
        run_case(&format!("power_dp_candidate_density/{step}um"), || {
            solve_min_power(&net, tech.device(), &library, &cands, target)
                .expect("feasible target");
        });
    }
}
