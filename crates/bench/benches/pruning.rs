//! Criterion bench for Pareto-pruning pressure: power-DP cost vs
//! candidate density (the other axis of the pseudo-polynomial blowup
//! besides width granularity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_core::tau_min_paper;
use rip_dp::{solve_min_power, CandidateSet};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::{RepeaterLibrary, Technology};

fn bench_pruning(c: &mut Criterion) {
    let tech = Technology::generic_180nm();
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let target = tau_min_paper(&net, tech.device()) * 1.5;
    let library = RepeaterLibrary::range_step(10.0, 400.0, 40.0).expect("valid library");

    let mut group = c.benchmark_group("power_dp_candidate_density");
    group.sample_size(10);
    for step in [400.0, 200.0, 100.0, 50.0] {
        let cands = CandidateSet::uniform(&net, step);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{step}um")),
            &cands,
            |b, cands| {
                b.iter(|| {
                    solve_min_power(&net, tech.device(), &library, cands, target)
                        .expect("feasible target")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
