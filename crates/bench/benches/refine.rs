//! Bench for the analytical solver: Lagrangian width solves and the full
//! REFINE loop.

use rip_bench::harness::run_case;
use rip_delay::ChainView;
use rip_net::{NetGenerator, RandomNetConfig};
use rip_refine::{refine, solve_widths, RefineConfig, WidthSolverConfig};
use rip_tech::Technology;

fn main() {
    let tech = Technology::generic_180nm();
    let net = NetGenerator::suite(RandomNetConfig::default(), 2005, 1)
        .expect("valid config")
        .remove(0);
    let len = net.total_length();

    println!("# solve_widths");
    for n in [3usize, 8, 16] {
        let positions: Vec<f64> = (1..=n).map(|i| len * i as f64 / (n + 1) as f64).collect();
        let view = ChainView::new(&net, tech.device(), positions).expect("legal positions");
        let target = view.total_delay(&vec![150.0; n]) * 1.3;
        run_case(&format!("solve_widths/{n}"), || {
            solve_widths(&view, target, &WidthSolverConfig::default()).expect("feasible");
        });
    }

    let n = 8;
    let positions: Vec<f64> = (1..=n)
        .map(|i| len * 0.5 * i as f64 / (n + 1) as f64)
        .collect();
    let view = ChainView::new(&net, tech.device(), positions.clone()).expect("legal");
    let target = view.total_delay(&vec![150.0; n]) * 1.4;
    run_case("refine_loop_skewed_start", || {
        refine(
            &net,
            tech.device(),
            &positions,
            target,
            &RefineConfig::default(),
        )
        .expect("feasible");
    });
}
