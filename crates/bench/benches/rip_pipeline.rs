//! Criterion bench for the full RIP pipeline and its per-stage costs -
//! the "our scheme" side of Table 2's runtime comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rip_core::{rip, tau_min_paper, RipConfig};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;

fn bench_rip_pipeline(c: &mut Criterion) {
    let tech = Technology::generic_180nm();
    let nets = NetGenerator::suite(RandomNetConfig::default(), 2005, 3).expect("valid config");
    let config = RipConfig::paper();

    let mut group = c.benchmark_group("rip_pipeline");
    group.sample_size(10);
    for (i, net) in nets.iter().enumerate() {
        let target = tau_min_paper(net, tech.device()) * 1.5;
        group.bench_with_input(BenchmarkId::new("net", i), net, |b, net| {
            b.iter(|| rip(net, &tech, target, &config).expect("feasible target"))
        });
    }
    group.finish();

    // Tight vs loose targets: tight targets stress the coarse DP + fine
    // DP enrichment paths.
    let net = &nets[0];
    let tmin = tau_min_paper(net, tech.device());
    let mut group = c.benchmark_group("rip_target_tightness");
    group.sample_size(10);
    for mult in [1.05_f64, 1.5, 2.05] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mult:.2}")),
            &mult,
            |b, &mult| b.iter(|| rip(net, &tech, tmin * mult, &config).expect("feasible")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rip_pipeline);
criterion_main!(benches);
