//! Bench for the full RIP pipeline and its target-tightness behaviour -
//! the "our scheme" side of Table 2's runtime comparison, driven through
//! the batch [`Engine`].

use rip_bench::harness::run_case;
use rip_core::Engine;
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;

fn main() {
    let engine = Engine::paper(Technology::generic_180nm());
    let nets = NetGenerator::suite(RandomNetConfig::default(), 2005, 3).expect("valid config");

    println!("# rip_pipeline");
    for (i, net) in nets.iter().enumerate() {
        let target = engine.tau_min(net) * 1.5;
        run_case(&format!("rip_pipeline/net{i}"), || {
            engine.solve(net, target).expect("feasible target");
        });
    }

    // Tight vs loose targets: tight targets stress the coarse DP + fine
    // DP enrichment paths.
    let net = &nets[0];
    let tmin = engine.tau_min(net);
    println!("# rip_target_tightness");
    for mult in [1.05_f64, 1.5, 2.05] {
        run_case(&format!("rip_target_tightness/{mult:.2}"), || {
            engine.solve(net, tmin * mult).expect("feasible");
        });
    }
}
