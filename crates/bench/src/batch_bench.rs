//! The batch-engine throughput benchmark behind `BENCH_batch.json`:
//! sequential cold `rip()` calls vs `Engine::solve_batch` sessions over
//! the same deterministic net suite, with the batch side repeated and
//! summarized by median/MAD.
//!
//! Each timed batch run constructs a *fresh* engine, so the recorded
//! `batch_nets_per_s` is cold-session throughput (caches and scratch
//! pools start empty), comparable across PRs.

use crate::stats::{summarize, JsonObject, StatSummary};
use rip_core::{rip, BatchTarget, Engine, RipConfig, RipOutcome};
use rip_net::{NetGenerator, RandomNetConfig, TwoPinNet};
use rip_tech::Technology;
use std::time::Instant;

/// Workload and repetition parameters of the batch bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchBenchConfig {
    /// Nets in the suite (deterministic seed 2005).
    pub nets: usize,
    /// Timed batch runs (each on a fresh engine).
    pub runs: usize,
}

impl BatchBenchConfig {
    /// Full run (committed baseline) or `--quick` smoke run.
    pub fn preset(quick: bool) -> Self {
        if quick {
            Self { nets: 10, runs: 1 }
        } else {
            Self { nets: 100, runs: 3 }
        }
    }
}

/// Results of one batch-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchBenchReport {
    /// The configuration that produced this report.
    pub config: BatchBenchConfig,
    /// Worker threads available to the batch engine.
    pub threads: usize,
    /// Wall-clock of the sequential cold `rip()` pass, s.
    pub sequential_s: f64,
    /// Summary of the timed batch runs.
    pub batch: StatSummary,
    /// Engine cache hits after the first batch run.
    pub cache_hits: u64,
    /// Engine cache misses after the first batch run.
    pub cache_misses: u64,
    /// Whether the first batch run matched the sequential pass net by
    /// net, bit for bit.
    pub byte_identical: bool,
}

impl BatchBenchReport {
    /// Nets per second of the median batch run.
    pub fn batch_nets_per_s(&self) -> f64 {
        self.config.nets as f64 / self.batch.median_s
    }

    /// Sequential wall-clock over median batch wall-clock — the
    /// machine-independent batch-vs-sequential ratio the CI gate checks.
    pub fn speedup(&self) -> f64 {
        self.sequential_s / self.batch.median_s
    }

    /// The flat-JSON rendering written to `BENCH_batch.json` (a
    /// superset of the seed schema, so older tooling keeps parsing it).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .int("nets", self.config.nets as u64)
            .int("threads", self.threads as u64)
            .int("runs", self.config.runs as u64)
            .num("sequential_s", self.sequential_s)
            .num("batch_s", self.batch.median_s)
            .num("batch_mad_s", self.batch.mad_s)
            .num("batch_min_s", self.batch.min_s)
            .num("speedup", self.speedup())
            .num(
                "sequential_nets_per_s",
                self.config.nets as f64 / self.sequential_s,
            )
            .num("batch_nets_per_s", self.batch_nets_per_s())
            .int("cache_hits", self.cache_hits)
            .int("cache_misses", self.cache_misses)
            .bool("byte_identical", self.byte_identical)
            .finish()
    }

    /// One-paragraph human summary.
    pub fn summary_text(&self) -> String {
        format!(
            "batch_engine: {} nets, {} batch run(s), {} thread(s)\n\
               sequential {:.3}s ({:.2} nets/s)   batch median {:.3}s  mad {:.4}s  ({:.2} nets/s)\n\
               cache: {} hit(s) / {} miss(es)   byte_identical: {}",
            self.config.nets,
            self.config.runs,
            self.threads,
            self.sequential_s,
            self.config.nets as f64 / self.sequential_s,
            self.batch.median_s,
            self.batch.mad_s,
            self.batch_nets_per_s(),
            self.cache_hits,
            self.cache_misses,
            self.byte_identical,
        )
    }
}

/// Runs the batch bench with the given preset.
pub fn run_batch_bench(config: BatchBenchConfig) -> BatchBenchReport {
    let tech = Technology::generic_180nm();
    let rip_config = RipConfig::paper();
    let nets: Vec<TwoPinNet> =
        NetGenerator::suite(RandomNetConfig::default(), 2005, config.nets).expect("valid config");

    // Targets resolved once up front so both sides solve identical
    // problems.
    let probe = Engine::new(tech.clone(), rip_config.clone());
    let targets: Vec<f64> = nets.iter().map(|net| probe.tau_min(net) * 1.4).collect();
    drop(probe);

    // Side A: the pre-Engine workflow — a cold `rip()` call per net.
    let t0 = Instant::now();
    let sequential: Vec<RipOutcome> = nets
        .iter()
        .zip(&targets)
        .map(|(net, &t)| rip(net, &tech, t, &rip_config).expect("feasible target"))
        .collect();
    let sequential_s = t0.elapsed().as_secs_f64();

    // Side B: fresh engine sessions, one parallel batch each.
    let mut samples = Vec::with_capacity(config.runs);
    let mut cache_hits = 0;
    let mut cache_misses = 0;
    let mut byte_identical = true;
    for run in 0..config.runs.max(1) {
        let engine = Engine::new(tech.clone(), rip_config.clone());
        let t1 = Instant::now();
        let batch = engine.solve_batch(&nets, &BatchTarget::PerNetFs(targets.clone()));
        samples.push(t1.elapsed().as_secs_f64());
        if run == 0 {
            let stats = engine.stats();
            cache_hits = stats.hits();
            cache_misses = stats.misses();
            for (i, (seq, out)) in sequential.iter().zip(&batch).enumerate() {
                let b = out.as_ref().expect("feasible target");
                if format!("{:?}", seq.solution) != format!("{:?}", b.solution) {
                    eprintln!("net {i}: batch solution differs from sequential rip()!");
                    byte_identical = false;
                }
            }
        }
    }

    BatchBenchReport {
        config,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        sequential_s,
        batch: summarize(&samples),
        cache_hits,
        cache_misses,
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::read_json_number;

    #[test]
    fn tiny_batch_bench_reports_and_serializes() {
        let report = run_batch_bench(BatchBenchConfig { nets: 2, runs: 1 });
        assert!(report.byte_identical);
        assert!(report.sequential_s > 0.0);
        let json = report.to_json();
        // The seed schema keys survive for downstream tooling.
        for key in [
            "nets",
            "threads",
            "sequential_s",
            "batch_s",
            "speedup",
            "batch_nets_per_s",
            "cache_hits",
            "cache_misses",
        ] {
            assert!(
                read_json_number(&json, key).is_some(),
                "missing key {key} in {json}"
            );
        }
    }
}
