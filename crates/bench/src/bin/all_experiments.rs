//! Runs every paper-reproduction experiment (Table 1, Figure 7, Table 2)
//! and writes all renderings + CSVs. This is the command that produces
//! the data recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p rip-bench --release --bin all_experiments [--quick]`

use rip_bench::{results_dir, scaled_counts};
use rip_report::experiments::figure7::{figure7_csv, render_figure7, run_figure7, Figure7Config};
use rip_report::experiments::table1::{render_table1, run_table1, table1_csv, Table1Config};
use rip_report::experiments::table2::{render_table2, run_table2, table2_csv, Table2Config};
use rip_report::write_csv;
use std::time::Instant;

fn main() {
    let (net_count, target_count) = scaled_counts(20, 20);
    let dir = results_dir();
    let t0 = Instant::now();

    eprintln!("[1/3] Table 1 ({net_count} nets x {target_count} targets)...");
    let t1 = run_table1(&Table1Config {
        net_count,
        target_count,
        ..Default::default()
    });
    println!("{}", render_table1(&t1));
    let (h, r) = table1_csv(&t1);
    let hr: Vec<&str> = h.iter().map(String::as_str).collect();
    write_csv(dir.join("table1.csv"), &hr, &r).expect("write table1.csv");

    eprintln!("[2/3] Figure 7 ({net_count} nets x {target_count} targets)...");
    let f7 = run_figure7(&Figure7Config {
        net_count,
        target_count,
        ..Default::default()
    });
    println!("{}", render_figure7(&f7));
    let (h, r) = figure7_csv(&f7);
    let hr: Vec<&str> = h.iter().map(String::as_str).collect();
    write_csv(dir.join("figure7.csv"), &hr, &r).expect("write figure7.csv");

    eprintln!("[3/3] Table 2 ({net_count} nets x {target_count} targets)...");
    let t2 = run_table2(&Table2Config {
        net_count,
        target_count,
        ..Default::default()
    });
    println!("{}", render_table2(&t2));
    let (h, r) = table2_csv(&t2);
    let hr: Vec<&str> = h.iter().map(String::as_str).collect();
    write_csv(dir.join("table2.csv"), &hr, &r).expect("write table2.csv");

    eprintln!(
        "all experiments done in {:.1} s; CSVs in {}",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}
