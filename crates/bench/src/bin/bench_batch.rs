//! Measures single-net sequential solving vs `Engine::solve_batch` over a
//! 100-net suite, verifies the batch output is byte-identical to
//! sequential `rip()` calls, and writes `BENCH_batch.json` at the
//! workspace root so later PRs have a throughput trajectory.
//!
//! Usage: `cargo run -p rip-bench --release --bin bench_batch [--quick]`

use rip_bench::{quick_mode, workspace_root};
use rip_core::{rip, BatchTarget, Engine, RipConfig, RipOutcome};
use rip_net::{NetGenerator, RandomNetConfig};
use rip_tech::Technology;
use std::time::Instant;

fn main() {
    let net_count = if quick_mode() { 10 } else { 100 };
    let tech = Technology::generic_180nm();
    let config = RipConfig::paper();
    let nets =
        NetGenerator::suite(RandomNetConfig::default(), 2005, net_count).expect("valid config");

    // Targets resolved once up front so both sides solve identical
    // problems.
    let probe = Engine::new(tech.clone(), config.clone());
    let targets: Vec<f64> = nets.iter().map(|net| probe.tau_min(net) * 1.4).collect();
    drop(probe);

    // Side A: the pre-Engine workflow — a cold `rip()` call per net.
    eprintln!("sequential rip() over {net_count} nets...");
    let t0 = Instant::now();
    let sequential: Vec<RipOutcome> = nets
        .iter()
        .zip(&targets)
        .map(|(net, &t)| rip(net, &tech, t, &config).expect("feasible target"))
        .collect();
    let sequential_s = t0.elapsed().as_secs_f64();

    // Side B: one Engine session, parallel batch.
    eprintln!("Engine::solve_batch over {net_count} nets...");
    let engine = Engine::new(tech.clone(), config.clone());
    let t1 = Instant::now();
    let batch = engine.solve_batch(&nets, &BatchTarget::PerNetFs(targets.clone()));
    let batch_s = t1.elapsed().as_secs_f64();

    // Acceptance gate: byte-identical solutions, net by net.
    let mut identical = true;
    for (i, (seq, out)) in sequential.iter().zip(&batch).enumerate() {
        let b = out.as_ref().expect("feasible target");
        if format!("{:?}", seq.solution) != format!("{:?}", b.solution) {
            eprintln!("net {i}: batch solution differs from sequential rip()!");
            identical = false;
        }
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let stats = engine.stats();
    let json = format!(
        "{{\n  \"nets\": {net_count},\n  \"threads\": {threads},\n  \
         \"sequential_s\": {sequential_s:.4},\n  \"batch_s\": {batch_s:.4},\n  \
         \"speedup\": {:.3},\n  \"sequential_nets_per_s\": {:.3},\n  \
         \"batch_nets_per_s\": {:.3},\n  \"cache_hits\": {},\n  \
         \"cache_misses\": {},\n  \"byte_identical\": {identical}\n}}\n",
        sequential_s / batch_s,
        net_count as f64 / sequential_s,
        net_count as f64 / batch_s,
        stats.hits(),
        stats.misses(),
    );
    print!("{json}");

    let path = workspace_root().join("BENCH_batch.json");
    std::fs::write(&path, &json).expect("write BENCH_batch.json");
    eprintln!("wrote {}", path.display());
    assert!(
        identical,
        "batch output must be byte-identical to sequential rip()"
    );
}
