//! Measures single-net sequential solving vs `Engine::solve_batch` over
//! the standard net suite, verifies the batch output is byte-identical
//! to sequential `rip()` calls, and writes `BENCH_batch.json` at the
//! workspace root so later PRs have a throughput trajectory
//! (median/MAD over repeated fresh-engine runs — see
//! `rip_bench::batch_bench`).
//!
//! Usage: `cargo run -p rip-bench --release --bin bench_batch [--quick]`

use rip_bench::{quick_mode, run_batch_bench, workspace_root, BatchBenchConfig};

fn main() {
    let config = BatchBenchConfig::preset(quick_mode());
    eprintln!(
        "bench_batch: {} nets, {} batch run(s)...",
        config.nets, config.runs
    );
    let report = run_batch_bench(config);
    println!("{}", report.summary_text());

    let json = report.to_json();
    // Quick runs keep their JSON beside the committed full-scale
    // baseline instead of replacing it.
    let name = if quick_mode() {
        "BENCH_batch.quick.json"
    } else {
        "BENCH_batch.json"
    };
    let path = workspace_root().join(name);
    std::fs::write(&path, &json).expect("write BENCH_batch json");
    eprintln!("wrote {}", path.display());
    assert!(
        report.byte_identical,
        "batch output must be byte-identical to sequential rip()"
    );
}
