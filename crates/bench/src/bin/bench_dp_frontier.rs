//! Measures the production sorted-frontier DP pruner against the seed
//! reference pruner on the standard corpus, verifies byte-identical
//! solutions, and writes `BENCH_dp_frontier.json` at the workspace root
//! (median/MAD over repeated runs — see `rip_bench::frontier_bench`).
//!
//! The recorded `speedup_vs_reference` is measured in-process on the
//! current machine, so it stays comparable wherever the bench runs —
//! CI's bench-regression gate checks it alongside the absolute
//! throughput baselines.
//!
//! Usage: `cargo run -p rip-bench --release --bin bench_dp_frontier [--quick]`

use rip_bench::{quick_mode, run_frontier_bench, workspace_root, FrontierBenchConfig};

fn main() {
    let config = FrontierBenchConfig::preset(quick_mode());
    eprintln!(
        "bench_dp_frontier: {} nets, {} runs (+{} warmup) per side...",
        config.nets, config.runs, config.warmup
    );
    let report = run_frontier_bench(config);
    println!("{}", report.summary_text());

    let json = report.to_json();
    // Quick runs keep their JSON beside the committed full-scale
    // baseline instead of replacing it.
    let name = if quick_mode() {
        "BENCH_dp_frontier.quick.json"
    } else {
        "BENCH_dp_frontier.json"
    };
    let path = workspace_root().join(name);
    std::fs::write(&path, &json).expect("write BENCH_dp_frontier json");
    eprintln!("wrote {}", path.display());
    assert!(
        report.byte_identical,
        "frontier solutions must be byte-identical to the reference pruner"
    );
}
