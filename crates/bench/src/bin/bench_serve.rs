//! Drives an in-process `rip_serve` server with the deterministic load
//! generator at 1/4/16 concurrent connections, byte-checks every
//! deterministic response against a reference engine, and writes
//! `BENCH_serve.json` at the workspace root (median/MAD requests/s per
//! concurrency level plus the shared engine's cache hit rate — see
//! `rip_bench::serve_bench`).
//!
//! Usage: `cargo run -p rip-bench --release --bin bench_serve [--quick]`

use rip_bench::{quick_mode, run_serve_bench, workspace_root, ServeBenchConfig};

fn main() {
    let config = ServeBenchConfig::preset(quick_mode());
    eprintln!(
        "bench_serve: {:?} connection level(s), {} req/conn, {} run(s)...",
        config.connections, config.requests_per_conn, config.runs
    );
    let report = run_serve_bench(config);
    println!("{}", report.summary_text());

    let json = report.to_json();
    // Quick runs keep their JSON beside the committed full-scale
    // baseline instead of replacing it.
    let name = if quick_mode() {
        "BENCH_serve.quick.json"
    } else {
        "BENCH_serve.json"
    };
    let path = workspace_root().join(name);
    std::fs::write(&path, &json).expect("write BENCH_serve json");
    eprintln!("wrote {}", path.display());
    assert!(
        report.byte_identical,
        "service responses must be byte-identical to the in-process engine"
    );
}
