//! Measures the production SoA tree DP against the frozen pre-SoA tree
//! engine (`rip_dp::reference::tree`) on a generated multi-sink corpus,
//! verifies byte-identical solutions, times the batch tree pipeline,
//! and writes `BENCH_tree.json` at the workspace root (median/MAD over
//! repeated runs — see `rip_bench::tree_bench`).
//!
//! The recorded `speedup_vs_reference` is measured in-process on the
//! current machine, so it stays comparable wherever the bench runs —
//! CI's bench-regression gate checks it alongside the absolute
//! throughput baselines.
//!
//! Usage: `cargo run -p rip-bench --release --bin bench_tree [--quick]`

use rip_bench::{quick_mode, run_tree_bench, workspace_root, TreeBenchConfig};

fn main() {
    let config = TreeBenchConfig::preset(quick_mode());
    eprintln!(
        "bench_tree: {} trees, {} runs (+{} warmup) per side...",
        config.trees, config.runs, config.warmup
    );
    let report = run_tree_bench(config);
    println!("{}", report.summary_text());

    let json = report.to_json();
    // Quick runs keep their JSON beside the committed full-scale
    // baseline instead of replacing it.
    let name = if quick_mode() {
        "BENCH_tree.quick.json"
    } else {
        "BENCH_tree.json"
    };
    let path = workspace_root().join(name);
    std::fs::write(&path, &json).expect("write BENCH_tree json");
    eprintln!("wrote {}", path.display());
    assert!(
        report.byte_identical,
        "tree solutions must be byte-identical to the reference engine"
    );
}
