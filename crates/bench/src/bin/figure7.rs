//! Regenerates the paper's Figure 7 (power savings vs timing constraint,
//! panels (a) g=10u and (b) g=40u).
//!
//! Usage: `cargo run -p rip-bench --release --bin figure7 [--quick]`

use rip_bench::{results_dir, scaled_counts};
use rip_report::experiments::figure7::{figure7_csv, render_figure7, run_figure7, Figure7Config};
use rip_report::write_csv;

fn main() {
    let (net_count, target_count) = scaled_counts(20, 20);
    let config = Figure7Config {
        net_count,
        target_count,
        ..Default::default()
    };
    eprintln!("running Figure 7: {net_count} nets x {target_count} targets x 2 panels...");
    let outcome = run_figure7(&config);
    println!("{}", render_figure7(&outcome));
    let (headers, rows) = figure7_csv(&outcome);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let path = results_dir().join("figure7.csv");
    write_csv(&path, &header_refs, &rows).expect("write figure7.csv");
    eprintln!("wrote {}", path.display());
}
