//! Regenerates the paper's Table 1 (power reduction for two-pin nets).
//!
//! Usage: `cargo run -p rip-bench --release --bin table1 [--quick]`

use rip_bench::{results_dir, scaled_counts};
use rip_report::experiments::table1::{render_table1, run_table1, table1_csv, Table1Config};
use rip_report::write_csv;

fn main() {
    let (net_count, target_count) = scaled_counts(20, 20);
    let config = Table1Config {
        net_count,
        target_count,
        ..Default::default()
    };
    eprintln!(
        "running Table 1: {net_count} nets x {target_count} targets x {} baselines...",
        config.granularities.len()
    );
    let outcome = run_table1(&config);
    println!("{}", render_table1(&outcome));
    let (headers, rows) = table1_csv(&outcome);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let path = results_dir().join("table1.csv");
    write_csv(&path, &header_refs, &rows).expect("write table1.csv");
    eprintln!("wrote {}", path.display());
}
