//! Regenerates the paper's Table 2 (power savings and speedup tradeoff).
//!
//! Runtimes are meaningful in `--release` only.
//!
//! Usage: `cargo run -p rip-bench --release --bin table2 [--quick]`

use rip_bench::{results_dir, scaled_counts};
use rip_report::experiments::table2::{render_table2, run_table2, table2_csv, Table2Config};
use rip_report::write_csv;

fn main() {
    let (net_count, target_count) = scaled_counts(20, 20);
    let config = Table2Config {
        net_count,
        target_count,
        ..Default::default()
    };
    eprintln!(
        "running Table 2: {net_count} nets x {target_count} targets x {} baselines...",
        config.granularities.len()
    );
    let outcome = run_table2(&config);
    println!("{}", render_table2(&outcome));
    let (headers, rows) = table2_csv(&outcome);
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let path = results_dir().join("table2.csv");
    write_csv(&path, &header_refs, &rows).expect("write table2.csv");
    eprintln!("wrote {}", path.display());
}
