//! The DP-frontier benchmark: production sorted-SoA pruner vs the seed
//! reference pruner, in one process, on one machine.
//!
//! Measuring both sides in the same run makes the recorded speedup
//! machine-independent: `BENCH_dp_frontier.json` can be regenerated
//! anywhere and the `speedup_vs_reference` field remains comparable,
//! which is what CI's bench-regression gate checks (absolute
//! `nets_per_s` is compared against the committed baseline with a wide
//! tolerance; the ratio is gated tightly).

use crate::stats::{summarize, JsonObject, StatSummary};
use rip_dp::{reference, solve_min_power_with, CandidateSet, DpScratch, DpSolution};
use rip_net::{NetGenerator, RandomNetConfig, TwoPinNet};
use rip_tech::{RepeaterLibrary, Technology};
use std::time::Instant;

/// Workload and repetition parameters of the frontier bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierBenchConfig {
    /// Nets in the corpus (deterministic seed 2005 suite).
    pub nets: usize,
    /// Timed runs per side.
    pub runs: usize,
    /// Discarded warm-up runs per side.
    pub warmup: usize,
    /// Uniform candidate step, µm (denser than the paper's 200 µm to
    /// stress pruning).
    pub step_um: f64,
    /// Timing target as a multiple of each net's min-delay.
    pub target_mult: f64,
}

impl FrontierBenchConfig {
    /// Full run (committed baseline) or `--quick` smoke run.
    pub fn preset(quick: bool) -> Self {
        if quick {
            Self {
                nets: 6,
                runs: 3,
                warmup: 1,
                step_um: 100.0,
                target_mult: 1.3,
            }
        } else {
            Self {
                nets: 20,
                runs: 7,
                warmup: 2,
                step_um: 100.0,
                target_mult: 1.3,
            }
        }
    }
}

/// Results of one frontier-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierBenchReport {
    /// The configuration that produced this report.
    pub config: FrontierBenchConfig,
    /// Library widths used.
    pub library_widths: usize,
    /// Options created per full pass over the corpus (both sides create
    /// identical counts — pinned by the byte-identical check).
    pub options_per_pass: u64,
    /// Run-time summary of the production (sorted-frontier) pruner.
    pub frontier: StatSummary,
    /// Run-time summary of the seed reference pruner.
    pub reference: StatSummary,
    /// `reference.median_s / frontier.median_s`.
    pub speedup_vs_reference: f64,
    /// Whether both sides produced byte-identical solutions on every
    /// net (checked during warm-up).
    pub byte_identical: bool,
}

impl FrontierBenchReport {
    /// Nets solved per second by the production pruner (median run).
    pub fn frontier_nets_per_s(&self) -> f64 {
        self.config.nets as f64 / self.frontier.median_s
    }

    /// Options pruned per second by the production pruner (median run).
    pub fn frontier_options_per_s(&self) -> f64 {
        self.options_per_pass as f64 / self.frontier.median_s
    }

    /// The flat-JSON rendering written to `BENCH_dp_frontier.json`.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .int("nets", self.config.nets as u64)
            .int("runs", self.config.runs as u64)
            .int("warmup", self.config.warmup as u64)
            .num("step_um", self.config.step_um)
            .num("target_mult", self.config.target_mult)
            .int("library_widths", self.library_widths as u64)
            .int("options_per_pass", self.options_per_pass)
            .num("frontier_median_s", self.frontier.median_s)
            .num("frontier_mad_s", self.frontier.mad_s)
            .num("frontier_min_s", self.frontier.min_s)
            .num("frontier_nets_per_s", self.frontier_nets_per_s())
            .num("frontier_options_per_s", self.frontier_options_per_s())
            .num("reference_median_s", self.reference.median_s)
            .num("reference_mad_s", self.reference.mad_s)
            .num("reference_min_s", self.reference.min_s)
            .num(
                "reference_nets_per_s",
                self.config.nets as f64 / self.reference.median_s,
            )
            .num(
                "reference_options_per_s",
                self.options_per_pass as f64 / self.reference.median_s,
            )
            .num("speedup_vs_reference", self.speedup_vs_reference)
            .bool("byte_identical", self.byte_identical)
            .finish()
    }

    /// One-paragraph human summary.
    pub fn summary_text(&self) -> String {
        format!(
            "dp_frontier: {} nets, {} runs (+{} warmup), {} options/pass\n\
               frontier  median {:.4}s  mad {:.4}s  ({:.1} nets/s, {:.0} options/s)\n\
               reference median {:.4}s  mad {:.4}s  ({:.1} nets/s)\n\
               speedup vs reference: {:.2}x   byte_identical: {}",
            self.config.nets,
            self.config.runs,
            self.config.warmup,
            self.options_per_pass,
            self.frontier.median_s,
            self.frontier.mad_s,
            self.frontier_nets_per_s(),
            self.frontier_options_per_s(),
            self.reference.median_s,
            self.reference.mad_s,
            self.config.nets as f64 / self.reference.median_s,
            self.speedup_vs_reference,
            self.byte_identical,
        )
    }
}

/// Runs the frontier bench with the given preset.
pub fn run_frontier_bench(config: FrontierBenchConfig) -> FrontierBenchReport {
    let tech = Technology::generic_180nm();
    let device = tech.device();
    let library = RepeaterLibrary::range_step(10.0, 400.0, 40.0).expect("valid library");
    let nets: Vec<TwoPinNet> =
        NetGenerator::suite(RandomNetConfig::default(), 2005, config.nets).expect("valid config");
    let grids: Vec<CandidateSet> = nets
        .iter()
        .map(|net| CandidateSet::uniform(net, config.step_um))
        .collect();
    // Targets fixed outside the timed region so both sides solve the
    // exact same problems.
    let targets: Vec<f64> = nets
        .iter()
        .zip(&grids)
        .map(|(net, cands)| {
            reference::solve_min_delay(net, device, &library, cands).delay_fs * config.target_mult
        })
        .collect();

    let mut scratch = DpScratch::new();
    let solve_frontier = |scratch: &mut DpScratch| -> Vec<DpSolution> {
        nets.iter()
            .zip(&grids)
            .zip(&targets)
            .map(|((net, cands), &t)| {
                solve_min_power_with(scratch, net, device, &library, cands, t)
                    .expect("1.3x targets are feasible")
            })
            .collect()
    };
    let solve_reference = || -> Vec<DpSolution> {
        nets.iter()
            .zip(&grids)
            .zip(&targets)
            .map(|((net, cands), &t)| {
                reference::solve_min_power(net, device, &library, cands, t)
                    .expect("1.3x targets are feasible")
            })
            .collect()
    };

    // Warm-up (discarded) + the equivalence check.
    let mut byte_identical = true;
    let mut options_per_pass = 0u64;
    for pass in 0..config.warmup.max(1) {
        let a = solve_frontier(&mut scratch);
        let b = solve_reference();
        if pass == 0 {
            options_per_pass = a.iter().map(|s| s.stats.options_created).sum();
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                if format!("{x:?}") != format!("{y:?}") {
                    eprintln!("net {i}: frontier solution differs from reference!");
                    byte_identical = false;
                }
            }
        }
    }

    // Timed runs, interleaved so slow drift hits both sides equally.
    let mut frontier_samples = Vec::with_capacity(config.runs);
    let mut reference_samples = Vec::with_capacity(config.runs);
    for _ in 0..config.runs {
        let t0 = Instant::now();
        let a = solve_frontier(&mut scratch);
        frontier_samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(&a);
        let t1 = Instant::now();
        let b = solve_reference();
        reference_samples.push(t1.elapsed().as_secs_f64());
        std::hint::black_box(&b);
    }

    let frontier = summarize(&frontier_samples);
    let reference = summarize(&reference_samples);
    FrontierBenchReport {
        config,
        library_widths: library.len(),
        options_per_pass,
        speedup_vs_reference: reference.median_s / frontier.median_s,
        frontier,
        reference,
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::read_json_number;

    #[test]
    fn quick_frontier_bench_is_byte_identical_and_serializes() {
        let config = FrontierBenchConfig {
            nets: 2,
            runs: 1,
            warmup: 1,
            step_um: 400.0,
            target_mult: 1.4,
        };
        let report = run_frontier_bench(config);
        assert!(report.byte_identical);
        assert!(report.options_per_pass > 0);
        let json = report.to_json();
        assert_eq!(read_json_number(&json, "nets"), Some(2.0));
        assert!(read_json_number(&json, "speedup_vs_reference").is_some());
        assert!(read_json_number(&json, "frontier_nets_per_s").unwrap() > 0.0);
        assert!(report.summary_text().contains("speedup"));
    }
}
