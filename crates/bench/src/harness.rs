//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds offline without Criterion, so the bench targets
//! use this std-only harness instead: warm up, run until both an
//! iteration floor and a time floor are met, and report mean/min. It is
//! deliberately simple — the experiment binaries (`table2`, `figure7`)
//! carry the paper's statistically careful runtime comparisons; these
//! benches exist to track relative regressions between PRs.

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Case label, e.g. `"rip_pipeline/net0"`.
    pub label: String,
    /// Timed iterations (after warmup).
    pub iters: u32,
    /// Total timed duration.
    pub total: Duration,
    /// Mean per-iteration duration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
}

impl Measurement {
    /// Mean iterations per second.
    pub fn throughput_per_s(&self) -> f64 {
        if self.mean.as_secs_f64() > 0.0 {
            1.0 / self.mean.as_secs_f64()
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>6} iters   mean {:>12.3?}   min {:>12.3?}",
            self.label, self.iters, self.mean, self.min
        )
    }
}

/// Runs `f` repeatedly: one warmup iteration, then until both
/// `min_iters` iterations and `min_time` have elapsed (whichever demands
/// more work). Returns the aggregated [`Measurement`].
pub fn bench(label: &str, min_iters: u32, min_time: Duration, mut f: impl FnMut()) -> Measurement {
    f(); // warmup
    let mut iters = 0u32;
    let mut min = Duration::MAX;
    let started = Instant::now();
    loop {
        let t0 = Instant::now();
        f();
        let elapsed = t0.elapsed();
        min = min.min(elapsed);
        iters += 1;
        if iters >= min_iters && started.elapsed() >= min_time {
            break;
        }
        // Hard cap so pathological cases cannot hang a bench run.
        if iters >= 10_000 {
            break;
        }
    }
    let total = started.elapsed();
    Measurement {
        label: label.to_string(),
        iters,
        total,
        mean: total / iters,
        min,
    }
}

/// Standard floors for the workspace benches: `--quick` mode trims to a
/// smoke measurement.
pub fn default_floors() -> (u32, Duration) {
    if crate::quick_mode() {
        (2, Duration::from_millis(50))
    } else {
        (10, Duration::from_millis(300))
    }
}

/// Benches with [`default_floors`] and prints the measurement.
pub fn run_case(label: &str, f: impl FnMut()) -> Measurement {
    let (min_iters, min_time) = default_floors();
    let m = bench(label, min_iters, min_time, f);
    println!("{m}");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_iterations_and_orders_stats() {
        let mut calls = 0u32;
        let m = bench("noop", 5, Duration::from_millis(1), || calls += 1);
        assert_eq!(m.iters + 1, calls, "warmup iteration is untimed");
        assert!(m.iters >= 5);
        assert!(m.min <= m.mean);
        assert!(m.throughput_per_s() > 0.0);
    }

    #[test]
    fn display_contains_label() {
        let m = bench("spin", 2, Duration::ZERO, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m.to_string().contains("spin"));
    }
}
