//! # rip-bench — benchmarks and experiment binaries for the RIP
//! reproduction
//!
//! Binaries (all write their CSV next to `results/` in the workspace
//! root and print the paper-layout rendering to stdout):
//!
//! * `table1` — regenerates the paper's Table 1;
//! * `table2` — regenerates the paper's Table 2;
//! * `figure7` — regenerates Figure 7(a)/(b);
//! * `all_experiments` — runs everything (used to produce
//!   EXPERIMENTS.md).
//!
//! Pass `--quick` to any binary for a reduced run (fewer nets/targets)
//! when smoke-testing.
//!
//! The bench targets (std-only [`harness`], run via `cargo bench`) cover
//! the runtime claims: DP cost vs width granularity (`dp_granularity`,
//! the Table 2 runtime axis), the RIP pipeline and its stages
//! (`rip_pipeline`, `refine`), the Elmore substrate (`elmore`), pruning
//! pressure vs candidate density (`pruning`), configuration ablations
//! (`ablations`), and batch-engine throughput (`batch_engine`).
//!
//! The *statistical* benchmarks live in [`stats`] (median/MAD over
//! repeated runs with warm-up discard), with three standard workloads:
//!
//! * [`run_frontier_bench`] — production sorted-frontier DP vs the seed
//!   reference pruner, written to `BENCH_dp_frontier.json`
//!   (`bench_dp_frontier` binary);
//! * [`run_batch_bench`] — sequential `rip()` vs `Engine::solve_batch`,
//!   written to `BENCH_batch.json` (`bench_batch` binary);
//! * [`run_tree_bench`] — production SoA tree DP vs the frozen pre-SoA
//!   tree engine plus batch tree-pipeline throughput, written to
//!   `BENCH_tree.json` (`bench_tree` binary);
//! * [`run_serve_bench`] — `rip_serve` service throughput at 1/4/16
//!   concurrent connections with byte-identity verification against an
//!   in-process reference engine, written to `BENCH_serve.json`
//!   (`bench_serve` binary).
//!
//! All are also reachable as `rip bench` from the CLI, which is what
//! CI's bench-regression job runs against the committed baselines.

pub mod batch_bench;
pub mod frontier_bench;
pub mod harness;
pub mod serve_bench;
pub mod stats;
pub mod tree_bench;

pub use batch_bench::{run_batch_bench, BatchBenchConfig, BatchBenchReport};
pub use frontier_bench::{run_frontier_bench, FrontierBenchConfig, FrontierBenchReport};
pub use serve_bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport, ServeLevel};
pub use tree_bench::{run_tree_bench, TreeBenchConfig, TreeBenchReport};

use std::path::PathBuf;

/// Returns the workspace-level `results/` directory, creating it if
/// needed.
///
/// # Panics
///
/// Panics when the directory cannot be created (no fallback makes sense
/// for the experiment binaries).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

/// Returns the workspace root (the parent of `crates/`), where benchmark
/// JSON artifacts like `BENCH_batch.json` live.
pub fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace
    // root so EXPERIMENTS.md can reference them stably.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

/// `true` when the binary was invoked with `--quick`.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Reads a `--flag value` usize argument from the command line.
pub fn arg_usize(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Scales (nets, targets): `--quick` shrinks to a smoke run; `--nets N`
/// and `--targets K` override explicitly.
pub fn scaled_counts(nets: usize, targets: usize) -> (usize, usize) {
    let (mut n, mut t) = if quick_mode() {
        (nets.min(3), targets.min(5))
    } else {
        (nets, targets)
    };
    if let Some(v) = arg_usize("--nets") {
        n = v;
    }
    if let Some(v) = arg_usize("--targets") {
        t = v;
    }
    (n, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }

    #[test]
    fn scaling_respects_quick_mode_flag_absence() {
        // Test binaries run without --quick.
        assert_eq!(scaled_counts(20, 20), (20, 20));
    }
}
