//! The service-throughput benchmark behind `BENCH_serve.json`: an
//! in-process `rip_serve` server driven by the deterministic load
//! generator at several concurrency levels (1/4/16 connections by
//! default), with every deterministic response byte-checked against a
//! reference engine and the shared engine's cache hit rate recorded.
//!
//! The byte-identity check and the hit rate are machine-independent and
//! gated by `rip bench --check-baseline`; the absolute requests/s
//! figures are recorded for trend-watching only (runner classes differ
//! too much for an absolute gate — see the ROADMAP's runner-variance
//! note).

use crate::stats::{summarize, JsonObject, StatSummary};
use rip_core::{Engine, RipConfig};
use rip_serve::{fire_load, prepare_load, start_server, LoadgenConfig, ServeConfig, ServeState};
use rip_tech::Technology;

/// Workload and repetition parameters of the serve bench.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchConfig {
    /// Concurrency levels to measure (connections).
    pub connections: Vec<usize>,
    /// Requests per connection at every level.
    pub requests_per_conn: usize,
    /// Distinct nets in the request pool.
    pub nets: usize,
    /// Timed loadgen runs per level (median/MAD over these).
    pub runs: usize,
    /// Server worker threads.
    pub workers: usize,
}

impl ServeBenchConfig {
    /// Full run (committed baseline) or `--quick` smoke run.
    pub fn preset(quick: bool) -> Self {
        if quick {
            Self {
                connections: vec![1, 4],
                requests_per_conn: 6,
                nets: 6,
                runs: 1,
                workers: 4,
            }
        } else {
            Self {
                connections: vec![1, 4, 16],
                requests_per_conn: 24,
                nets: 12,
                runs: 3,
                workers: 16,
            }
        }
    }
}

/// One concurrency level's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLevel {
    /// Concurrent connections at this level.
    pub connections: usize,
    /// Requests sent per run at this level.
    pub requests: usize,
    /// Summary of the timed runs, s.
    pub elapsed: StatSummary,
    /// Deterministic responses byte-checked per run.
    pub verified: usize,
}

impl ServeLevel {
    /// Requests per second of the median run.
    pub fn requests_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed.median_s
    }
}

/// Results of one serve-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// The configuration that produced this report.
    pub config: ServeBenchConfig,
    /// Hardware threads available to the process.
    pub threads: usize,
    /// Per-concurrency-level measurements, in `config.connections`
    /// order.
    pub levels: Vec<ServeLevel>,
    /// Shared-engine cache hit rate at the end of the run (hits /
    /// lookups; the repeated scripts make this high by construction).
    pub hit_rate: f64,
    /// LRU promotions recorded by the shared engine.
    pub promotions: u64,
    /// Requests handled by the server across the whole bench.
    pub requests_total: u64,
    /// Responses that failed (`ok: false` or unparseable) without being
    /// byte-identity mismatches — kept separate so a failed request is
    /// never misreported as a determinism break.
    pub request_errors: u64,
    /// Whether every deterministic response was byte-identical to the
    /// in-process reference engine's answer.
    pub byte_identical: bool,
}

impl ServeBenchReport {
    /// The flat-JSON rendering written to `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .int("nets", self.config.nets as u64)
            .int("requests_per_conn", self.config.requests_per_conn as u64)
            .int("runs", self.config.runs as u64)
            .int("workers", self.config.workers as u64)
            .int("threads", self.threads as u64);
        for level in &self.levels {
            let c = level.connections;
            obj = obj
                .num(&format!("c{c}_s"), level.elapsed.median_s)
                .num(&format!("c{c}_mad_s"), level.elapsed.mad_s)
                .num(&format!("c{c}_req_per_s"), level.requests_per_s());
        }
        obj.num("hit_rate", self.hit_rate)
            .int("promotions", self.promotions)
            .int("requests_total", self.requests_total)
            .int("request_errors", self.request_errors)
            .bool("byte_identical", self.byte_identical)
            .finish()
    }

    /// One-paragraph human summary.
    pub fn summary_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "serve: {} nets, {} req/conn, {} run(s), {} worker(s)\n",
            self.config.nets, self.config.requests_per_conn, self.config.runs, self.config.workers,
        );
        for level in &self.levels {
            let _ = writeln!(
                out,
                "  {:>2} conn(s): median {:.3}s  mad {:.4}s  ({:.2} req/s, {} verified/run)",
                level.connections,
                level.elapsed.median_s,
                level.elapsed.mad_s,
                level.requests_per_s(),
                level.verified,
            );
        }
        let _ = write!(
            out,
            "  hit_rate: {:.3}   promotions: {}   request_errors: {}   byte_identical: {}",
            self.hit_rate, self.promotions, self.request_errors, self.byte_identical
        );
        out
    }
}

/// Runs the serve bench: starts an in-process server, drives it with
/// the loadgen at every configured concurrency level, byte-checks the
/// responses, and reads the final cache stats.
///
/// # Panics
///
/// Panics when the server cannot bind a loopback port or a loadgen
/// connection fails at the transport level — a benchmark host without
/// loopback TCP has no meaningful result.
pub fn run_serve_bench(config: ServeBenchConfig) -> ServeBenchReport {
    let tech = Technology::generic_180nm();
    let rip_config = RipConfig::paper();
    let server_config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: config.workers,
        ..ServeConfig::default()
    };
    let server = start_server(
        Engine::new(tech.clone(), rip_config.clone()),
        &server_config,
    )
    .expect("bind a loopback port for the serve bench");
    let reference = ServeState::new(Engine::new(tech, rip_config));

    let mut levels = Vec::with_capacity(config.connections.len());
    let mut byte_identical = true;
    let mut request_errors = 0u64;
    for &connections in &config.connections {
        let loadgen = LoadgenConfig {
            connections,
            requests_per_conn: config.requests_per_conn,
            nets: config.nets,
            ..LoadgenConfig::default()
        };
        // Scripts and their expected responses are identical across the
        // repeated runs of a level: prepare (and drive the reference
        // engine) once, fire many times.
        let load = prepare_load(Some(&reference), &loadgen);
        let mut samples = Vec::with_capacity(config.runs.max(1));
        let mut requests = 0;
        let mut verified = 0;
        for _ in 0..config.runs.max(1) {
            let outcome =
                fire_load(server.addr(), &load).expect("loadgen connections over loopback succeed");
            if !outcome.clean() {
                eprintln!(
                    "serve bench: {} error(s), {} mismatch(es) at {} connection(s)!",
                    outcome.errors, outcome.mismatches, connections
                );
            }
            if outcome.mismatches > 0 {
                byte_identical = false;
            }
            request_errors += outcome.errors as u64;
            samples.push(outcome.elapsed_ns as f64 * 1e-9);
            requests = outcome.requests;
            verified = outcome.verified;
        }
        levels.push(ServeLevel {
            connections,
            requests,
            elapsed: summarize(&samples),
            verified,
        });
    }

    let state = std::sync::Arc::clone(server.state());
    server.shutdown();
    let stats = state.engine().stats();
    ServeBenchReport {
        config,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        levels,
        hit_rate: stats.hit_rate(),
        promotions: stats.promotions,
        requests_total: state.requests(),
        request_errors,
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::read_json_number;

    #[test]
    fn tiny_serve_bench_reports_and_serializes() {
        let report = run_serve_bench(ServeBenchConfig {
            connections: vec![1, 2],
            requests_per_conn: 3,
            nets: 2,
            runs: 1,
            workers: 2,
        });
        assert!(report.byte_identical, "responses diverged from reference");
        assert_eq!(report.request_errors, 0);
        assert_eq!(report.levels.len(), 2);
        assert!(report.requests_total >= 9);
        // The repeated script re-solves the same nets: the shared
        // engine must be hitting its caches by the second level.
        assert!(report.hit_rate > 0.0);
        let json = report.to_json();
        for key in [
            "nets",
            "workers",
            "c1_s",
            "c1_req_per_s",
            "c2_req_per_s",
            "hit_rate",
            "requests_total",
        ] {
            assert!(
                read_json_number(&json, key).is_some(),
                "missing key {key} in {json}"
            );
        }
        assert!(report.summary_text().contains("conn(s)"));
    }
}
