//! The service-throughput benchmark behind `BENCH_serve.json`: an
//! in-process `rip_serve` server driven by the deterministic load
//! generator at several concurrency levels (1/4/16 connections by
//! default), with every deterministic response byte-checked against a
//! reference engine and the engines' cache hit rates recorded.
//!
//! Two legs per level, sharing one prepared load: the **direct** server
//! (one shared engine — the committed pre-sharding topology) and the
//! **sharded** server (`shards` private engines routed by cache key).
//! Both legs byte-check against the same reference renders, so the legs
//! are transitively byte-identical to each other — that is the gated
//! sharding-equivalence claim. The request mix includes masked tree
//! solves (`trees` > 0) so the tree path is load-tested too.
//!
//! The byte-identity checks, the hit rates and the sharded-vs-direct
//! throughput ratio are machine-independent and gated by `rip bench
//! --check-baseline`; the absolute requests/s figures are recorded for
//! trend-watching only (runner classes differ too much for an absolute
//! gate — see the ROADMAP's runner-variance note).

use crate::stats::{summarize, JsonObject, StatSummary};
use rip_core::{Engine, RipConfig};
use rip_serve::{
    fire_load, prepare_load, start_server, LoadgenConfig, PreparedLoad, ServeConfig, ServeState,
    ServerHandle,
};
use rip_tech::Technology;

/// Workload and repetition parameters of the serve bench.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchConfig {
    /// Concurrency levels to measure (connections).
    pub connections: Vec<usize>,
    /// Requests per connection at every level.
    pub requests_per_conn: usize,
    /// Distinct nets in the request pool.
    pub nets: usize,
    /// Distinct trees in the request pool (the mix's masked
    /// `solve_tree` slot activates when > 0).
    pub trees: usize,
    /// Timed loadgen runs per level (median/MAD over these).
    pub runs: usize,
    /// Server connection-worker threads.
    pub workers: usize,
    /// Engine shards in the sharded leg.
    pub shards: usize,
}

impl ServeBenchConfig {
    /// Full run (committed baseline) or `--quick` smoke run.
    pub fn preset(quick: bool) -> Self {
        if quick {
            Self {
                connections: vec![1, 4],
                requests_per_conn: 6,
                nets: 6,
                trees: 2,
                runs: 1,
                workers: 4,
                shards: 2,
            }
        } else {
            Self {
                connections: vec![1, 4, 16],
                requests_per_conn: 24,
                nets: 12,
                trees: 3,
                runs: 3,
                workers: 16,
                shards: 2,
            }
        }
    }
}

/// One concurrency level's measurements for one server topology.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLevel {
    /// Concurrent connections at this level.
    pub connections: usize,
    /// Requests sent per run at this level.
    pub requests: usize,
    /// Summary of the timed runs, s.
    pub elapsed: StatSummary,
    /// Deterministic responses byte-checked per run.
    pub verified: usize,
    /// Median over runs of the per-request p50 latency, s (log2-bucket
    /// upper bound — see [`rip_serve::LoadgenOutcome`]).
    pub p50_s: f64,
    /// Median over runs of the per-request p95 latency, s.
    pub p95_s: f64,
    /// Median over runs of the per-request p99 latency, s.
    pub p99_s: f64,
}

impl ServeLevel {
    /// Requests per second of the median run.
    pub fn requests_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed.median_s
    }
}

/// Results of one serve-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// The configuration that produced this report.
    pub config: ServeBenchConfig,
    /// Hardware threads available to the process.
    pub threads: usize,
    /// Direct-leg (single shared engine) measurements, in
    /// `config.connections` order.
    pub levels: Vec<ServeLevel>,
    /// Sharded-leg measurements, same order.
    pub sharded_levels: Vec<ServeLevel>,
    /// Direct leg's shared-engine cache hit rate at the end of the run
    /// (hits / lookups; the repeated scripts make this high by
    /// construction).
    pub hit_rate: f64,
    /// Sharded leg's aggregate hit rate over every shard engine — the
    /// cache-affine routing must keep this as warm as the shared cache.
    pub sharded_hit_rate: f64,
    /// LRU promotions recorded by the direct leg's engine.
    pub promotions: u64,
    /// Requests handled by the direct server across the whole bench.
    pub requests_total: u64,
    /// Requests handled by the sharded server across the whole bench.
    pub sharded_requests_total: u64,
    /// Responses that failed (`ok: false` or unparseable) in either
    /// leg without being byte-identity mismatches — kept separate so a
    /// failed request is never misreported as a determinism break.
    pub request_errors: u64,
    /// Whether every deterministic response — direct and sharded — was
    /// byte-identical to the in-process reference engine's answer.
    pub byte_identical: bool,
}

impl ServeBenchReport {
    /// Sharded-vs-direct throughput ratio at the highest concurrency
    /// level (> 1.0 = sharding beat the shared-engine plateau). This is
    /// the in-process ratio `--check-baseline` gates.
    pub fn sharded_speedup(&self) -> f64 {
        match (self.levels.last(), self.sharded_levels.last()) {
            (Some(direct), Some(sharded)) => sharded.requests_per_s() / direct.requests_per_s(),
            _ => 0.0,
        }
    }

    /// The flat-JSON rendering written to `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .int("nets", self.config.nets as u64)
            .int("trees", self.config.trees as u64)
            .int("requests_per_conn", self.config.requests_per_conn as u64)
            .int("runs", self.config.runs as u64)
            .int("workers", self.config.workers as u64)
            .int("shards", self.config.shards as u64)
            .int("threads", self.threads as u64);
        for level in &self.levels {
            let c = level.connections;
            obj = obj
                .num(&format!("c{c}_s"), level.elapsed.median_s)
                .num(&format!("c{c}_mad_s"), level.elapsed.mad_s)
                .num(&format!("c{c}_req_per_s"), level.requests_per_s())
                .num(&format!("c{c}_p50_s"), level.p50_s)
                .num(&format!("c{c}_p95_s"), level.p95_s)
                .num(&format!("c{c}_p99_s"), level.p99_s);
        }
        for level in &self.sharded_levels {
            let c = level.connections;
            obj = obj
                .num(&format!("sharded_c{c}_s"), level.elapsed.median_s)
                .num(&format!("sharded_c{c}_mad_s"), level.elapsed.mad_s)
                .num(&format!("sharded_c{c}_req_per_s"), level.requests_per_s())
                .num(&format!("sharded_c{c}_p50_s"), level.p50_s)
                .num(&format!("sharded_c{c}_p95_s"), level.p95_s)
                .num(&format!("sharded_c{c}_p99_s"), level.p99_s);
        }
        obj.num("sharded_speedup", self.sharded_speedup())
            .num("hit_rate", self.hit_rate)
            .num("sharded_hit_rate", self.sharded_hit_rate)
            .int("promotions", self.promotions)
            .int("requests_total", self.requests_total)
            .int("sharded_requests_total", self.sharded_requests_total)
            .int("request_errors", self.request_errors)
            .bool("byte_identical", self.byte_identical)
            .finish()
    }

    /// One-paragraph human summary.
    pub fn summary_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "serve: {} nets + {} trees, {} req/conn, {} run(s), {} worker(s), {} shard(s)\n",
            self.config.nets,
            self.config.trees,
            self.config.requests_per_conn,
            self.config.runs,
            self.config.workers,
            self.config.shards,
        );
        for (label, levels) in [("direct", &self.levels), ("sharded", &self.sharded_levels)] {
            for level in levels {
                let _ = writeln!(
                    out,
                    "  {label:>7} {:>2} conn(s): median {:.3}s  mad {:.4}s  ({:.2} req/s, {} verified/run)  \
                     p50 {:.1}ms  p95 {:.1}ms  p99 {:.1}ms",
                    level.connections,
                    level.elapsed.median_s,
                    level.elapsed.mad_s,
                    level.requests_per_s(),
                    level.verified,
                    level.p50_s * 1e3,
                    level.p95_s * 1e3,
                    level.p99_s * 1e3,
                );
            }
        }
        let _ = write!(
            out,
            "  sharded_speedup: {:.3}   hit_rate: {:.3} (sharded {:.3})   \
             request_errors: {}   byte_identical: {}",
            self.sharded_speedup(),
            self.hit_rate,
            self.sharded_hit_rate,
            self.request_errors,
            self.byte_identical
        );
        out
    }
}

/// One leg's timed runs at one level.
fn run_level(
    server: &ServerHandle,
    load: &PreparedLoad,
    connections: usize,
    runs: usize,
    byte_identical: &mut bool,
    request_errors: &mut u64,
) -> ServeLevel {
    let mut samples = Vec::with_capacity(runs.max(1));
    let mut p50s = Vec::with_capacity(runs.max(1));
    let mut p95s = Vec::with_capacity(runs.max(1));
    let mut p99s = Vec::with_capacity(runs.max(1));
    let mut requests = 0;
    let mut verified = 0;
    for _ in 0..runs.max(1) {
        let outcome =
            fire_load(server.addr(), load).expect("loadgen connections over loopback succeed");
        if !outcome.clean() {
            eprintln!(
                "serve bench: {} error(s), {} mismatch(es) at {connections} connection(s)!",
                outcome.errors, outcome.mismatches
            );
        }
        if outcome.mismatches > 0 {
            *byte_identical = false;
        }
        *request_errors += outcome.errors as u64;
        samples.push(outcome.elapsed_ns as f64 * 1e-9);
        p50s.push(outcome.p50_ns as f64 * 1e-9);
        p95s.push(outcome.p95_ns as f64 * 1e-9);
        p99s.push(outcome.p99_ns as f64 * 1e-9);
        requests = outcome.requests;
        verified = outcome.verified;
    }
    ServeLevel {
        connections,
        requests,
        elapsed: summarize(&samples),
        verified,
        p50_s: summarize(&p50s).median_s,
        p95_s: summarize(&p95s).median_s,
        p99_s: summarize(&p99s).median_s,
    }
}

/// Runs the serve bench: starts a direct and a sharded in-process
/// server, drives both with the same prepared loads at every configured
/// concurrency level, byte-checks every response against the shared
/// reference, and reads the final cache stats of both topologies.
///
/// # Panics
///
/// Panics when a server cannot bind a loopback port or a loadgen
/// connection fails at the transport level — a benchmark host without
/// loopback TCP has no meaningful result.
pub fn run_serve_bench(config: ServeBenchConfig) -> ServeBenchReport {
    let tech = Technology::generic_180nm();
    let rip_config = RipConfig::paper();
    let direct_config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: config.workers,
        ..ServeConfig::default()
    };
    let sharded_config = ServeConfig {
        shards: config.shards.max(1),
        ..direct_config.clone()
    };
    let direct = start_server(
        Engine::new(tech.clone(), rip_config.clone()),
        &direct_config,
    )
    .expect("bind a loopback port for the serve bench");
    let sharded = start_server(
        Engine::new(tech.clone(), rip_config.clone()),
        &sharded_config,
    )
    .expect("bind a loopback port for the sharded serve bench");
    let reference = ServeState::new(Engine::new(tech, rip_config));

    let mut levels = Vec::with_capacity(config.connections.len());
    let mut sharded_levels = Vec::with_capacity(config.connections.len());
    let mut byte_identical = true;
    let mut request_errors = 0u64;
    for &connections in &config.connections {
        let loadgen = LoadgenConfig {
            connections,
            requests_per_conn: config.requests_per_conn,
            nets: config.nets,
            trees: config.trees,
            ..LoadgenConfig::default()
        };
        // Scripts and their expected responses are identical across the
        // repeated runs of a level AND across the two legs: prepare
        // (and drive the reference engine) once, fire many times —
        // matching both legs against one render set is what makes the
        // sharded leg's byte-identity transitive to the direct leg's.
        let load = prepare_load(Some(&reference), &loadgen);
        levels.push(run_level(
            &direct,
            &load,
            connections,
            config.runs,
            &mut byte_identical,
            &mut request_errors,
        ));
        sharded_levels.push(run_level(
            &sharded,
            &load,
            connections,
            config.runs,
            &mut byte_identical,
            &mut request_errors,
        ));
    }

    let direct_monitor = direct.monitor();
    let sharded_monitor = sharded.monitor();
    direct.shutdown();
    sharded.shutdown();
    let (_, _, promotions, ..) = direct_monitor.engine_totals();
    ServeBenchReport {
        config,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        levels,
        sharded_levels,
        hit_rate: direct_monitor.hit_rate(),
        sharded_hit_rate: sharded_monitor.hit_rate(),
        promotions,
        requests_total: direct_monitor.requests_total(),
        sharded_requests_total: sharded_monitor.requests_total(),
        request_errors,
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::read_json_number;

    #[test]
    fn tiny_serve_bench_reports_and_serializes() {
        let report = run_serve_bench(ServeBenchConfig {
            connections: vec![1, 2],
            requests_per_conn: 3,
            nets: 2,
            trees: 1,
            runs: 1,
            workers: 2,
            shards: 2,
        });
        assert!(report.byte_identical, "responses diverged from reference");
        assert_eq!(report.request_errors, 0);
        assert_eq!(report.levels.len(), 2);
        assert_eq!(report.sharded_levels.len(), 2);
        assert!(report.requests_total >= 9);
        assert!(report.sharded_requests_total >= 9);
        assert!(report.sharded_speedup() > 0.0);
        // The repeated script re-solves the same nets: both topologies
        // must be hitting their caches by the second level.
        assert!(report.hit_rate > 0.0);
        assert!(report.sharded_hit_rate > 0.0);
        let json = report.to_json();
        for key in [
            "nets",
            "trees",
            "workers",
            "shards",
            "c1_s",
            "c1_req_per_s",
            "c1_p50_s",
            "c1_p95_s",
            "c1_p99_s",
            "c2_req_per_s",
            "sharded_c1_req_per_s",
            "sharded_c1_p99_s",
            "sharded_c2_req_per_s",
            "sharded_speedup",
            "hit_rate",
            "sharded_hit_rate",
            "requests_total",
            "sharded_requests_total",
        ] {
            assert!(
                read_json_number(&json, key).is_some(),
                "missing key {key} in {json}"
            );
        }
        assert!(report.summary_text().contains("sharded"));
    }
}
