//! Statistical benchmark harness: repeated timed runs with warm-up
//! discard, summarized by median and MAD (median absolute deviation) —
//! robust location/scale estimators that a single scheduler hiccup
//! cannot drag around, unlike mean/stddev.
//!
//! Every performance claim in this repository flows through here: the
//! `bench_dp_frontier` and `bench_batch` binaries (and the `rip bench`
//! CLI subcommand wrapping them) summarize their runs with
//! [`summarize`] and serialize with [`JsonObject`] into the committed
//! `BENCH_*.json` baselines that CI's bench-regression job compares
//! against ([`read_json_number`] is the comparison's parser — the
//! workspace builds offline, so the JSON layer is deliberately tiny and
//! flat).

use std::time::Instant;

/// Robust summary of repeated timed runs, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatSummary {
    /// Number of timed runs summarized.
    pub runs: usize,
    /// Median run time, s.
    pub median_s: f64,
    /// Median absolute deviation around the median, s.
    pub mad_s: f64,
    /// Fastest run, s.
    pub min_s: f64,
    /// Slowest run, s.
    pub max_s: f64,
    /// Mean run time, s (for eyeballing skew against the median).
    pub mean_s: f64,
}

/// Median of a sample (averages the middle pair for even sizes).
///
/// # Panics
///
/// Panics on an empty sample.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// Median absolute deviation around `center`.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn mad(samples: &[f64], center: f64) -> f64 {
    let deviations: Vec<f64> = samples.iter().map(|x| (x - center).abs()).collect();
    median(&deviations)
}

/// Summarizes a sample of run times.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn summarize(samples: &[f64]) -> StatSummary {
    let median_s = median(samples);
    let min_s = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max_s = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean_s = samples.iter().sum::<f64>() / samples.len() as f64;
    StatSummary {
        runs: samples.len(),
        median_s,
        mad_s: mad(samples, median_s),
        min_s,
        max_s,
        mean_s,
    }
}

/// Times `runs` invocations of `f` after `warmup` discarded invocations,
/// returning the per-run wall-clock seconds.
pub fn measure_runs(warmup: usize, runs: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// A tiny flat-JSON object writer (the workspace builds without serde).
/// Keys are written in insertion order; numbers use Rust's shortest
/// round-trip `Display` so the files re-parse exactly.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), format!("{value}")));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), format!("{value}")));
        self
    }

    /// Renders the object with one field per line.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Extracts a numeric field from a flat JSON document (the `BENCH_*`
/// baselines). Returns `None` when the key is absent or its value does
/// not parse as a number — callers treat that as "no baseline".
pub fn read_json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95];
        let spiked = [1.0, 1.1, 0.9, 1.05, 100.0];
        let m_clean = mad(&clean, median(&clean));
        let m_spiked = mad(&spiked, median(&spiked));
        // One outlier barely moves the MAD (it would explode a stddev).
        assert!(m_spiked < 0.2, "MAD {m_spiked} should shrug off the spike");
        assert!(m_clean <= m_spiked + 0.2);
    }

    #[test]
    fn summarize_orders_its_statistics() {
        let s = summarize(&[2.0, 1.0, 4.0, 3.0]);
        assert_eq!(s.runs, 4);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 4.0);
        assert_eq!(s.median_s, 2.5);
        assert_eq!(s.mean_s, 2.5);
        assert!(s.min_s <= s.median_s && s.median_s <= s.max_s);
    }

    #[test]
    fn measure_runs_discards_warmup() {
        let mut calls = 0u32;
        let samples = measure_runs(2, 3, || calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn json_roundtrips_through_the_reader() {
        let doc = JsonObject::new()
            .int("nets", 100)
            .num("nets_per_s", 13.451)
            .num("speedup", 1.875)
            .bool("byte_identical", true)
            .finish();
        assert_eq!(read_json_number(&doc, "nets"), Some(100.0));
        assert_eq!(read_json_number(&doc, "nets_per_s"), Some(13.451));
        assert_eq!(read_json_number(&doc, "speedup"), Some(1.875));
        assert_eq!(read_json_number(&doc, "missing"), None);
    }

    #[test]
    fn reader_survives_the_seed_bench_layout() {
        let doc =
            "{\n  \"nets\": 100,\n  \"batch_nets_per_s\": 13.219,\n  \"byte_identical\": true\n}\n";
        assert_eq!(read_json_number(doc, "batch_nets_per_s"), Some(13.219));
        assert_eq!(read_json_number(doc, "byte_identical"), None);
    }
}
