//! The tree-workload benchmark behind `BENCH_tree.json`: the production
//! SoA tree DP vs the frozen pre-SoA engine (`rip_dp::reference::tree`)
//! on a generated multi-sink corpus — unmasked on the subdivided site
//! trees, and **masked** on the raw topologies (where each net's
//! forbidden-node run aligns index-for-index), making masked floorplans
//! a measured, byte-identity-gated scenario — plus cold-session
//! `Engine::solve_tree_batch` throughput over the full tree pipeline.
//!
//! Like the frontier bench, both DP sides run in the same process on the
//! same trees, so the recorded `speedup_vs_reference` is
//! machine-independent: `BENCH_tree.json` can be regenerated anywhere
//! and the ratio stays comparable — CI's bench-regression gate checks it
//! alongside the absolute throughput baselines.

use crate::stats::{summarize, JsonObject, StatSummary};
use rip_core::{BatchTarget, Engine, RipConfig, TreeRipConfig};
use rip_delay::RcTree;
use rip_dp::{reference, tree_min_power_with, TreeScratch, TreeSolution};
use rip_net::{RandomTreeConfig, TreeNetGenerator};
use rip_tech::{RepeaterLibrary, Technology};
use std::time::Instant;

/// Workload and repetition parameters of the tree bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeBenchConfig {
    /// Trees in the corpus (deterministic seed 2005 suite).
    pub trees: usize,
    /// Timed DP runs per side.
    pub runs: usize,
    /// Discarded warm-up runs per side.
    pub warmup: usize,
    /// Edge-subdivision step for the raw-DP comparison, µm.
    pub step_um: f64,
    /// Timing target as a multiple of each tree's min-delay.
    pub target_mult: f64,
    /// Timed `Engine::solve_tree_batch` runs (each on a fresh engine).
    pub batch_runs: usize,
    /// Trees fed to the batch-pipeline leg (a prefix of the corpus).
    /// The full hybrid pipeline is orders of magnitude heavier per tree
    /// than the raw DP (fine 50 µm subdivision, enriched libraries), so
    /// the batch leg samples rather than sweeps.
    pub batch_trees: usize,
    /// Trees fed to the **masked** batch-pipeline leg (a prefix of the
    /// corpus, each tree's paper-distribution forbidden-node mask in
    /// force through the whole hybrid pipeline).
    pub masked_batch_trees: usize,
}

impl TreeBenchConfig {
    /// Full run (committed baseline) or `--quick` smoke run.
    pub fn preset(quick: bool) -> Self {
        if quick {
            Self {
                trees: 4,
                runs: 2,
                warmup: 1,
                step_um: 200.0,
                target_mult: 1.3,
                batch_runs: 1,
                batch_trees: 2,
                masked_batch_trees: 2,
            }
        } else {
            Self {
                trees: 30,
                runs: 5,
                warmup: 2,
                step_um: 200.0,
                target_mult: 1.3,
                batch_runs: 1,
                batch_trees: 6,
                masked_batch_trees: 6,
            }
        }
    }
}

/// Results of one tree-bench invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeBenchReport {
    /// The configuration that produced this report.
    pub config: TreeBenchConfig,
    /// Library widths used by the raw-DP comparison.
    pub library_widths: usize,
    /// Tree nodes solved per full DP pass (after subdivision).
    pub nodes_per_pass: u64,
    /// Options created per full DP pass (both sides create identical
    /// counts — pinned by the byte-identical check).
    pub options_per_pass: u64,
    /// Run-time summary of the production (SoA frontier) tree DP.
    pub frontier: StatSummary,
    /// Run-time summary of the frozen pre-SoA tree DP.
    pub reference: StatSummary,
    /// `reference.median_s / frontier.median_s`.
    pub speedup_vs_reference: f64,
    /// Run-time summary of the production tree DP on the **masked** raw
    /// corpus (each net's forbidden-node mask in force).
    pub masked: StatSummary,
    /// Run-time summary of the frozen engine on the same masked corpus.
    pub masked_reference: StatSummary,
    /// `masked_reference.median_s / masked.median_s`.
    pub masked_speedup_vs_reference: f64,
    /// Summary of the timed `Engine::solve_tree_batch` runs (full
    /// hybrid pipeline, fresh engine per run).
    pub batch: StatSummary,
    /// Summary of the timed `Engine::solve_tree_batch_masked` runs:
    /// the full hybrid pipeline with each tree's forbidden-node mask
    /// binding end to end (fresh engine per run, byte-identity-checked
    /// against per-tree sequential masked solves).
    pub masked_batch: StatSummary,
    /// Whether both DP sides produced byte-identical solutions on every
    /// tree — unmasked *and* masked (checked during warm-up).
    pub byte_identical: bool,
}

impl TreeBenchReport {
    /// Trees solved per second by the production DP (median run).
    pub fn frontier_trees_per_s(&self) -> f64 {
        self.config.trees as f64 / self.frontier.median_s
    }

    /// Trees solved per second by the batch pipeline (median run).
    pub fn batch_trees_per_s(&self) -> f64 {
        self.config.batch_trees.min(self.config.trees) as f64 / self.batch.median_s
    }

    /// Trees solved per second by the masked batch pipeline (median
    /// run).
    pub fn masked_batch_trees_per_s(&self) -> f64 {
        self.config.masked_batch_trees.min(self.config.trees) as f64 / self.masked_batch.median_s
    }

    /// The flat-JSON rendering written to `BENCH_tree.json`.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .int("trees", self.config.trees as u64)
            .int("runs", self.config.runs as u64)
            .int("warmup", self.config.warmup as u64)
            .num("step_um", self.config.step_um)
            .num("target_mult", self.config.target_mult)
            .int("library_widths", self.library_widths as u64)
            .int("nodes_per_pass", self.nodes_per_pass)
            .int("options_per_pass", self.options_per_pass)
            .num("frontier_median_s", self.frontier.median_s)
            .num("frontier_mad_s", self.frontier.mad_s)
            .num("frontier_min_s", self.frontier.min_s)
            .num("frontier_trees_per_s", self.frontier_trees_per_s())
            .num("reference_median_s", self.reference.median_s)
            .num("reference_mad_s", self.reference.mad_s)
            .num("reference_min_s", self.reference.min_s)
            .num(
                "reference_trees_per_s",
                self.config.trees as f64 / self.reference.median_s,
            )
            .num("speedup_vs_reference", self.speedup_vs_reference)
            .num("masked_median_s", self.masked.median_s)
            .num("masked_mad_s", self.masked.mad_s)
            .num("masked_reference_median_s", self.masked_reference.median_s)
            .num(
                "masked_speedup_vs_reference",
                self.masked_speedup_vs_reference,
            )
            .int("batch_runs", self.config.batch_runs as u64)
            .int(
                "batch_trees",
                self.config.batch_trees.min(self.config.trees) as u64,
            )
            .num("batch_s", self.batch.median_s)
            .num("batch_mad_s", self.batch.mad_s)
            .num("batch_trees_per_s", self.batch_trees_per_s())
            .int(
                "masked_batch_trees",
                self.config.masked_batch_trees.min(self.config.trees) as u64,
            )
            .num("masked_batch_s", self.masked_batch.median_s)
            .num("masked_batch_mad_s", self.masked_batch.mad_s)
            .num("masked_batch_trees_per_s", self.masked_batch_trees_per_s())
            .bool("byte_identical", self.byte_identical)
            .finish()
    }

    /// One-paragraph human summary.
    pub fn summary_text(&self) -> String {
        format!(
            "tree_dp: {} trees ({} nodes subdivided), {} runs (+{} warmup), {} options/pass\n\
               frontier  median {:.4}s  mad {:.4}s  ({:.1} trees/s)\n\
               reference median {:.4}s  mad {:.4}s  ({:.1} trees/s)\n\
               speedup vs reference: {:.2}x   byte_identical: {}\n\
               masked raw corpus: median {:.4}s vs reference {:.4}s  ({:.2}x)\n\
               pipeline batch ({} trees) median {:.3}s over {} run(s)  ({:.2} trees/s)\n\
               masked pipeline batch ({} trees) median {:.3}s  ({:.2} trees/s)",
            self.config.trees,
            self.nodes_per_pass,
            self.config.runs,
            self.config.warmup,
            self.options_per_pass,
            self.frontier.median_s,
            self.frontier.mad_s,
            self.frontier_trees_per_s(),
            self.reference.median_s,
            self.reference.mad_s,
            self.config.trees as f64 / self.reference.median_s,
            self.speedup_vs_reference,
            self.byte_identical,
            self.masked.median_s,
            self.masked_reference.median_s,
            self.masked_speedup_vs_reference,
            self.config.batch_trees.min(self.config.trees),
            self.batch.median_s,
            self.config.batch_runs,
            self.batch_trees_per_s(),
            self.config.masked_batch_trees.min(self.config.trees),
            self.masked_batch.median_s,
            self.masked_batch_trees_per_s(),
        )
    }
}

/// Runs the tree bench with the given preset.
pub fn run_tree_bench(config: TreeBenchConfig) -> TreeBenchReport {
    let tech = Technology::generic_180nm();
    let device = tech.device();
    let library = RepeaterLibrary::range_step(10.0, 400.0, 40.0).expect("valid library");
    let nets = TreeNetGenerator::suite(RandomTreeConfig::default(), 2005, config.trees)
        .expect("valid config");
    let raw: Vec<(RcTree, f64)> = nets
        .iter()
        .map(|net| (RcTree::from_tree_net(net, device), net.driver_width()))
        .collect();
    // The raw-DP comparison solves each tree's subdivision (its
    // candidate buffer sites) directly, mirroring the chain frontier
    // bench's dense uniform grids.
    let sites: Vec<(RcTree, f64)> = raw
        .iter()
        .map(|(tree, driver)| (tree.subdivided(config.step_um).0, *driver))
        .collect();
    let nodes_per_pass: u64 = sites.iter().map(|(t, _)| t.len() as u64).sum();
    // Targets fixed outside the timed region so both sides solve the
    // exact same problems.
    let targets: Vec<f64> = sites
        .iter()
        .map(|(tree, driver)| {
            reference::tree::tree_min_delay(tree, device, *driver, &library, None)
                .expect("min-delay tree DP cannot fail without a mask")
                .delay_fs
                * config.target_mult
        })
        .collect();

    let mut scratch = TreeScratch::new();
    let solve_frontier = |scratch: &mut TreeScratch| -> Vec<TreeSolution> {
        sites
            .iter()
            .zip(&targets)
            .map(|((tree, driver), &t)| {
                tree_min_power_with(scratch, tree, device, *driver, &library, None, t)
                    .expect("1.3x targets are feasible")
            })
            .collect()
    };
    let solve_reference = || -> Vec<TreeSolution> {
        sites
            .iter()
            .zip(&targets)
            .map(|((tree, driver), &t)| {
                reference::tree::tree_min_power(tree, device, *driver, &library, None, t)
                    .expect("1.3x targets are feasible")
            })
            .collect()
    };

    // Warm-up (discarded) + the equivalence check.
    let mut byte_identical = true;
    let mut options_per_pass = 0u64;
    for pass in 0..config.warmup.max(1) {
        let a = solve_frontier(&mut scratch);
        let b = solve_reference();
        if pass == 0 {
            options_per_pass = a.iter().map(|s| s.stats.options_created).sum();
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                if format!("{x:?}") != format!("{y:?}") {
                    eprintln!("tree {i}: frontier solution differs from reference!");
                    byte_identical = false;
                }
            }
        }
    }

    // Timed DP runs, interleaved so slow drift hits both sides equally.
    let mut frontier_samples = Vec::with_capacity(config.runs);
    let mut reference_samples = Vec::with_capacity(config.runs);
    for _ in 0..config.runs {
        let t0 = Instant::now();
        let a = solve_frontier(&mut scratch);
        frontier_samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(&a);
        let t1 = Instant::now();
        let b = solve_reference();
        reference_samples.push(t1.elapsed().as_secs_f64());
        std::hint::black_box(&b);
    }

    // Masked leg: the same corpus on its *raw* topologies, each net's
    // forbidden-node mask in force (masks align index-for-index only on
    // the unsubdivided trees). Targets come from the reference engine's
    // masked min-delay, so both sides solve feasible masked problems.
    let masks: Vec<Vec<bool>> = nets.iter().map(|net| net.allowed_mask()).collect();
    let masked_targets: Vec<f64> = raw
        .iter()
        .zip(&masks)
        .map(|((tree, driver), mask)| {
            reference::tree::tree_min_delay(tree, device, *driver, &library, Some(mask))
                .expect("aligned masks cannot fail the min-delay tree DP")
                .delay_fs
                * config.target_mult
        })
        .collect();
    let solve_masked_frontier = |scratch: &mut TreeScratch| -> Vec<TreeSolution> {
        raw.iter()
            .zip(&masks)
            .zip(&masked_targets)
            .map(|(((tree, driver), mask), &t)| {
                tree_min_power_with(scratch, tree, device, *driver, &library, Some(mask), t)
                    .expect("targets above the masked min-delay are feasible")
            })
            .collect()
    };
    let solve_masked_reference = || -> Vec<TreeSolution> {
        raw.iter()
            .zip(&masks)
            .zip(&masked_targets)
            .map(|(((tree, driver), mask), &t)| {
                reference::tree::tree_min_power(tree, device, *driver, &library, Some(mask), t)
                    .expect("targets above the masked min-delay are feasible")
            })
            .collect()
    };
    {
        // Warm-up pass doubling as the masked equivalence + legality
        // check: byte-identical solutions, no buffer on a blocked node.
        let a = solve_masked_frontier(&mut scratch);
        let b = solve_masked_reference();
        for (i, ((x, y), mask)) in a.iter().zip(&b).zip(&masks).enumerate() {
            if format!("{x:?}") != format!("{y:?}") {
                eprintln!("masked tree {i}: frontier solution differs from reference!");
                byte_identical = false;
            }
            if mask
                .iter()
                .zip(&x.buffer_widths)
                .any(|(&ok, w)| !ok && w.is_some())
            {
                eprintln!("masked tree {i}: buffer on a blocked node!");
                byte_identical = false;
            }
        }
    }
    let mut masked_samples = Vec::with_capacity(config.runs);
    let mut masked_reference_samples = Vec::with_capacity(config.runs);
    for _ in 0..config.runs {
        let t0 = Instant::now();
        let a = solve_masked_frontier(&mut scratch);
        masked_samples.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(&a);
        let t1 = Instant::now();
        let b = solve_masked_reference();
        masked_reference_samples.push(t1.elapsed().as_secs_f64());
        std::hint::black_box(&b);
    }

    // Batch pipeline side: fresh engine sessions, one parallel tree
    // batch each over a prefix of the raw (unsubdivided) trees,
    // mirroring `run_batch_bench`'s cold-session convention.
    let batch_corpus = &raw[..config.batch_trees.min(raw.len())];
    let tree_config = TreeRipConfig::paper();
    let probe = Engine::new(tech.clone(), RipConfig::paper());
    let batch_targets: Vec<f64> = batch_corpus
        .iter()
        .map(|(tree, driver)| config.target_mult * probe.tree_tau_min(tree, *driver, &tree_config))
        .collect();
    drop(probe);
    let mut batch_samples = Vec::with_capacity(config.batch_runs.max(1));
    for _ in 0..config.batch_runs.max(1) {
        let engine = Engine::new(tech.clone(), RipConfig::paper());
        let t = Instant::now();
        let outcomes = engine.solve_tree_batch(
            batch_corpus,
            &BatchTarget::PerNetFs(batch_targets.clone()),
            &tree_config,
        );
        batch_samples.push(t.elapsed().as_secs_f64());
        for (i, out) in outcomes.iter().enumerate() {
            assert!(out.is_ok(), "tree {i}: pipeline failed in the bench");
        }
    }

    // Masked batch pipeline side: the same cold-session convention with
    // every tree's paper-distribution forbidden-node mask binding
    // through the whole hybrid pipeline
    // (`Engine::solve_tree_batch_masked`). The first run doubles as the
    // equivalence check: the batch solutions must be byte-identical to
    // per-tree sequential masked solves on a fresh engine.
    let masked_batch_corpus: Vec<(RcTree, f64, Option<Vec<bool>>)> = raw
        .iter()
        .zip(&masks)
        .take(config.masked_batch_trees.min(raw.len()))
        .map(|((tree, driver), mask)| (tree.clone(), *driver, Some(mask.clone())))
        .collect();
    let masked_probe = Engine::new(tech.clone(), RipConfig::paper());
    let masked_batch_targets: Vec<f64> = masked_batch_corpus
        .iter()
        .map(|(tree, driver, mask)| {
            config.target_mult
                * masked_probe
                    .tree_tau_min_masked(tree, *driver, &tree_config, mask.as_deref())
                    .expect("aligned masks cannot fail the masked min-delay")
        })
        .collect();
    drop(masked_probe);
    let mut masked_batch_samples = Vec::with_capacity(config.batch_runs.max(1));
    for run in 0..config.batch_runs.max(1) {
        let engine = Engine::new(tech.clone(), RipConfig::paper());
        let t = Instant::now();
        let outcomes = engine.solve_tree_batch_masked(
            &masked_batch_corpus,
            &BatchTarget::PerNetFs(masked_batch_targets.clone()),
            &tree_config,
        );
        masked_batch_samples.push(t.elapsed().as_secs_f64());
        for (i, out) in outcomes.iter().enumerate() {
            assert!(out.is_ok(), "masked tree {i}: pipeline failed in the bench");
        }
        if run == 0 {
            let sequential = Engine::new(tech.clone(), RipConfig::paper());
            for (i, ((tree, driver, mask), (outcome, &target_fs))) in masked_batch_corpus
                .iter()
                .zip(outcomes.iter().zip(&masked_batch_targets))
                .enumerate()
            {
                let reference = sequential
                    .solve_tree_masked(tree, *driver, target_fs, &tree_config, mask.as_deref())
                    .expect("the batch run proved the target feasible");
                let batch_sol = outcome.as_ref().expect("checked ok above");
                if format!("{:?}", batch_sol.solution) != format!("{:?}", reference.solution) {
                    eprintln!("masked batch tree {i}: batch solution differs from sequential!");
                    byte_identical = false;
                }
                if let Some(mask) = mask {
                    if mask
                        .iter()
                        .zip(&batch_sol.solution.buffer_widths)
                        .any(|(&ok, w)| !ok && w.is_some())
                    {
                        eprintln!("masked batch tree {i}: buffer on a blocked node!");
                        byte_identical = false;
                    }
                }
            }
        }
    }

    let frontier = summarize(&frontier_samples);
    let reference = summarize(&reference_samples);
    let masked = summarize(&masked_samples);
    let masked_reference = summarize(&masked_reference_samples);
    TreeBenchReport {
        config,
        library_widths: library.len(),
        nodes_per_pass,
        options_per_pass,
        speedup_vs_reference: reference.median_s / frontier.median_s,
        frontier,
        reference,
        masked_speedup_vs_reference: masked_reference.median_s / masked.median_s,
        masked,
        masked_reference,
        batch: summarize(&batch_samples),
        masked_batch: summarize(&masked_batch_samples),
        byte_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::read_json_number;

    #[test]
    fn tiny_tree_bench_is_byte_identical_and_serializes() {
        let config = TreeBenchConfig {
            trees: 2,
            runs: 1,
            warmup: 1,
            step_um: 400.0,
            target_mult: 1.4,
            batch_runs: 1,
            batch_trees: 1,
            masked_batch_trees: 1,
        };
        let report = run_tree_bench(config);
        assert!(report.byte_identical);
        assert!(report.options_per_pass > 0);
        assert!(report.nodes_per_pass > 0);
        let json = report.to_json();
        assert_eq!(read_json_number(&json, "trees"), Some(2.0));
        assert!(read_json_number(&json, "speedup_vs_reference").is_some());
        assert!(read_json_number(&json, "masked_speedup_vs_reference").is_some());
        assert!(read_json_number(&json, "masked_median_s").unwrap() > 0.0);
        assert!(read_json_number(&json, "frontier_trees_per_s").unwrap() > 0.0);
        assert!(read_json_number(&json, "batch_trees_per_s").unwrap() > 0.0);
        assert_eq!(read_json_number(&json, "masked_batch_trees"), Some(1.0));
        assert!(read_json_number(&json, "masked_batch_trees_per_s").unwrap() > 0.0);
        assert!(report.summary_text().contains("speedup"));
    }
}
