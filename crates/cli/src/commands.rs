//! CLI command implementations, separated from I/O for testability.

use crate::netfile::{format_net, parse_net};
use rip_core::{
    baseline_dp, rip, tau_min_paper, BaselineConfig, RipConfig,
};
use rip_net::{NetGenerator, RandomNetConfig, TwoPinNet};
use rip_tech::units::{fs_from_ns, ns_from_fs};
use rip_tech::Technology;
use std::fmt::Write as _;

/// Everything that can go wrong while executing a command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Net file could not be parsed.
    Parse(crate::netfile::ParseError),
    /// The solver failed (e.g. infeasible target).
    Solve(String),
    /// Filesystem trouble.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Parse(e) => write!(f, "net file error: {e}"),
            CliError::Solve(msg) => write!(f, "solver error: {msg}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<crate::netfile::ParseError> for CliError {
    fn from(e: crate::netfile::ParseError) -> Self {
        CliError::Parse(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// The timing target of a solve: absolute or relative to `τ_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Absolute target in nanoseconds.
    Ns(f64),
    /// Multiplier over the net's `τ_min`.
    Multiplier(f64),
}

impl Target {
    fn resolve_fs(self, net: &TwoPinNet, tech: &Technology) -> f64 {
        match self {
            Target::Ns(ns) => fs_from_ns(ns),
            Target::Multiplier(m) => m * tau_min_paper(net, tech.device()),
        }
    }
}

/// `rip solve`: run the hybrid pipeline on a net description.
///
/// Returns the human-readable report.
///
/// # Errors
///
/// Returns [`CliError::Parse`] for bad input and [`CliError::Solve`] for
/// infeasible targets.
pub fn cmd_solve(net_text: &str, target: Target) -> Result<String, CliError> {
    let net = parse_net(net_text)?;
    let tech = Technology::generic_180nm();
    let target_fs = target.resolve_fs(&net, &tech);
    let outcome = rip(&net, &tech, target_fs, &RipConfig::paper())
        .map_err(|e| CliError::Solve(e.to_string()))?;
    let sol = &outcome.solution;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "net: {:.1} mm, {} segments, {} zone(s)",
        net.total_length() / 1000.0,
        net.segments().len(),
        net.zones().len()
    );
    let _ = writeln!(
        out,
        "target: {:.4} ns   achieved: {:.4} ns",
        ns_from_fs(target_fs),
        ns_from_fs(sol.delay_fs)
    );
    let _ = writeln!(out, "repeaters: {}   total width: {:.0} u", sol.assignment.len(), sol.total_width);
    for r in sol.assignment.repeaters() {
        let _ = writeln!(out, "  x = {:9.1} um   w = {:5.0} u", r.position, r.width);
    }
    let power =
        rip_delay::assignment_power(&net, tech.device(), tech.power(), &sol.assignment);
    let _ = writeln!(
        out,
        "power: {:.4} mW repeaters + {:.4} mW wire = {:.4} mW",
        power.repeater * 1e3,
        power.wire * 1e3,
        power.total() * 1e3
    );
    Ok(out)
}

/// `rip tmin`: minimum achievable delay of a net description.
///
/// # Errors
///
/// Returns [`CliError::Parse`] for bad input.
pub fn cmd_tmin(net_text: &str) -> Result<String, CliError> {
    let net = parse_net(net_text)?;
    let tech = Technology::generic_180nm();
    let tmin = tau_min_paper(&net, tech.device());
    Ok(format!("tau_min = {:.4} ns\n", ns_from_fs(tmin)))
}

/// `rip baseline`: run the Lillis-style DP baseline at a given width
/// granularity.
///
/// # Errors
///
/// Returns [`CliError::Solve`] when the baseline violates the target
/// (the paper's `V_DP` event) — the message carries the achievable
/// delay.
pub fn cmd_baseline(
    net_text: &str,
    target: Target,
    granularity_u: f64,
) -> Result<String, CliError> {
    if !(granularity_u.is_finite() && granularity_u > 0.0) {
        return Err(CliError::Usage("granularity must be positive".into()));
    }
    let net = parse_net(net_text)?;
    let tech = Technology::generic_180nm();
    let target_fs = target.resolve_fs(&net, &tech);
    let config = BaselineConfig::paper_table2(granularity_u);
    let sol = baseline_dp(&net, tech.device(), &config, target_fs)
        .map_err(|e| CliError::Solve(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "baseline DP (g = {granularity_u}u): delay {:.4} ns, total width {:.0} u, {} repeaters",
        ns_from_fs(sol.delay_fs),
        sol.total_width,
        sol.assignment.len()
    );
    for r in sol.assignment.repeaters() {
        let _ = writeln!(out, "  x = {:9.1} um   w = {:5.0} u", r.position, r.width);
    }
    Ok(out)
}

/// `rip generate`: emit `count` random paper-distribution nets in the
/// `.net` format, concatenated with `--- net <i> ---` separators (or
/// individually via the caller).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for a zero count.
pub fn cmd_generate(seed: u64, count: usize) -> Result<Vec<String>, CliError> {
    if count == 0 {
        return Err(CliError::Usage("count must be at least 1".into()));
    }
    let nets = NetGenerator::suite(RandomNetConfig::default(), seed, count)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(nets.iter().map(format_net).collect())
}

/// The top-level usage text.
pub fn usage() -> &'static str {
    "rip - hybrid repeater insertion for low power (DATE 2005 reproduction)

USAGE:
    rip solve    <net-file> (--target-ns <x> | --target-mult <m>)
    rip baseline <net-file> (--target-ns <x> | --target-mult <m>) --granularity <g_u>
    rip tmin     <net-file>
    rip generate --seed <n> --count <k> [--out-dir <dir>]
    rip help

NET FILE FORMAT (text, '#' comments):
    driver 140                 # driver width, u (optional)
    receiver 60                # receiver width, u (optional)
    segment 3000 0.08 0.20     # length_um r_per_um c_per_um
    zone 5000 8000             # forbidden zone, um from source
"
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET: &str = "\
driver 140
receiver 60
segment 6000 0.08 0.2
segment 6000 0.06 0.18
zone 4000 7000
";

    #[test]
    fn solve_reports_solution_and_meets_target() {
        let report = cmd_solve(NET, Target::Multiplier(1.4)).unwrap();
        assert!(report.contains("repeaters:"));
        assert!(report.contains("total width"));
        assert!(report.contains("mW"));
    }

    #[test]
    fn solve_with_absolute_target() {
        // Generous absolute target: equivalent to a loose multiplier.
        let report = cmd_solve(NET, Target::Ns(2.0)).unwrap();
        assert!(report.contains("target: 2.0000 ns"));
    }

    #[test]
    fn solve_rejects_impossible_targets() {
        let err = cmd_solve(NET, Target::Ns(1e-6)).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }

    #[test]
    fn tmin_reports_nanoseconds() {
        let report = cmd_tmin(NET).unwrap();
        assert!(report.starts_with("tau_min = "));
        assert!(report.contains("ns"));
    }

    #[test]
    fn baseline_runs_and_violations_surface() {
        let ok = cmd_baseline(NET, Target::Multiplier(1.5), 40.0).unwrap();
        assert!(ok.contains("baseline DP"));
        // A 10u-granularity *size-10* library would violate; here the
        // table2-style full-range library at any granularity is feasible,
        // so provoke failure with an impossible absolute target instead.
        let err = cmd_baseline(NET, Target::Ns(1e-6), 40.0).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }

    #[test]
    fn generate_is_deterministic() {
        let a = cmd_generate(7, 3).unwrap();
        let b = cmd_generate(7, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Emitted nets parse back.
        for text in &a {
            crate::netfile::parse_net(text).unwrap();
        }
    }

    #[test]
    fn bad_inputs_are_usage_errors() {
        assert!(matches!(cmd_generate(1, 0), Err(CliError::Usage(_))));
        assert!(matches!(
            cmd_baseline(NET, Target::Ns(1.0), -4.0),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_solve("segment oops\n", Target::Ns(1.0)),
            Err(CliError::Parse(_))
        ));
    }
}
