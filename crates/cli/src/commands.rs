//! CLI command implementations, separated from I/O for testability.

use crate::netfile::{format_net, parse_net, ParseError};
use crate::treefile::{format_tree_file, parse_tree_file};
use rip_core::{BaselineConfig, BatchTarget, Engine, RipError, TreeRipConfig};
use rip_delay::{assignment_power, RcTree};
use rip_net::{NetGenerator, RandomNetConfig, RandomTreeConfig, TreeNetGenerator, TwoPinNet};
use rip_report::TextTable;
use rip_tech::units::{fs_from_ns, ns_from_fs};
use rip_tech::Technology;
use std::fmt::Write as _;
use std::time::Instant;

/// Everything that can go wrong while executing a command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Net file could not be parsed.
    Parse(ParseError),
    /// The solver failed (e.g. infeasible target).
    Solve(RipError),
    /// Filesystem trouble.
    Io(std::io::Error),
    /// A benchmark regressed past the allowed tolerance
    /// (`rip bench --check-baseline`).
    BenchRegression(String),
    /// One or more nets in a batch failed to solve. The rendered table
    /// (with the per-net failure rows) is carried along so the binary
    /// can still print it before exiting nonzero.
    BatchFailed {
        /// The full batch report, including the failure rows.
        report: String,
        /// How many nets failed.
        failed: usize,
    },
    /// The serve/client protocol failed (bad response, refused
    /// connection, server-side error).
    Protocol(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Parse(e) => write!(f, "net file error: {e}"),
            CliError::Solve(e) => write!(f, "solver error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::BenchRegression(msg) => write!(f, "bench regression: {msg}"),
            CliError::BatchFailed { failed, .. } => {
                write!(f, "batch failed: {failed} net(s) did not solve")
            }
            CliError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

rip_tech::impl_error_wrapper!(CliError {
    Parse(ParseError),
    Solve(RipError),
    Io(std::io::Error),
});

/// The timing target of a solve: absolute or relative to `τ_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Absolute target in nanoseconds.
    Ns(f64),
    /// Multiplier over the net's `τ_min`.
    Multiplier(f64),
}

impl Target {
    fn resolve_fs(self, net: &TwoPinNet, engine: &Engine) -> f64 {
        match self {
            Target::Ns(ns) => fs_from_ns(ns),
            Target::Multiplier(m) => m * engine.tau_min(net),
        }
    }
}

/// `rip solve`: run the hybrid pipeline on a net description.
///
/// Returns the human-readable report.
///
/// # Errors
///
/// Returns [`CliError::Parse`] for bad input and [`CliError::Solve`] for
/// infeasible targets.
pub fn cmd_solve(net_text: &str, target: Target) -> Result<String, CliError> {
    let net = parse_net(net_text)?;
    let engine = Engine::paper(Technology::generic_180nm());
    let target_fs = target.resolve_fs(&net, &engine);
    let outcome = engine.solve(&net, target_fs)?;
    let sol = &outcome.solution;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "net: {:.1} mm, {} segments, {} zone(s)",
        net.total_length() / 1000.0,
        net.segments().len(),
        net.zones().len()
    );
    let _ = writeln!(
        out,
        "target: {:.4} ns   achieved: {:.4} ns",
        ns_from_fs(target_fs),
        ns_from_fs(sol.delay_fs)
    );
    let _ = writeln!(
        out,
        "repeaters: {}   total width: {:.0} u",
        sol.assignment.len(),
        sol.total_width
    );
    for r in sol.assignment.repeaters() {
        let _ = writeln!(out, "  x = {:9.1} um   w = {:5.0} u", r.position, r.width);
    }
    let tech = engine.technology();
    let power = assignment_power(&net, tech.device(), tech.power(), &sol.assignment);
    let _ = writeln!(
        out,
        "power: {:.4} mW repeaters + {:.4} mW wire = {:.4} mW",
        power.repeater * 1e3,
        power.wire * 1e3,
        power.total() * 1e3
    );
    Ok(out)
}

/// `rip tmin`: minimum achievable delay of a net description.
///
/// # Errors
///
/// Returns [`CliError::Parse`] for bad input.
pub fn cmd_tmin(net_text: &str) -> Result<String, CliError> {
    let net = parse_net(net_text)?;
    let engine = Engine::paper(Technology::generic_180nm());
    Ok(format!(
        "tau_min = {:.4} ns\n",
        ns_from_fs(engine.tau_min(&net))
    ))
}

/// `rip baseline`: run the Lillis-style DP baseline at a given width
/// granularity.
///
/// # Errors
///
/// Returns [`CliError::Solve`] when the baseline violates the target
/// (the paper's `V_DP` event) — the message carries the achievable
/// delay.
pub fn cmd_baseline(
    net_text: &str,
    target: Target,
    granularity_u: f64,
) -> Result<String, CliError> {
    if !(granularity_u.is_finite() && granularity_u > 0.0) {
        return Err(CliError::Usage("granularity must be positive".into()));
    }
    let net = parse_net(net_text)?;
    let engine = Engine::paper(Technology::generic_180nm());
    let target_fs = target.resolve_fs(&net, &engine);
    let config = BaselineConfig::paper_table2(granularity_u);
    let sol = engine
        .baseline(&net, &config, target_fs)
        .map_err(|e| CliError::Solve(e.into()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "baseline DP (g = {granularity_u}u): delay {:.4} ns, total width {:.0} u, {} repeaters",
        ns_from_fs(sol.delay_fs),
        sol.total_width,
        sol.assignment.len()
    );
    for r in sol.assignment.repeaters() {
        let _ = writeln!(out, "  x = {:9.1} um   w = {:5.0} u", r.position, r.width);
    }
    Ok(out)
}

/// `rip generate`: emit `count` random paper-distribution nets in the
/// `.net` format, concatenated with `--- net <i> ---` separators (or
/// individually via the caller).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for a zero count.
pub fn cmd_generate(seed: u64, count: usize) -> Result<Vec<String>, CliError> {
    if count == 0 {
        return Err(CliError::Usage("count must be at least 1".into()));
    }
    let nets = NetGenerator::suite(RandomNetConfig::default(), seed, count)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(nets.iter().map(format_net).collect())
}

/// `rip generate --tree`: emit `count` random multi-sink tree nets in
/// the `.tree` format (see [`parse_tree_file`]).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for a zero count.
pub fn cmd_generate_trees(seed: u64, count: usize) -> Result<Vec<String>, CliError> {
    if count == 0 {
        return Err(CliError::Usage("count must be at least 1".into()));
    }
    let nets = TreeNetGenerator::suite(RandomTreeConfig::default(), seed, count)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(nets.iter().map(format_tree_file).collect())
}

/// `rip solve --tree`: run the hybrid tree pipeline on a `.tree`
/// description (driver width comes from the file). `blocked` nodes are
/// binding: the file's legality mask is threaded through every pipeline
/// stage, and `--target-mult` resolves against the *masked* minimum
/// delay.
///
/// # Errors
///
/// Returns [`CliError::Parse`] for bad input and [`CliError::Solve`] for
/// infeasible targets (including targets unreachable over the legal
/// nodes).
pub fn cmd_solve_tree(tree_text: &str, target: Target) -> Result<String, CliError> {
    let net = parse_tree_file(tree_text)?;
    let engine = Engine::paper(Technology::generic_180nm());
    let config = TreeRipConfig::paper();
    let tree = RcTree::from_tree_net(&net, engine.technology().device());
    let driver = net.driver_width();
    let allowed = net.allowed_mask();
    let target_fs = match target {
        Target::Ns(ns) => fs_from_ns(ns),
        Target::Multiplier(m) => {
            m * engine.tree_tau_min_masked(&tree, driver, &config, Some(&allowed))?
        }
    };
    let outcome = engine.solve_tree_masked(&tree, driver, target_fs, &config, Some(&allowed))?;
    let sol = &outcome.solution;
    let blocked = allowed.iter().filter(|ok| !**ok).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tree: {:.1} mm total wire, {} node(s), {} sink(s), {} blocked node(s)",
        net.total_length() / 1000.0,
        net.len(),
        net.sinks().len(),
        blocked
    );
    let _ = writeln!(
        out,
        "target: {:.4} ns   achieved: {:.4} ns",
        ns_from_fs(target_fs),
        ns_from_fs(sol.delay_fs)
    );
    let buffers: Vec<(usize, f64)> = sol
        .buffer_widths
        .iter()
        .enumerate()
        .filter_map(|(v, w)| w.map(|w| (v, w)))
        .collect();
    let _ = writeln!(
        out,
        "buffers: {}   total width: {:.0} u",
        buffers.len(),
        sol.total_width
    );
    for (v, w) in &buffers {
        let _ = writeln!(
            out,
            "  node {v:4}   {:9.1} um from root   w = {w:5.0} u",
            outcome.fine_tree.root_distance(*v)
        );
    }
    Ok(out)
}

/// `rip batch`: solve many nets through one [`Engine`] session and render
/// a per-net + aggregate power/delay table.
///
/// Takes `(label, net text)` pairs so the command stays I/O-free; the
/// binary supplies file names or generated-net labels. Nets that cannot
/// meet their target are reported in the table (status `infeasible`),
/// and the batch then fails with [`CliError::BatchFailed`] carrying the
/// full report — so scripts get a nonzero exit code while humans still
/// see every per-net row.
///
/// # Errors
///
/// Returns [`CliError::Parse`] (with the offending label in the message)
/// for bad input, [`CliError::Usage`] for an empty batch, and
/// [`CliError::BatchFailed`] when any net fails to solve.
pub fn cmd_batch(named_nets: &[(String, String)], target: Target) -> Result<String, CliError> {
    if named_nets.is_empty() {
        return Err(CliError::Usage("batch needs at least one net".into()));
    }
    let mut nets = Vec::with_capacity(named_nets.len());
    for (label, text) in named_nets {
        let net = parse_net(text).map_err(|e| ParseError {
            line: e.line,
            reason: format!("net {label:?}: {}", e.reason),
        })?;
        nets.push(net);
    }

    let engine = Engine::paper(Technology::generic_180nm());
    // Hand the target rule to the engine unresolved: `τ_min` (the most
    // expensive per-net precomputation) is then computed inside the
    // parallel workers instead of serially up front.
    let batch_target = match target {
        Target::Ns(ns) => BatchTarget::AbsoluteFs(fs_from_ns(ns)),
        Target::Multiplier(m) => BatchTarget::TauMinMultiple(m),
    };
    let outcomes = engine.solve_batch(&nets, &batch_target);
    // For the table only; every tau_min below is a warm cache hit.
    let targets: Vec<f64> = nets
        .iter()
        .map(|net| target.resolve_fs(net, &engine))
        .collect();

    let tech = engine.technology();
    let mut table = TextTable::new(vec![
        "Net",
        "mm",
        "Reps",
        "Width (u)",
        "Target (ns)",
        "Delay (ns)",
        "Power (mW)",
        "Status",
    ]);
    let mut total_width = 0.0;
    let mut total_power = 0.0;
    let mut total_reps = 0usize;
    let mut infeasible = 0usize;
    for (((label, _), net), (outcome, target_fs)) in named_nets
        .iter()
        .zip(&nets)
        .zip(outcomes.iter().zip(&targets))
    {
        match outcome {
            Ok(out) => {
                let sol = &out.solution;
                let power = assignment_power(net, tech.device(), tech.power(), &sol.assignment);
                total_width += sol.total_width;
                total_power += power.total();
                total_reps += sol.assignment.len();
                table.row(vec![
                    label.clone(),
                    format!("{:.1}", net.total_length() / 1000.0),
                    format!("{}", sol.assignment.len()),
                    format!("{:.0}", sol.total_width),
                    format!("{:.4}", ns_from_fs(*target_fs)),
                    format!("{:.4}", ns_from_fs(sol.delay_fs)),
                    format!("{:.4}", power.total() * 1e3),
                    "ok".into(),
                ]);
            }
            Err(RipError::Infeasible { achievable_fs, .. }) => {
                infeasible += 1;
                table.row(vec![
                    label.clone(),
                    format!("{:.1}", net.total_length() / 1000.0),
                    "-".into(),
                    "-".into(),
                    format!("{:.4}", ns_from_fs(*target_fs)),
                    format!(">{:.4}", ns_from_fs(*achievable_fs)),
                    "-".into(),
                    "infeasible".into(),
                ]);
            }
            Err(e) => return Err(CliError::Solve(e.clone())),
        }
    }
    let solved = nets.len() - infeasible;
    table.row(vec![
        "TOTAL".into(),
        format!(
            "{:.1}",
            nets.iter().map(|n| n.total_length()).sum::<f64>() / 1000.0
        ),
        format!("{total_reps}"),
        format!("{total_width:.0}"),
        "-".into(),
        "-".into(),
        format!("{:.4}", total_power * 1e3),
        format!("{solved}/{} ok", nets.len()),
    ]);

    let stats = engine.stats();
    let mut out = table.to_string();
    let _ = writeln!(
        out,
        "\n{} net(s), {} infeasible; engine cache: {} hit(s), {} miss(es)",
        nets.len(),
        infeasible,
        stats.hits(),
        stats.misses()
    );
    if infeasible > 0 {
        return Err(CliError::BatchFailed {
            report: out,
            failed: infeasible,
        });
    }
    Ok(out)
}

/// `rip batch --tree`: solve a batch of `.tree` descriptions through
/// one [`Engine`] session ([`Engine::solve_tree_batch_masked`] — each
/// file's `blocked` nodes are binding) and render a per-tree +
/// aggregate table.
///
/// Takes `(label, tree text)` pairs like [`cmd_batch`]; the binary
/// supplies `.tree` file names ([`crate::parse_tree_file`]) or
/// generated-tree labels. Trees that cannot meet their target are
/// reported in the table (status `infeasible`) and the batch then fails
/// with [`CliError::BatchFailed`] carrying the full report.
///
/// # Errors
///
/// Returns [`CliError::Parse`] (with the offending label in the
/// message) for bad input, [`CliError::Usage`] for an empty batch,
/// [`CliError::BatchFailed`] when any tree fails to solve, and
/// [`CliError::Solve`] for solver failures other than infeasible
/// targets.
pub fn cmd_batch_tree(
    named_trees: &[(String, String)],
    target: Target,
) -> Result<String, CliError> {
    if named_trees.is_empty() {
        return Err(CliError::Usage("batch needs at least one tree".into()));
    }
    let mut nets = Vec::with_capacity(named_trees.len());
    for (label, text) in named_trees {
        let net = parse_tree_file(text).map_err(|e| ParseError {
            line: e.line,
            reason: format!("tree {label:?}: {}", e.reason),
        })?;
        nets.push(net);
    }
    let engine = Engine::paper(Technology::generic_180nm());
    let config = TreeRipConfig::paper();
    // Each tree carries its own legality mask — `blocked` nodes from
    // the `.tree` files are binding for the whole batch.
    let trees: Vec<(RcTree, f64, Option<Vec<bool>>)> = nets
        .iter()
        .map(|net| {
            (
                RcTree::from_tree_net(net, engine.technology().device()),
                net.driver_width(),
                Some(net.allowed_mask()),
            )
        })
        .collect();
    // Hand the target rule to the engine unresolved, as in `cmd_batch`:
    // per-tree `τ_min` is computed inside the parallel workers.
    let batch_target = match target {
        Target::Ns(ns) => BatchTarget::AbsoluteFs(fs_from_ns(ns)),
        Target::Multiplier(m) => BatchTarget::TauMinMultiple(m),
    };
    let outcomes = engine.solve_tree_batch_masked(&trees, &batch_target, &config);
    // For the table only; every tree_tau_min below is a warm cache hit.
    let targets: Vec<f64> = trees
        .iter()
        .map(|(tree, driver, allowed)| match target {
            Target::Ns(ns) => Ok(fs_from_ns(ns)),
            Target::Multiplier(m) => engine
                .tree_tau_min_masked(tree, *driver, &config, allowed.as_deref())
                .map(|tmin| m * tmin),
        })
        .collect::<Result<_, RipError>>()?;

    let mut table = TextTable::new(vec![
        "Tree",
        "Nodes",
        "Sinks",
        "Bufs",
        "Width (u)",
        "Target (ns)",
        "Delay (ns)",
        "Status",
    ]);
    let mut total_width = 0.0;
    let mut total_bufs = 0usize;
    let mut infeasible = 0usize;
    for (((label, _), (net, (tree, _, _))), (outcome, target_fs)) in named_trees
        .iter()
        .zip(nets.iter().zip(&trees))
        .zip(outcomes.iter().zip(&targets))
    {
        let label = label.clone();
        match outcome {
            Ok(out) => {
                let sol = &out.solution;
                let bufs = sol.buffer_widths.iter().flatten().count();
                total_width += sol.total_width;
                total_bufs += bufs;
                table.row(vec![
                    label,
                    format!("{}", tree.len()),
                    format!("{}", net.sinks().len()),
                    format!("{bufs}"),
                    format!("{:.0}", sol.total_width),
                    format!("{:.4}", ns_from_fs(*target_fs)),
                    format!("{:.4}", ns_from_fs(sol.delay_fs)),
                    "ok".into(),
                ]);
            }
            Err(RipError::Infeasible { achievable_fs, .. }) => {
                infeasible += 1;
                table.row(vec![
                    label,
                    format!("{}", tree.len()),
                    format!("{}", net.sinks().len()),
                    "-".into(),
                    "-".into(),
                    format!("{:.4}", ns_from_fs(*target_fs)),
                    format!(">{:.4}", ns_from_fs(*achievable_fs)),
                    "infeasible".into(),
                ]);
            }
            Err(e) => return Err(CliError::Solve(e.clone())),
        }
    }
    let solved = trees.len() - infeasible;
    table.row(vec![
        "TOTAL".into(),
        format!("{}", trees.iter().map(|(t, _, _)| t.len()).sum::<usize>()),
        format!("{}", nets.iter().map(|n| n.sinks().len()).sum::<usize>()),
        format!("{total_bufs}"),
        format!("{total_width:.0}"),
        "-".into(),
        "-".into(),
        format!("{solved}/{} ok", trees.len()),
    ]);

    let stats = engine.stats();
    let mut out = table.to_string();
    let _ = writeln!(
        out,
        "\n{} tree(s), {} infeasible; engine cache: {} hit(s), {} miss(es)",
        trees.len(),
        infeasible,
        stats.hits(),
        stats.misses()
    );
    if infeasible > 0 {
        return Err(CliError::BatchFailed {
            report: out,
            failed: infeasible,
        });
    }
    Ok(out)
}

/// Options for `rip bench`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOptions {
    /// Reduced smoke-run workloads (CI uses this).
    pub quick: bool,
    /// Check the machine-independent regression gates (in-process
    /// speedup ratios, byte identity, serve hit rate) and fail on
    /// regression.
    pub check_baseline: bool,
    /// Allowed slack on the batch-vs-sequential ratio gate (default
    /// 0.25: on a single-core runner the batch engine's only edge is
    /// cache reuse, so the ratio sits near 1.0 by construction).
    pub tolerance: f64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            check_baseline: false,
            tolerance: 0.25,
        }
    }
}

/// `rip bench`: run the statistical benchmark suite (DP frontier, batch
/// engine, tree workload, solver service), write
/// `BENCH_dp_frontier.json` / `BENCH_batch.json` / `BENCH_tree.json` /
/// `BENCH_serve.json` at the workspace root, and optionally run the
/// regression gates.
///
/// This is the one command behind every performance claim in the
/// repository: the committed JSONs are regenerated by it, and CI's
/// bench-regression job runs it with `--check-baseline` at full scale.
/// Every gate is machine-independent — in-process speedup ratios, byte
/// identity, and the service's warm-cache hit rate; the absolute
/// throughput numbers (nets/s, trees/s, requests/s) are recorded in the
/// JSON for trend-watching only, because they track the CI runner class
/// more than the code (the old ±25 % absolute legs flaked on runner
/// changes — see the ROADMAP's runner-variance note).
///
/// # Errors
///
/// * [`CliError::BenchRegression`] when any solution is not
///   byte-identical to its reference (including the sharded serve leg),
///   or when `--check-baseline` finds a DP engine slower than its
///   in-process reference, the batch engine behind the sequential pass
///   beyond the tolerance, either serve topology's warm hit rate below
///   50 %, or the sharded serve leg behind the direct leg beyond the
///   tolerance;
/// * [`CliError::Io`] when the JSON artifacts cannot be written.
pub fn cmd_bench(opts: &BenchOptions) -> Result<String, CliError> {
    let root = rip_bench::workspace_root();
    // The canonical files are the committed full-scale baselines; quick
    // runs write their own `.quick.json` sibling so a smoke run can
    // never silently replace a baseline.
    let name = |base: &str| {
        if opts.quick {
            root.join(format!("{base}.quick.json"))
        } else {
            root.join(format!("{base}.json"))
        }
    };
    let frontier_out = name("BENCH_dp_frontier");
    let batch_out = name("BENCH_batch");
    let tree_out = name("BENCH_tree");
    let serve_out = name("BENCH_serve");

    let frontier =
        rip_bench::run_frontier_bench(rip_bench::FrontierBenchConfig::preset(opts.quick));
    let batch = rip_bench::run_batch_bench(rip_bench::BatchBenchConfig::preset(opts.quick));
    let tree = rip_bench::run_tree_bench(rip_bench::TreeBenchConfig::preset(opts.quick));
    let serve = rip_bench::run_serve_bench(rip_bench::ServeBenchConfig::preset(opts.quick));

    std::fs::write(&frontier_out, frontier.to_json())?;
    std::fs::write(&batch_out, batch.to_json())?;
    std::fs::write(&tree_out, tree.to_json())?;
    std::fs::write(&serve_out, serve.to_json())?;

    let mut out = String::new();
    let _ = writeln!(out, "{}", frontier.summary_text());
    let _ = writeln!(out, "{}", batch.summary_text());
    let _ = writeln!(out, "{}", tree.summary_text());
    let _ = writeln!(out, "{}", serve.summary_text());
    for path in [&frontier_out, &batch_out, &tree_out, &serve_out] {
        let _ = writeln!(out, "wrote {}", path.display());
    }

    if !frontier.byte_identical || !batch.byte_identical || !tree.byte_identical {
        return Err(CliError::BenchRegression(
            "benchmark equivalence check failed: solutions are not byte-identical".into(),
        ));
    }
    if !serve.byte_identical {
        return Err(CliError::BenchRegression(
            "serve equivalence check failed: responses are not byte-identical to the \
             in-process engine"
                .into(),
        ));
    }
    if serve.request_errors > 0 {
        // Kept distinct from the identity check: a failed request (ok:
        // false) is a service bug, not a determinism break, and the
        // investigator should start at the failing request, not the
        // byte-identity machinery.
        return Err(CliError::BenchRegression(format!(
            "serve requests failed: {} response(s) were not ok",
            serve.request_errors
        )));
    }

    if opts.check_baseline {
        let mut failures = Vec::new();
        // Machine-independent ratio gates. The DP engines must beat
        // their in-process reference implementations outright — the SoA
        // frontiers hold a structural margin there, so these are hard
        // 1.0 floors on any machine.
        if frontier.speedup_vs_reference < 1.0 {
            failures.push(format!(
                "frontier speedup_vs_reference {:.3} < 1.0",
                frontier.speedup_vs_reference
            ));
        }
        if tree.speedup_vs_reference < 1.0 {
            failures.push(format!(
                "tree speedup_vs_reference {:.3} < 1.0",
                tree.speedup_vs_reference
            ));
        }
        // The masked leg runs the same corpus with every tree's
        // forbidden-node mask in force; the SoA frontier's margin must
        // hold there too (masking prunes options on both sides
        // equally), so it gets the same hard 1.0 floor.
        if tree.masked_speedup_vs_reference < 1.0 {
            failures.push(format!(
                "tree masked_speedup_vs_reference {:.3} < 1.0",
                tree.masked_speedup_vs_reference
            ));
        }
        // The batch-vs-sequential ratio is also machine-independent, but
        // on a single-core runner the batch engine's only edge is cache
        // reuse (no parallelism), so the ratio sits near 1.0 by
        // construction; it gets the tolerance as a floor so the gate
        // catches real regressions (batch falling behind sequential)
        // without flaking on scheduler noise.
        let batch_ratio_floor = 1.0 - opts.tolerance;
        if batch.speedup() < batch_ratio_floor {
            failures.push(format!(
                "batch speedup {:.3} < {batch_ratio_floor:.3} (sequential outran the batch engine)",
                batch.speedup()
            ));
        }
        // The serve workload replays the same request script, so the
        // shared engine must be hitting its caches heavily; a cold hit
        // rate here means the service lost its amortization (e.g. a
        // cache keyed too finely, or eviction gone wild).
        if serve.hit_rate < 0.5 {
            failures.push(format!(
                "serve hit_rate {:.3} < 0.5 (the shared engine stopped amortizing)",
                serve.hit_rate
            ));
        }
        if serve.sharded_hit_rate < 0.5 {
            failures.push(format!(
                "serve sharded_hit_rate {:.3} < 0.5 (cache-affine routing stopped \
                 keeping the shard caches warm)",
                serve.sharded_hit_rate
            ));
        }
        // Sharded-vs-direct throughput at the top concurrency level is
        // an in-process ratio: both legs replay the same prepared load
        // on the same host back to back. Sharding must at least hold
        // the line against the shared-engine lock funnel; it gets the
        // same tolerance floor as batch because on a single-core runner
        // both topologies are compute-bound on one CPU and the ratio
        // sits near 1.0 by construction.
        let sharded_floor = 1.0 - opts.tolerance;
        if serve.sharded_speedup() < sharded_floor {
            failures.push(format!(
                "serve sharded_speedup {:.3} < {sharded_floor:.3} (sharding fell behind \
                 the single shared engine)",
                serve.sharded_speedup()
            ));
        }
        let _ = writeln!(
            out,
            "absolute throughput recorded for trends only (not gated): \
             {:.2} nets/s frontier, {:.2} nets/s batch, {:.2} trees/s \
             ({:.2} masked pipeline), {:.2} req/s serve ({:.2} sharded)",
            frontier.frontier_nets_per_s(),
            batch.batch_nets_per_s(),
            tree.frontier_trees_per_s(),
            tree.masked_batch_trees_per_s(),
            serve
                .levels
                .last()
                .map(|l| l.requests_per_s())
                .unwrap_or(0.0),
            serve
                .sharded_levels
                .last()
                .map(|l| l.requests_per_s())
                .unwrap_or(0.0),
        );
        if !failures.is_empty() {
            return Err(CliError::BenchRegression(failures.join("; ")));
        }
        let _ = writeln!(out, "bench-regression gate: ok");
    }
    Ok(out)
}

/// Options for `rip profile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileOptions {
    /// Smaller corpus for CI smoke runs (`--quick`).
    pub quick: bool,
    /// Corpus size override (`--trees`); `None` uses the preset (3
    /// quick / 8 full).
    pub trees: Option<usize>,
    /// Corpus seed override (`--seed`); `None` uses 2005.
    pub seed: Option<u64>,
}

/// One pipeline stage's share of a profile run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStage {
    /// The metric name in the engine registry
    /// (e.g. `engine_tree_coarse_dp_ns`).
    pub metric: String,
    /// Human-readable stage label.
    pub label: String,
    /// Times the stage ran across the corpus.
    pub calls: u64,
    /// Total time in the stage, ns.
    pub total_ns: u64,
}

/// The measured result behind `rip profile`: per-stage totals of the
/// hybrid tree pipeline over a seeded corpus, against the wall clock of
/// the timed loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Trees solved in the timed loop.
    pub trees: usize,
    /// The corpus seed.
    pub seed: u64,
    /// Wall clock of the timed loop, ns.
    pub wall_ns: u64,
    /// Per-stage totals, pipeline order.
    pub stages: Vec<ProfileStage>,
    /// Engine cache hits during the timed loop (latency nested inside
    /// the stage timers, so not part of [`Self::coverage`]).
    pub cache_hits: u64,
    /// Engine cache misses during the timed loop.
    pub cache_misses: u64,
}

impl ProfileReport {
    /// The fraction of the wall clock accounted for by the stage
    /// timers (the tentpole's ≥ 0.9 instrumentation-coverage claim).
    pub fn coverage(&self) -> f64 {
        let covered: u64 = self.stages.iter().map(|s| s.total_ns).sum();
        covered as f64 / self.wall_ns.max(1) as f64
    }

    /// The human-readable breakdown table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Stage", "Calls", "Total (ms)", "% of wall"]);
        for stage in &self.stages {
            table.row(vec![
                stage.label.clone(),
                format!("{}", stage.calls),
                format!("{:.2}", stage.total_ns as f64 / 1e6),
                format!(
                    "{:.1}",
                    stage.total_ns as f64 / self.wall_ns.max(1) as f64 * 100.0
                ),
            ]);
        }
        let mut out = format!(
            "profile: {} seeded compact tree(s) (seed {}), wall {:.2} ms\n",
            self.trees,
            self.seed,
            self.wall_ns as f64 / 1e6
        );
        out.push_str(&table.to_string());
        let _ = writeln!(
            out,
            "stage coverage: {:.1}% of wall (cache lookups — {} hit(s), {} miss(es) — \
             nest inside the stages and are not double-counted)",
            self.coverage() * 100.0,
            self.cache_hits,
            self.cache_misses,
        );
        out
    }
}

/// The tree-pipeline stages `rip profile` reports, with the registry
/// metric carrying each one (see the README's observability section).
const PROFILE_STAGES: [(&str, &str); 5] = [
    ("engine_tree_subdivide_coarse_ns", "coarse subdivision grid"),
    ("engine_tree_coarse_dp_ns", "coarse tree DP"),
    ("engine_tree_trim_ns", "window trim"),
    ("engine_tree_window_gen_ns", "window-set generation"),
    ("engine_tree_fine_dp_ns", "fine DP re-solves"),
];

/// Runs the profile workload: a seeded compact masked-tree corpus
/// solved in-process through one [`Engine`] session, with the engine's
/// stage histograms reset right before the timed loop so the breakdown
/// covers exactly that loop.
///
/// Targets are resolved (and `τ_min` warmed) *before* the reset — the
/// profile measures the solve pipeline, not target resolution.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for a zero-tree corpus and
/// [`CliError::Solve`] if a generated tree fails to solve (the 1.4×
/// masked-`τ_min` targets are feasible by construction, so this
/// indicates an engine bug).
pub fn run_profile(opts: &ProfileOptions) -> Result<ProfileReport, CliError> {
    let count = opts.trees.unwrap_or(if opts.quick { 3 } else { 8 });
    let seed = opts.seed.unwrap_or(2005);
    if count == 0 {
        return Err(CliError::Usage("profile needs at least one tree".into()));
    }
    let nets = TreeNetGenerator::suite(RandomTreeConfig::compact(), seed, count)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let engine = Engine::paper(Technology::generic_180nm());
    let config = TreeRipConfig::paper();
    let mut prepared = Vec::with_capacity(nets.len());
    for net in &nets {
        let tree = RcTree::from_tree_net(net, engine.technology().device());
        let driver = net.driver_width();
        let allowed = net.allowed_mask();
        let target_fs = 1.4 * engine.tree_tau_min_masked(&tree, driver, &config, Some(&allowed))?;
        prepared.push((tree, driver, allowed, target_fs));
    }

    let registry = std::sync::Arc::clone(engine.metrics_registry());
    registry.reset();
    let t0 = Instant::now();
    for (tree, driver, allowed, target_fs) in &prepared {
        engine.solve_tree_masked(tree, *driver, *target_fs, &config, Some(allowed))?;
    }
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let snapshot = registry.snapshot();
    let stages = PROFILE_STAGES
        .iter()
        .map(|(metric, label)| {
            let h = snapshot.histogram(metric);
            ProfileStage {
                metric: (*metric).to_string(),
                label: (*label).to_string(),
                calls: h.map(|h| h.count).unwrap_or(0),
                total_ns: h.map(|h| h.sum).unwrap_or(0),
            }
        })
        .collect();
    Ok(ProfileReport {
        trees: count,
        seed,
        wall_ns: wall_ns.max(1),
        stages,
        cache_hits: snapshot
            .histogram("engine_cache_hit_ns")
            .map(|h| h.count)
            .unwrap_or(0),
        cache_misses: snapshot
            .histogram("engine_cache_miss_ns")
            .map(|h| h.count)
            .unwrap_or(0),
    })
}

/// `rip profile`: the per-stage wall-clock breakdown of the hybrid tree
/// pipeline over a seeded in-process corpus.
///
/// # Errors
///
/// See [`run_profile`].
pub fn cmd_profile(opts: &ProfileOptions) -> Result<String, CliError> {
    Ok(run_profile(opts)?.render())
}

/// The top-level usage text.
pub fn usage() -> &'static str {
    "rip - hybrid repeater insertion for low power (DATE 2005 reproduction)

USAGE:
    rip solve    <net-file> (--target-ns <x> | --target-mult <m>)
    rip solve    --tree <tree-file> (--target-ns <x> | --target-mult <m>)
    rip baseline <net-file> (--target-ns <x> | --target-mult <m>) --granularity <g_u>
    rip tmin     <net-file>
    rip batch    (--dir <dir> | --seed <n> --count <k>) (--target-ns <x> | --target-mult <m>)
    rip batch    --tree (--dir <dir> | [--seed <n>] --count <k>) (--target-ns <x> | --target-mult <m>)
    rip generate [--tree] --seed <n> --count <k> [--out-dir <dir>]
    rip bench    [--quick] [--check-baseline] [--tolerance <frac>]
    rip profile  [--quick] [--trees <n>] [--seed <n>]
    rip serve    [--port <p>] [--bind <host>] [--workers <n>] [--shards <n>]
                 [--max-conns <n>] [--queue-cap <n>] [--timeout-secs <s>]
                 [--cache-cap <n>] [--value-cache-cap <n>] [--drain-secs <s>]
                 [--log-slow-ms <ms>]
                 [--fault-panic-every <n>] [--fault-delay-every <n>]
                 [--fault-delay-ms <ms>] [--fault-drop-every <n>] [--fault-seed <n>]
    rip client   <addr> [--smoke | --metrics | --shutdown | --file <net-or-tree-file>
                 (--target-ns <x> | --target-mult <m>)]
                 [--retries <n>] [--backoff-ms <ms>]
                                                 # reads JSON lines from stdin otherwise
    rip help

`rip serve --shards N` runs N private engine workers routed by cache
key (batch/compare fan out and reassemble in input order); responses
stay byte-identical to a single shared engine. `--max-conns` rejects
over-limit connections with a typed `busy` error, and full shard queues
answer `backpressure` instead of stalling. Workers are supervised: a
panic becomes a typed `internal` error and the worker respawns with a
fresh engine. A `drain` request (default deadline `--drain-secs`)
finishes in-flight work, answers new requests with `shutting_down`, and
stops cleanly. The `--fault-*` flags inject deterministic panics,
delays, and connection drops for chaos testing (see the README's
resilience section). `rip client --retries N` retries transient
failures (busy/backpressure/timeout/internal, resets) over fresh
connections with capped exponential backoff starting at --backoff-ms.

`rip batch` exits nonzero when any net in the batch fails to solve (the
per-net table, including the failure rows, is still printed).

`rip profile` solves a seeded compact masked-tree corpus in-process and
prints the hybrid tree pipeline's per-stage wall-clock breakdown from
the engine's stage histograms. `rip serve --log-slow-ms N` logs any
request slower than N ms to stderr with its queue-wait and solve spans;
`rip client --metrics` fetches the server's merged metrics registry as
Prometheus-style text (see the README's observability section).

NET FILE FORMAT (text, '#' comments):
    driver 140                 # driver width, u (optional)
    receiver 60                # receiver width, u (optional)
    segment 3000 0.08 0.20     # length_um r_per_um c_per_um
    zone 5000 8000             # forbidden zone, um from source

TREE FILE FORMAT (text, '#' comments; node lines append nodes 1, 2, ...):
    driver 140                 # driver width, u (optional)
    node 0 0.08 0.20 1500      # parent r_per_um c_per_um length_um
    node 1 0.06 0.18 2000 sink 60
    node 1 0.08 0.20 1200 blocked   # binding: no buffer here, ever

'blocked' nodes are binding for tree solves the way forbidden zones are
for chains: no stage places a buffer on them (or on subdivision points
of edges with a blocked endpoint), and --target-mult resolves against
the masked minimum delay.
"
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET: &str = "\
driver 140
receiver 60
segment 6000 0.08 0.2
segment 6000 0.06 0.18
zone 4000 7000
";

    #[test]
    fn solve_reports_solution_and_meets_target() {
        let report = cmd_solve(NET, Target::Multiplier(1.4)).unwrap();
        assert!(report.contains("repeaters:"));
        assert!(report.contains("total width"));
        assert!(report.contains("mW"));
    }

    #[test]
    fn solve_with_absolute_target() {
        // Generous absolute target: equivalent to a loose multiplier.
        let report = cmd_solve(NET, Target::Ns(2.0)).unwrap();
        assert!(report.contains("target: 2.0000 ns"));
    }

    #[test]
    fn solve_rejects_impossible_targets() {
        let err = cmd_solve(NET, Target::Ns(1e-6)).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }

    #[test]
    fn tmin_reports_nanoseconds() {
        let report = cmd_tmin(NET).unwrap();
        assert!(report.starts_with("tau_min = "));
        assert!(report.contains("ns"));
    }

    #[test]
    fn baseline_runs_and_violations_surface() {
        let ok = cmd_baseline(NET, Target::Multiplier(1.5), 40.0).unwrap();
        assert!(ok.contains("baseline DP"));
        // A 10u-granularity *size-10* library would violate; here the
        // table2-style full-range library at any granularity is feasible,
        // so provoke failure with an impossible absolute target instead.
        let err = cmd_baseline(NET, Target::Ns(1e-6), 40.0).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }

    #[test]
    fn generate_is_deterministic() {
        let a = cmd_generate(7, 3).unwrap();
        let b = cmd_generate(7, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Emitted nets parse back.
        for text in &a {
            crate::netfile::parse_net(text).unwrap();
        }
    }

    #[test]
    fn batch_renders_per_net_rows_and_aggregate() {
        let nets: Vec<(String, String)> = cmd_generate(2005, 3)
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, text)| (format!("net_{i:02}"), text))
            .collect();
        let report = cmd_batch(&nets, Target::Multiplier(1.4)).unwrap();
        assert!(report.contains("net_00"));
        assert!(report.contains("net_02"));
        assert!(report.contains("TOTAL"));
        assert!(report.contains("3/3 ok"));
        assert!(report.contains("engine cache"));
    }

    #[test]
    fn batch_with_infeasible_nets_fails_but_carries_the_report() {
        let nets: Vec<(String, String)> = cmd_generate(7, 2)
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, text)| (format!("net_{i:02}"), text))
            .collect();
        // An impossibly tight absolute target: every net is infeasible.
        // The batch exits with an error (nonzero exit code from the
        // binary) whose report still renders every per-net row.
        let err = cmd_batch(&nets, Target::Ns(1e-6)).unwrap_err();
        let CliError::BatchFailed { report, failed } = err else {
            panic!("expected BatchFailed, got {err:?}");
        };
        assert_eq!(failed, 2);
        assert!(report.contains("infeasible"));
        assert!(report.contains("0/2 ok"));
    }

    fn generated_trees(seed: u64, count: usize) -> Vec<(String, String)> {
        cmd_generate_trees(seed, count)
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, text)| (format!("tree_{seed}_{i:02}"), text))
            .collect()
    }

    #[test]
    fn tree_batch_renders_per_tree_rows_and_aggregate() {
        let report = cmd_batch_tree(&generated_trees(7, 2), Target::Multiplier(1.4)).unwrap();
        assert!(report.contains("tree_7_00"));
        assert!(report.contains("tree_7_01"));
        assert!(report.contains("TOTAL"));
        assert!(report.contains("2/2 ok"));
        assert!(report.contains("engine cache"));
    }

    #[test]
    fn tree_batch_with_infeasible_trees_fails_but_carries_the_report() {
        let err = cmd_batch_tree(&generated_trees(7, 2), Target::Ns(1e-6)).unwrap_err();
        let CliError::BatchFailed { report, failed } = err else {
            panic!("expected BatchFailed, got {err:?}");
        };
        assert_eq!(failed, 2);
        assert!(report.contains("infeasible"));
        assert!(report.contains("0/2 ok"));
    }

    #[test]
    fn tree_batch_rejects_empty_and_bad_input() {
        assert!(matches!(
            cmd_batch_tree(&[], Target::Ns(1.0)),
            Err(CliError::Usage(_))
        ));
        let bad = vec![("broken".to_string(), "node oops\n".to_string())];
        let err = cmd_batch_tree(&bad, Target::Ns(1.0)).unwrap_err();
        match &err {
            CliError::Parse(e) => assert_eq!(e.line, 1),
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn solve_tree_reports_buffers_and_meets_target() {
        let tree_text = cmd_generate_trees(5, 1).unwrap().remove(0);
        let report = cmd_solve_tree(&tree_text, Target::Multiplier(1.4)).unwrap();
        assert!(report.contains("tree:"));
        assert!(report.contains("buffers:"));
        assert!(report.contains("total width"));
        let err = cmd_solve_tree(&tree_text, Target::Ns(1e-6)).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
    }

    #[test]
    fn solve_tree_blocked_nodes_are_binding() {
        // Every node blocked: a loose target must go bufferless, and a
        // tight one must fail as infeasible instead of placing illegal
        // buffers.
        let all_blocked = "\
driver 120
node 0 0.08 0.20 1500 blocked
node 1 0.06 0.18 2000 blocked
node 1 0.08 0.20 1200 sink 60 blocked
node 2 0.08 0.20 1400 sink 50 blocked
";
        let report = cmd_solve_tree(all_blocked, Target::Multiplier(1.5)).unwrap();
        assert!(report.contains("4 blocked node(s)"));
        assert!(
            report.contains("buffers: 0"),
            "illegal buffers placed:\n{report}"
        );
        let err = cmd_solve_tree(all_blocked, Target::Ns(1e-6)).unwrap_err();
        assert!(matches!(err, CliError::Solve(_)));
        // The same topology unblocked buffers freely under a tight-ish
        // relative target, so the mask is what forced bufferless above.
        let open = all_blocked.replace(" blocked", "");
        let report = cmd_solve_tree(&open, Target::Multiplier(1.25)).unwrap();
        assert!(report.contains("0 blocked node(s)"));
        assert!(!report.contains("buffers: 0"), "{report}");
    }

    #[test]
    fn generate_trees_is_deterministic_and_parses_back() {
        let a = cmd_generate_trees(7, 3).unwrap();
        let b = cmd_generate_trees(7, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for text in &a {
            crate::treefile::parse_tree_file(text).unwrap();
        }
        assert!(matches!(cmd_generate_trees(7, 0), Err(CliError::Usage(_))));
    }

    #[test]
    fn batch_rejects_empty_and_bad_input() {
        assert!(matches!(
            cmd_batch(&[], Target::Ns(1.0)),
            Err(CliError::Usage(_))
        ));
        let bad = vec![("broken".to_string(), "segment oops\n".to_string())];
        let err = cmd_batch(&bad, Target::Ns(1.0)).unwrap_err();
        // Parse failures keep their structured form (line number intact)
        // with the offending net's label prefixed to the reason.
        match &err {
            CliError::Parse(e) => assert_eq!(e.line, 1),
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn profile_stage_times_cover_at_least_ninety_percent_of_wall() {
        let report = run_profile(&ProfileOptions {
            quick: true,
            trees: Some(2),
            ..ProfileOptions::default()
        })
        .unwrap();
        assert_eq!(report.trees, 2);
        for stage in &report.stages {
            assert!(stage.calls > 0, "stage {} never fired", stage.metric);
        }
        assert!(
            report.coverage() >= 0.9,
            "stage timers must explain >= 90% of profile wall time, got {:.1}%",
            report.coverage() * 100.0
        );
        let table = report.render();
        assert!(table.contains("fine DP"), "{table}");
        assert!(table.contains("% of wall"), "{table}");
    }

    #[test]
    fn bad_inputs_are_usage_errors() {
        assert!(matches!(cmd_generate(1, 0), Err(CliError::Usage(_))));
        assert!(matches!(
            cmd_baseline(NET, Target::Ns(1.0), -4.0),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_solve("segment oops\n", Target::Ns(1.0)),
            Err(CliError::Parse(_))
        ));
    }
}
