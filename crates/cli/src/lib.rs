//! # rip-cli — command-line interface for the RIP reproduction
//!
//! Ships the `rip` binary:
//!
//! ```text
//! rip solve    <net-file> --target-ns 2.5        # hybrid RIP pipeline
//! rip solve    --tree <tree-file> --target-mult 1.4 # multi-sink tree pipeline
//! rip baseline <net-file> --target-mult 1.5 --granularity 20
//! rip tmin     <net-file>                        # minimum achievable delay
//! rip batch    --dir nets --target-mult 1.4      # many nets, one Engine session
//! rip batch    --tree --dir trees --target-mult 1.4 # multi-sink tree batch
//! rip generate --seed 7 --count 5 --out-dir nets # paper-distribution nets
//! rip bench    --quick --check-baseline          # statistical benches + CI gate
//! rip profile  --quick                           # per-stage pipeline breakdown
//! rip serve    --port 4817 --workers 4           # resident solver service
//! rip client   127.0.0.1:4817 --smoke            # scripted protocol check
//! rip client   127.0.0.1:4817 --metrics          # Prometheus-style metrics dump
//! ```
//!
//! Net and tree descriptions use minimal line-oriented text formats (see
//! [`parse_net`] and [`parse_tree_file`]). All solving uses the
//! synthetic 0.18 µm technology preset of the reproduction
//! (DESIGN.md §2). `rip serve` keeps one shared [`rip_core::Engine`]
//! session resident behind a newline-delimited JSON protocol
//! (`rip_serve`), so candidate grids, `τ_min` and synthesized libraries
//! amortize across requests and connections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod commands;
mod netfile;
mod serve_cmd;
mod treefile;

pub use commands::{
    cmd_baseline, cmd_batch, cmd_batch_tree, cmd_bench, cmd_generate, cmd_generate_trees,
    cmd_profile, cmd_solve, cmd_solve_tree, cmd_tmin, run_profile, usage, BenchOptions, CliError,
    ProfileOptions, ProfileReport, ProfileStage, Target,
};
pub use netfile::{format_net, parse_net, ParseError};
pub use serve_cmd::{cmd_client, cmd_serve, ClientOptions, ServeOptions};
pub use treefile::{format_tree_file, parse_tree_file};
