//! # rip-cli — command-line interface for the RIP reproduction
//!
//! Ships the `rip` binary:
//!
//! ```text
//! rip solve    <net-file> --target-ns 2.5        # hybrid RIP pipeline
//! rip baseline <net-file> --target-mult 1.5 --granularity 20
//! rip tmin     <net-file>                        # minimum achievable delay
//! rip batch    --dir nets --target-mult 1.4      # many nets, one Engine session
//! rip batch    --tree --count 10 --target-mult 1.4 # multi-sink tree batch
//! rip generate --seed 7 --count 5 --out-dir nets # paper-distribution nets
//! rip bench    --quick --check-baseline          # statistical benches + CI gate
//! ```
//!
//! Net descriptions use a minimal line-oriented text format (see
//! [`parse_net`]). All solving uses the synthetic 0.18 µm technology
//! preset of the reproduction (DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod commands;
mod netfile;

pub use commands::{
    cmd_baseline, cmd_batch, cmd_batch_tree, cmd_bench, cmd_generate, cmd_solve, cmd_tmin, usage,
    BenchOptions, CliError, Target,
};
pub use netfile::{format_net, parse_net, ParseError};
