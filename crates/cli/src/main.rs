//! The `rip` binary: thin argument parsing over `rip_cli`'s command
//! implementations.

use rip_cli::{
    cmd_baseline, cmd_batch, cmd_batch_tree, cmd_bench, cmd_client, cmd_generate,
    cmd_generate_trees, cmd_profile, cmd_serve, cmd_solve, cmd_solve_tree, cmd_tmin, usage,
    BenchOptions, CliError, ClientOptions, ProfileOptions, ServeOptions, Target,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        // A failed batch still prints its full per-net report; only the
        // exit code and a one-line summary signal the failure (no usage
        // dump — the command line was fine).
        Err(CliError::BatchFailed { report, failed }) => {
            print!("{report}");
            eprintln!("rip: batch failed: {failed} net(s) did not solve");
            ExitCode::FAILURE
        }
        // A protocol failure means the command line was fine and the
        // service misbehaved — the usage dump would only bury the
        // failing request/response.
        Err(e @ CliError::Protocol(_)) => {
            eprintln!("rip: {e}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("rip: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("solve") => {
            let rest: Vec<&str> = it.collect();
            let (tree_mode, rest) = match rest.split_first() {
                Some((&"--tree", tail)) => (true, tail.to_vec()),
                _ => (false, rest),
            };
            let (file, flags) = split_flags(rest.into_iter())?;
            let target = parse_target(&flags)?;
            let text = std::fs::read_to_string(&file)?;
            if tree_mode {
                cmd_solve_tree(&text, target)
            } else {
                cmd_solve(&text, target)
            }
        }
        Some("baseline") => {
            let (file, flags) = split_flags(it)?;
            let target = parse_target(&flags)?;
            let g = flag_value(&flags, "--granularity")?
                .ok_or_else(|| CliError::Usage("--granularity <g_u> required".into()))?
                .parse::<f64>()
                .map_err(|_| CliError::Usage("granularity must be a number".into()))?;
            let text = std::fs::read_to_string(&file)?;
            cmd_baseline(&text, target, g)
        }
        Some("tmin") => {
            let (file, _) = split_flags(it)?;
            let text = std::fs::read_to_string(&file)?;
            cmd_tmin(&text)
        }
        Some("batch") => {
            let flags: Vec<String> = it.map(String::from).collect();
            let target = parse_target(&flags)?;
            if flags.iter().any(|f| f == "--tree") {
                let named_trees = match flag_value(&flags, "--dir")? {
                    Some(dir) => read_labeled_dir(&dir, "tree")?,
                    None => {
                        let seed = flag_value(&flags, "--seed")?
                            .unwrap_or_else(|| "2005".into())
                            .parse::<u64>()
                            .map_err(|_| CliError::Usage("seed must be an integer".into()))?;
                        let count = flag_value(&flags, "--count")?
                            .ok_or_else(|| {
                                CliError::Usage(
                                    "batch --tree needs --dir <dir> or --count <k>".into(),
                                )
                            })?
                            .parse::<usize>()
                            .map_err(|_| CliError::Usage("count must be an integer".into()))?;
                        cmd_generate_trees(seed, count)?
                            .into_iter()
                            .enumerate()
                            .map(|(i, text)| (format!("tree_{seed}_{i:02}"), text))
                            .collect()
                    }
                };
                return cmd_batch_tree(&named_trees, target);
            }
            let named_nets = match flag_value(&flags, "--dir")? {
                Some(dir) => read_labeled_dir(&dir, "net")?,
                None => {
                    let seed = flag_value(&flags, "--seed")?
                        .unwrap_or_else(|| "2005".into())
                        .parse::<u64>()
                        .map_err(|_| CliError::Usage("seed must be an integer".into()))?;
                    let count = flag_value(&flags, "--count")?
                        .ok_or_else(|| {
                            CliError::Usage("batch needs --dir <dir> or --count <k>".into())
                        })?
                        .parse::<usize>()
                        .map_err(|_| CliError::Usage("count must be an integer".into()))?;
                    cmd_generate(seed, count)?
                        .into_iter()
                        .enumerate()
                        .map(|(i, text)| (format!("gen_{seed}_{i:02}"), text))
                        .collect()
                }
            };
            cmd_batch(&named_nets, target)
        }
        Some("generate") => {
            let flags: Vec<String> = it.map(String::from).collect();
            let seed = flag_value(&flags, "--seed")?
                .unwrap_or_else(|| "2005".into())
                .parse::<u64>()
                .map_err(|_| CliError::Usage("seed must be an integer".into()))?;
            let count = flag_value(&flags, "--count")?
                .unwrap_or_else(|| "1".into())
                .parse::<usize>()
                .map_err(|_| CliError::Usage("count must be an integer".into()))?;
            let tree_mode = flags.iter().any(|f| f == "--tree");
            let (nets, kind, ext) = if tree_mode {
                (cmd_generate_trees(seed, count)?, "tree", "tree")
            } else {
                (cmd_generate(seed, count)?, "net", "net")
            };
            match flag_value(&flags, "--out-dir")? {
                Some(dir) => {
                    std::fs::create_dir_all(&dir)?;
                    let mut summary = String::new();
                    for (i, text) in nets.iter().enumerate() {
                        let path = format!("{dir}/{kind}_{seed}_{i:02}.{ext}");
                        std::fs::write(&path, text)?;
                        summary.push_str(&format!("wrote {path}\n"));
                    }
                    Ok(summary)
                }
                None => {
                    let mut out = String::new();
                    for (i, text) in nets.iter().enumerate() {
                        out.push_str(&format!("# --- {kind} {i} ---\n{text}"));
                    }
                    Ok(out)
                }
            }
        }
        Some("bench") => {
            let flags: Vec<String> = it.map(String::from).collect();
            let mut opts = BenchOptions {
                quick: flags.iter().any(|f| f == "--quick"),
                check_baseline: flags.iter().any(|f| f == "--check-baseline"),
                ..BenchOptions::default()
            };
            if let Some(tol) = flag_value(&flags, "--tolerance")? {
                opts.tolerance = tol
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && (0.0..1.0).contains(t))
                    .ok_or_else(|| {
                        CliError::Usage("--tolerance must be a fraction in [0, 1)".into())
                    })?;
            }
            cmd_bench(&opts)
        }
        Some("profile") => {
            let flags: Vec<String> = it.map(String::from).collect();
            let mut opts = ProfileOptions {
                quick: flags.iter().any(|f| f == "--quick"),
                ..ProfileOptions::default()
            };
            if let Some(t) = flag_value(&flags, "--trees")? {
                opts.trees = Some(
                    t.parse::<usize>()
                        .map_err(|_| CliError::Usage("--trees must be an integer".into()))?,
                );
            }
            if let Some(s) = flag_value(&flags, "--seed")? {
                opts.seed = Some(
                    s.parse::<u64>()
                        .map_err(|_| CliError::Usage("--seed must be an integer".into()))?,
                );
            }
            cmd_profile(&opts)
        }
        Some("serve") => {
            let flags: Vec<String> = it.map(String::from).collect();
            let mut opts = ServeOptions::default();
            let parse_usize = |name: &str, v: String| {
                v.parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("{name} must be an integer")))
            };
            if let Some(p) = flag_value(&flags, "--port")? {
                opts.port = p
                    .parse::<u16>()
                    .map_err(|_| CliError::Usage("--port must be a port number".into()))?;
            }
            if let Some(b) = flag_value(&flags, "--bind")? {
                opts.bind = b;
            }
            if let Some(w) = flag_value(&flags, "--workers")? {
                opts.workers = parse_usize("--workers", w)?;
                if opts.workers == 0 {
                    return Err(CliError::Usage("--workers must be at least 1".into()));
                }
            }
            if let Some(s) = flag_value(&flags, "--shards")? {
                opts.shards = parse_usize("--shards", s)?;
            }
            if let Some(m) = flag_value(&flags, "--max-conns")? {
                opts.max_conns = parse_usize("--max-conns", m)?;
            }
            if let Some(q) = flag_value(&flags, "--queue-cap")? {
                opts.queue_cap = parse_usize("--queue-cap", q)?;
                if opts.queue_cap == 0 {
                    return Err(CliError::Usage("--queue-cap must be at least 1".into()));
                }
            }
            if let Some(t) = flag_value(&flags, "--timeout-secs")? {
                opts.timeout_secs = t
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage("--timeout-secs must be an integer".into()))?;
            }
            if let Some(c) = flag_value(&flags, "--cache-cap")? {
                opts.cache_cap = parse_usize("--cache-cap", c)?;
            }
            if let Some(c) = flag_value(&flags, "--value-cache-cap")? {
                opts.value_cache_cap = parse_usize("--value-cache-cap", c)?;
            }
            if let Some(d) = flag_value(&flags, "--drain-secs")? {
                opts.drain_secs = d
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage("--drain-secs must be an integer".into()))?;
            }
            if let Some(ms) = flag_value(&flags, "--log-slow-ms")? {
                opts.log_slow_ms = ms
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage("--log-slow-ms must be an integer".into()))?;
            }
            // Deterministic fault injection (chaos testing; see the
            // README's resilience section). Off unless a cadence flag
            // is given.
            let parse_u64 = |name: &str, v: String| {
                v.parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("{name} must be an integer")))
            };
            if let Some(n) = flag_value(&flags, "--fault-panic-every")? {
                opts.faults.panic_every = parse_u64("--fault-panic-every", n)?;
            }
            if let Some(n) = flag_value(&flags, "--fault-delay-every")? {
                opts.faults.delay_every = parse_u64("--fault-delay-every", n)?;
            }
            if let Some(n) = flag_value(&flags, "--fault-delay-ms")? {
                opts.faults.delay_ms = parse_u64("--fault-delay-ms", n)?;
            }
            if let Some(n) = flag_value(&flags, "--fault-drop-every")? {
                opts.faults.drop_every = parse_u64("--fault-drop-every", n)?;
            }
            if let Some(n) = flag_value(&flags, "--fault-seed")? {
                opts.faults.seed = parse_u64("--fault-seed", n)?;
            }
            cmd_serve(&opts)
        }
        Some("client") => {
            let rest: Vec<String> = it.map(String::from).collect();
            let Some(addr) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err(CliError::Usage("client needs <addr> (host:port)".into()));
            };
            let file = flag_value(&rest, "--file")?;
            // The target flags are only meaningful with --file; parse
            // them lazily so plain relay/smoke sessions don't require
            // them.
            let target = if file.is_some() {
                Some(parse_target(&rest)?)
            } else {
                None
            };
            let retries = match flag_value(&rest, "--retries")? {
                Some(r) => r
                    .parse::<u32>()
                    .map_err(|_| CliError::Usage("--retries must be an integer".into()))?,
                None => 0,
            };
            let backoff_ms = match flag_value(&rest, "--backoff-ms")? {
                Some(b) => b
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage("--backoff-ms must be an integer".into()))?,
                // A sane default once retries are on; irrelevant when
                // they are off.
                None => 50,
            };
            let opts = ClientOptions {
                smoke: rest.iter().any(|f| f == "--smoke"),
                metrics: rest.iter().any(|f| f == "--metrics"),
                shutdown: rest.iter().any(|f| f == "--shutdown"),
                file,
                target,
                retries,
                backoff_ms,
            };
            let stdin = std::io::stdin();
            cmd_client(addr, &opts, &mut stdin.lock())
        }
        Some("help") | Some("--help") | Some("-h") | None => Ok(usage().to_string()),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Reads every `*.{extension}` file in a directory, sorted by name for
/// deterministic batch order.
fn read_labeled_dir(dir: &str, extension: &str) -> Result<Vec<(String, String)>, CliError> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == extension))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Usage(format!(
            "no .{extension} files found in {dir:?}"
        )));
    }
    paths
        .into_iter()
        .map(|p| {
            let label = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            Ok((label, std::fs::read_to_string(&p)?))
        })
        .collect()
}

/// Splits `<file> [flags...]` style arguments.
fn split_flags<'a>(
    mut it: impl Iterator<Item = &'a str>,
) -> Result<(String, Vec<String>), CliError> {
    let file = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <net-file> argument".into()))?;
    Ok((file.to_string(), it.map(String::from).collect()))
}

/// Looks up `--flag value` in a flag list.
fn flag_value(flags: &[String], name: &str) -> Result<Option<String>, CliError> {
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        if f == name {
            return match it.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(CliError::Usage(format!("{name} requires a value"))),
            };
        }
    }
    Ok(None)
}

fn parse_target(flags: &[String]) -> Result<Target, CliError> {
    let ns = flag_value(flags, "--target-ns")?;
    let mult = flag_value(flags, "--target-mult")?;
    match (ns, mult) {
        (Some(ns), None) => {
            Ok(Target::Ns(ns.parse().map_err(|_| {
                CliError::Usage("--target-ns must be a number".into())
            })?))
        }
        (None, Some(m)) => {
            Ok(Target::Multiplier(m.parse().map_err(|_| {
                CliError::Usage("--target-mult must be a number".into())
            })?))
        }
        (None, None) => Err(CliError::Usage(
            "one of --target-ns or --target-mult is required".into(),
        )),
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--target-ns and --target-mult are mutually exclusive".into(),
        )),
    }
}
