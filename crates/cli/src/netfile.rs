//! The `.net` text format: a minimal, diff-friendly description of a
//! routed two-pin net.
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! driver 140            # driver width, u        (optional, default 120)
//! receiver 60           # receiver width, u      (optional, default 60)
//! segment 3000 0.08 0.20   # length_um r_per_um c_per_um (1+ required)
//! segment 4500 0.06 0.18
//! zone 5000 8000        # forbidden zone, um     (0+ allowed)
//! ```
//!
//! Segments are listed source → sink; zone coordinates are distances
//! from the source.

use rip_net::{NetBuilder, NetError, Segment, TwoPinNet};
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

rip_tech::impl_leaf_error!(ParseError);

impl From<(usize, NetError)> for ParseError {
    fn from((line, e): (usize, NetError)) -> Self {
        ParseError {
            line,
            reason: e.to_string(),
        }
    }
}

/// Parses the `.net` text format into a validated [`TwoPinNet`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax
/// problems, and line 0 for whole-net validation failures (e.g. a zone
/// outside the final span).
///
/// # Examples
///
/// ```
/// let net = rip_cli::parse_net(
///     "driver 140\nsegment 3000 0.08 0.2\nzone 1000 2000\n",
/// ).unwrap();
/// assert_eq!(net.total_length(), 3000.0);
/// assert_eq!(net.driver_width(), 140.0);
/// ```
pub fn parse_net(text: &str) -> Result<TwoPinNet, ParseError> {
    let mut builder = NetBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        let number = |s: &str, what: &str| -> Result<f64, ParseError> {
            s.parse::<f64>().map_err(|_| ParseError {
                line: line_no,
                reason: format!("invalid {what}: {s:?}"),
            })
        };
        match keyword {
            "driver" | "receiver" => {
                let [w] = rest[..] else {
                    return Err(ParseError {
                        line: line_no,
                        reason: format!("'{keyword}' takes exactly one width"),
                    });
                };
                let w = number(w, "width")?;
                builder = if keyword == "driver" {
                    builder.driver_width(w)
                } else {
                    builder.receiver_width(w)
                };
            }
            "segment" => {
                let [l, r, c] = rest[..] else {
                    return Err(ParseError {
                        line: line_no,
                        reason: "'segment' takes <length_um> <r_per_um> <c_per_um>".into(),
                    });
                };
                builder = builder.segment(Segment::new(
                    number(l, "length")?,
                    number(r, "resistance per um")?,
                    number(c, "capacitance per um")?,
                ));
            }
            "zone" => {
                let [s, e] = rest[..] else {
                    return Err(ParseError {
                        line: line_no,
                        reason: "'zone' takes <start_um> <end_um>".into(),
                    });
                };
                builder = builder
                    .forbidden_zone(number(s, "zone start")?, number(e, "zone end")?)
                    .map_err(|e| ParseError::from((line_no, e)))?;
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    reason: format!(
                        "unknown keyword {other:?} (expected driver/receiver/segment/zone)"
                    ),
                });
            }
        }
    }
    builder.build().map_err(|e| ParseError::from((0, e)))
}

/// Renders a net back into the `.net` format (inverse of [`parse_net`]).
pub fn format_net(net: &TwoPinNet) -> String {
    let mut out = String::new();
    out.push_str(&format!("driver {}\n", net.driver_width()));
    out.push_str(&format!("receiver {}\n", net.receiver_width()));
    for seg in net.segments() {
        out.push_str(&format!(
            "segment {} {} {}\n",
            seg.length_um(),
            seg.r_per_um(),
            seg.c_per_um()
        ));
    }
    for zone in net.zones() {
        out.push_str(&format!("zone {} {}\n", zone.start(), zone.end()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a 7.5 mm two-layer net
driver 140
receiver 60
segment 3000 0.08 0.20
segment 4500 0.06 0.18  # metal5
zone 5000 7000
";

    #[test]
    fn parses_full_sample() {
        let net = parse_net(SAMPLE).unwrap();
        assert_eq!(net.segments().len(), 2);
        assert_eq!(net.total_length(), 7500.0);
        assert_eq!(net.driver_width(), 140.0);
        assert_eq!(net.receiver_width(), 60.0);
        assert_eq!(net.zones().len(), 1);
        assert!(net.is_forbidden(6000.0));
    }

    #[test]
    fn round_trips_through_format() {
        let net = parse_net(SAMPLE).unwrap();
        let text = format_net(&net);
        let again = parse_net(&text).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn defaults_apply_when_widths_omitted() {
        let net = parse_net("segment 1000 0.08 0.2\n").unwrap();
        assert_eq!(net.driver_width(), rip_net::DEFAULT_DRIVER_WIDTH);
        assert_eq!(net.receiver_width(), rip_net::DEFAULT_RECEIVER_WIDTH);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_net("segment 1000 0.08\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("segment"));

        let err = parse_net("segment 1000 0.08 0.2\nwat 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("wat"));

        let err = parse_net("driver abc\nsegment 1000 0.08 0.2\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("width"));
    }

    #[test]
    fn inverted_zone_is_a_line_error_but_range_is_global() {
        let err = parse_net("segment 1000 0.08 0.2\nzone 500 100\n").unwrap_err();
        assert_eq!(err.line, 2);
        // Out-of-span zones are only detectable after the whole net is
        // known: reported as line 0.
        let err = parse_net("segment 1000 0.08 0.2\nzone 500 5000\n").unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn empty_input_fails_cleanly() {
        let err = parse_net("# nothing here\n").unwrap_err();
        assert!(err.reason.contains("segment"));
    }
}
