//! `rip serve` / `rip client`: the CLI face of the resident solver
//! service (`rip_serve`).
//!
//! `rip serve` starts the TCP server — one shared [`Engine`] session by
//! default, or `--shards N` private engines routed by cache key — and
//! blocks until a client sends `shutdown`. The edge flags (`--bind`,
//! `--max-conns`, `--queue-cap`, `--timeout-secs`) harden it for
//! non-loopback traffic. `rip client` connects to a running server and
//! either relays raw JSON request lines from stdin, wraps a local
//! `.net`/`.tree` file into a protocol request (`--file`), runs the
//! built-in `--smoke` script (the mixed-command health check CI uses),
//! or sends a single `--shutdown`.

use crate::commands::{CliError, Target};
use rip_core::Engine;
use rip_serve::{
    net_to_json, parse_json, start_server, Client, FaultPlan, Json, Request, RetryPolicy,
    ServeConfig, ServerHandle,
};
use rip_tech::units::fs_from_ns;
use rip_tech::Technology;
use std::fmt::Write as _;
use std::io::BufRead;

/// Options for `rip serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Interface to bind (`--bind`); loopback unless told otherwise.
    pub bind: String,
    /// TCP port (0 picks an ephemeral port and prints it).
    pub port: u16,
    /// Connection worker threads.
    pub workers: usize,
    /// Engine shards (`--shards`); 0 = one shared engine.
    pub shards: usize,
    /// Concurrent-connection cap (`--max-conns`); 0 = unlimited.
    pub max_conns: usize,
    /// Bounded per-shard queue depth (`--queue-cap`).
    pub queue_cap: usize,
    /// Idle-connection timeout, seconds (`--timeout-secs`); 0 = never.
    pub timeout_secs: u64,
    /// Geometry-cache LRU bound (entries per cache; 0 = unbounded).
    pub cache_cap: usize,
    /// `τ_min`/library-cache LRU bound (entries per cache; 0 =
    /// unbounded).
    pub value_cache_cap: usize,
    /// Default drain deadline, seconds (`--drain-secs`), used when a
    /// `drain` request carries no `deadline_ms`.
    pub drain_secs: u64,
    /// Slow-request stderr log threshold, ms (`--log-slow-ms`); 0 =
    /// off.
    pub log_slow_ms: u64,
    /// Deterministic fault injection (the hidden `--fault-*` flags);
    /// chaos testing only.
    pub faults: FaultPlan,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let defaults = ServeConfig::default();
        Self {
            bind: "127.0.0.1".to_string(),
            port: 4817,
            workers: defaults.workers,
            shards: defaults.shards,
            max_conns: defaults.max_conns,
            queue_cap: defaults.queue_cap,
            timeout_secs: 0,
            cache_cap: defaults.cache_cap,
            value_cache_cap: defaults.value_cache_cap,
            drain_secs: defaults.drain_deadline_secs,
            log_slow_ms: defaults.log_slow_ms,
            faults: FaultPlan::none(),
        }
    }
}

/// Starts the server (printing the bound address on stdout immediately)
/// and blocks until a client sends `shutdown`. Returns the session
/// summary.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the bind fails (e.g. port in use).
pub fn cmd_serve(opts: &ServeOptions) -> Result<String, CliError> {
    let config = ServeConfig {
        addr: format!("{}:{}", opts.bind, opts.port),
        workers: opts.workers,
        cache_cap: opts.cache_cap,
        value_cache_cap: opts.value_cache_cap,
        shards: opts.shards,
        max_conns: opts.max_conns,
        queue_cap: opts.queue_cap,
        read_timeout_ms: opts.timeout_secs.saturating_mul(1000),
        drain_deadline_secs: opts.drain_secs,
        log_slow_ms: opts.log_slow_ms,
        faults: opts.faults,
        ..ServeConfig::default()
    };
    let engine = Engine::paper(Technology::generic_180nm());
    let server: ServerHandle = start_server(engine, &config)?;
    // The banner must appear before the (indefinite) blocking join, so
    // scripts can discover the port; everything else the command prints
    // goes through the returned summary as usual.
    let topology = if opts.shards > 0 {
        format!("{} shard(s), queue cap {}", opts.shards, config.queue_cap)
    } else {
        "1 shared engine".to_string()
    };
    println!(
        "rip serve: listening on {} ({} worker(s), {topology}, cache cap {}, \
         value cache cap {}, max conns {})",
        server.addr(),
        config.workers,
        config.cache_cap,
        config.value_cache_cap,
        if opts.max_conns == 0 {
            "unlimited".to_string()
        } else {
            opts.max_conns.to_string()
        },
    );
    if opts.faults.is_active() {
        println!(
            "rip serve: FAULT INJECTION ACTIVE (panic every {}, delay every {} by {} ms, \
             drop every {}, seed {}) — chaos testing only",
            opts.faults.panic_every,
            opts.faults.delay_every,
            opts.faults.delay_ms,
            opts.faults.drop_every,
            opts.faults.seed,
        );
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let monitor = server.monitor();
    server.join();
    let (_, _, promotions, evictions, _, _) = monitor.engine_totals();
    Ok(format!(
        "rip serve: shut down after {} request(s) over {} connection(s) ({} rejected); \
         {} caught panic(s), {} respawn(s); engine cache hit rate {:.1}% \
         ({} promotion(s), {} eviction(s)) across {} engine(s)\n",
        monitor.requests_total(),
        monitor.connections_total(),
        monitor.rejected_conns(),
        monitor.panics_total(),
        monitor.respawns_total(),
        monitor.hit_rate() * 100.0,
        promotions,
        evictions,
        monitor.shards().max(1),
    ))
}

/// Options for `rip client`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClientOptions {
    /// Run the built-in mixed-command smoke script and fail unless every
    /// response is `ok`.
    pub smoke: bool,
    /// Send a single `metrics` request and print the server's registry
    /// as Prometheus-style text (`--metrics`).
    pub metrics: bool,
    /// Send a single `shutdown` request.
    pub shutdown: bool,
    /// Wrap a local `.net`/`.tree` file into a protocol request
    /// (`--file`); requires a target.
    pub file: Option<String>,
    /// Timing target for `--file` requests.
    pub target: Option<Target>,
    /// Retries per request for transient failures (`--retries`); 0 =
    /// fail fast.
    pub retries: u32,
    /// Base retry backoff, ms (`--backoff-ms`), doubling per retry with
    /// deterministic jitter.
    pub backoff_ms: u64,
}

/// Connects to a running server. Relays JSON request lines from `input`
/// unless `--smoke`, `--shutdown` or `--file` was given.
///
/// # Errors
///
/// Returns [`CliError::Io`] for transport failures,
/// [`CliError::Usage`]/[`CliError::Parse`] for a bad `--file` request,
/// and [`CliError::Protocol`] when a smoke-script or `--file` response
/// is not `ok`.
pub fn cmd_client(
    addr: &str,
    opts: &ClientOptions,
    input: &mut dyn BufRead,
) -> Result<String, CliError> {
    let mut client = Client::connect(addr)?;
    if opts.retries > 0 {
        client = client.with_retry(RetryPolicy::new(opts.retries, opts.backoff_ms));
    }
    if opts.shutdown {
        let response = client.request_line(r#"{"id":0,"cmd":"shutdown"}"#)?;
        return Ok(format!("{response}\n"));
    }
    if opts.metrics {
        return fetch_metrics(&mut client);
    }
    if opts.smoke {
        return run_smoke(&mut client);
    }
    if let Some(path) = &opts.file {
        return send_file(&mut client, path, opts.target);
    }
    // Relay mode streams: each response is printed as it arrives, so an
    // interactive session sees its answer immediately and a transport
    // error later in the stream cannot discard earlier responses.
    use std::io::Write as _;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = client.request_line(line.trim())?;
        println!("{response}");
        let _ = std::io::stdout().flush();
    }
    Ok(String::new())
}

/// Builds the protocol request line for a local `.net`/`.tree` file —
/// the same typed [`Request`] encoding the server parses, so the wire
/// round trip is exact.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for a missing target or unrecognized
/// extension, [`CliError::Parse`] for a malformed file.
pub fn file_request_line(path: &str, target: Option<Target>) -> Result<String, CliError> {
    let target = target.ok_or_else(|| {
        CliError::Usage("client --file needs --target-ns or --target-mult".into())
    })?;
    let target = match target {
        Target::Ns(ns) => rip_serve::Target::AbsoluteFs(fs_from_ns(ns)),
        Target::Multiplier(m) => rip_serve::Target::TauMinMultiple(m),
    };
    if !path.ends_with(".tree") && !path.ends_with(".net") {
        return Err(CliError::Usage(format!(
            "client --file needs a .net or .tree path, got {path:?}"
        )));
    }
    let text = std::fs::read_to_string(path)?;
    let request = if path.ends_with(".tree") {
        Request::SolveTree {
            tree: crate::treefile::parse_tree_file(&text)?,
            target,
            allowed: None,
        }
    } else {
        Request::Solve {
            net: crate::netfile::parse_net(&text)?,
            target,
        }
    };
    Ok(request.to_json(Some(&Json::from(1u64))).to_string())
}

/// `rip client --file`: one request wrapping the file, one response
/// line; non-`ok` responses exit nonzero with the server's error.
fn send_file(client: &mut Client, path: &str, target: Option<Target>) -> Result<String, CliError> {
    let line = file_request_line(path, target)?;
    let response = client.request_line(&line)?;
    let value = parse_json(&response)
        .map_err(|e| CliError::Protocol(format!("unparseable response: {e}")))?;
    if value.get("ok") != Some(&Json::Bool(true)) {
        return Err(CliError::Protocol(format!(
            "server rejected {path}: {response}"
        )));
    }
    Ok(format!("{response}\n"))
}

/// `rip client --metrics`: one `metrics` request, rendered as
/// Prometheus-style exposition text (counters and gauges as plain
/// samples; histograms as `_count`/`_sum` plus `quantile`-labelled p50,
/// p90 and p99 samples — log2-bucket upper bounds, see the README's
/// observability section).
fn fetch_metrics(client: &mut Client) -> Result<String, CliError> {
    let response = client.request_line(r#"{"id":0,"cmd":"metrics"}"#)?;
    let value = parse_json(&response)
        .map_err(|e| CliError::Protocol(format!("unparseable response: {e}")))?;
    if value.get("ok") != Some(&Json::Bool(true)) {
        return Err(CliError::Protocol(format!(
            "metrics request failed: {response}"
        )));
    }
    let fields = |key: &str| -> Result<Vec<(String, Json)>, CliError> {
        match value.get(key) {
            Some(Json::Obj(fields)) => Ok(fields.clone()),
            _ => Err(CliError::Protocol(format!(
                "metrics response missing {key:?} object: {response}"
            ))),
        }
    };
    let num = |v: &Json| v.as_f64().unwrap_or(0.0);
    let mut out = String::new();
    for (name, v) in fields("counters")? {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", num(&v));
    }
    for (name, v) in fields("gauges")? {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", num(&v));
    }
    for (name, h) in fields("histograms")? {
        let _ = writeln!(out, "# TYPE {name} summary");
        for q in ["p50", "p90", "p99"] {
            let quantile = format!("0.{}", &q[1..]);
            let _ = writeln!(
                out,
                "{name}{{quantile=\"{quantile}\"}} {}",
                h.get(q).map(num).unwrap_or(0.0)
            );
        }
        let _ = writeln!(out, "{name}_sum {}", h.get("sum").map(num).unwrap_or(0.0));
        let _ = writeln!(
            out,
            "{name}_count {}",
            h.get("count").map(num).unwrap_or(0.0)
        );
    }
    Ok(out)
}

/// The built-in smoke script: one of every command (a `hello`
/// capability check, a small masked `solve_tree`, a `reset_stats` whose
/// follow-up `stats` must report exactly one request, and a final
/// `shutdown`), each response required to be `ok`.
///
/// The middle of the script is padded with extra solves so ten
/// fault-eligible requests flow before the reset: CI's chaos smoke runs
/// this same script against `--fault-panic-every 7` with `--retries 3`
/// and must converge — the injected panic lands on an eligible ordinal
/// the retry path then re-runs. All cross-request assertions
/// (warm-vs-cold, post-reset count) hold across retried connections,
/// because responses are byte-identical wherever they are answered and
/// control requests are never injected.
fn run_smoke(client: &mut Client) -> Result<String, CliError> {
    let nets: Vec<Json> = rip_net::NetGenerator::suite(rip_net::RandomNetConfig::default(), 7, 3)
        .expect("default net distribution is valid")
        .iter()
        .map(net_to_json)
        .collect();
    let solve = |id: u64, net: &Json| {
        Json::obj([
            ("id", Json::from(id)),
            ("cmd", Json::from("solve")),
            ("net", net.clone()),
            ("target_mult", Json::Num(1.4)),
        ])
        .to_string()
    };
    // A deliberately small tree: the hybrid tree pipeline is the most
    // expensive command, and the smoke test gates CI wall-clock.
    let tree = r#"{"driver":120,"nodes":[[0,0.08,0.2,1200,null,false],[1,0.06,0.18,1500,60,false],[1,0.08,0.2,1000,50,true]]}"#;
    let script = vec![
        Json::obj([("id", Json::from(0u64)), ("cmd", Json::from("hello"))]).to_string(),
        Json::obj([("id", Json::from(1u64)), ("cmd", Json::from("stats"))]).to_string(),
        Json::obj([
            ("id", Json::from(2u64)),
            ("cmd", Json::from("tau_min")),
            ("net", nets[0].clone()),
        ])
        .to_string(),
        solve(3, &nets[0]),
        Json::obj([
            ("id", Json::from(4u64)),
            ("cmd", Json::from("batch")),
            ("nets", Json::Arr(nets.clone())),
            ("target_mult", Json::Num(1.4)),
        ])
        .to_string(),
        Json::obj([
            ("id", Json::from(5u64)),
            ("cmd", Json::from("compare")),
            ("nets", Json::Arr(vec![nets[1].clone()])),
            ("target_mult", Json::Num(1.5)),
            ("granularity", Json::Num(20.0)),
        ])
        .to_string(),
        format!(r#"{{"id":6,"cmd":"solve_tree","tree":{tree},"target_mult":1.4}}"#),
        // Repeat the first solve: the warm path must serve from cache.
        solve(7, &nets[0]),
        // Warm padding solves: enough eligible traffic for the chaos
        // smoke's periodic fault to land (and be retried) pre-reset.
        solve(8, &nets[1]),
        solve(9, &nets[2]),
        Json::obj([
            ("id", Json::from(10u64)),
            ("cmd", Json::from("tau_min")),
            ("net", nets[1].clone()),
        ])
        .to_string(),
        solve(11, &nets[2]),
        Json::obj([("id", Json::from(12u64)), ("cmd", Json::from("stats"))]).to_string(),
        // Counter reset: the follow-up stats must report exactly one
        // request (itself). Like the warm-vs-cold check, this assumes a
        // quiet server — the smoke script drives the only connection.
        Json::obj([
            ("id", Json::from(13u64)),
            ("cmd", Json::from("reset_stats")),
        ])
        .to_string(),
        Json::obj([("id", Json::from(14u64)), ("cmd", Json::from("stats"))]).to_string(),
        Json::obj([("id", Json::from(15u64)), ("cmd", Json::from("shutdown"))]).to_string(),
    ];
    let mut out = String::new();
    let mut solve_first = None;
    for line in &script {
        let response = client.request_line(line)?;
        let value = parse_json(&response)
            .map_err(|e| CliError::Protocol(format!("unparseable response: {e}")))?;
        if value.get("ok") != Some(&Json::Bool(true)) {
            return Err(CliError::Protocol(format!(
                "smoke request failed: {line} -> {response}"
            )));
        }
        // Every response carries the protocol version.
        if value.get("proto").and_then(Json::as_f64) != Some(rip_serve::PROTO_VERSION as f64) {
            return Err(CliError::Protocol(format!(
                "response missing proto version: {response}"
            )));
        }
        // Id tokens include the trailing comma so e.g. ":1" never
        // matches ":12".
        // hello must advertise the full command set.
        if line.contains("\"id\":0,")
            && value
                .get("commands")
                .and_then(Json::as_arr)
                .map(<[Json]>::len)
                != Some(rip_serve::COMMANDS.len())
        {
            return Err(CliError::Protocol(format!(
                "hello did not list the command set: {response}"
            )));
        }
        // The warm repeat (id 7) must answer byte-identically to the
        // cold solve (id 3) modulo the echoed id.
        if line.contains("\"id\":3,") {
            solve_first = Some(response.replace("\"id\":3", ""));
        }
        if line.contains("\"id\":7,") {
            let warm = response.replace("\"id\":7", "");
            if solve_first.as_deref() != Some(warm.as_str()) {
                return Err(CliError::Protocol(
                    "warm solve diverged from cold solve".into(),
                ));
            }
        }
        if line.contains("\"id\":13,") && value.get("reset") != Some(&Json::Bool(true)) {
            return Err(CliError::Protocol(
                "reset_stats did not acknowledge the reset".into(),
            ));
        }
        if line.contains("\"id\":14,") && value.get("requests").and_then(Json::as_f64) != Some(1.0)
        {
            return Err(CliError::Protocol(format!(
                "stats after reset_stats should report 1 request, got: {response}"
            )));
        }
        let _ = writeln!(out, "{response}");
    }
    let _ = writeln!(
        out,
        "smoke: {} request(s), all ok ({} attempt(s), {} retrie(s), {} gave up)",
        script.len(),
        client.attempts(),
        client.retries(),
        client.gave_up(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_serve::start_server;

    fn smoke_against(config: &ServeConfig) -> String {
        let server = start_server(Engine::paper(Technology::generic_180nm()), config).unwrap();
        let addr = server.addr().to_string();
        let opts = ClientOptions {
            smoke: true,
            ..ClientOptions::default()
        };
        let out = cmd_client(&addr, &opts, &mut std::io::empty()).unwrap();
        // The smoke script ends in shutdown, so the server drains.
        server.join();
        out
    }

    #[test]
    fn smoke_script_passes_against_an_in_process_server() {
        // The same script CI drives over a real socket: every command
        // (hello, masked solve_tree and reset_stats included) must be
        // ok, the warm solve byte-identical, and the post-reset stats
        // at 1 request.
        let out = smoke_against(&ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        assert!(out.contains("all ok"), "{out}");
        assert!(out.contains("\"reset\":true"), "{out}");
        assert!(out.contains("\"server\":\"rip-serve\""), "{out}");
    }

    #[test]
    fn smoke_script_passes_against_a_sharded_server() {
        // CI runs the socket smoke with --shards 2; this is the same
        // topology in-process, so a sharded regression fails here
        // before it reaches CI. hello must now report the shard count.
        let out = smoke_against(&ServeConfig {
            workers: 2,
            shards: 2,
            ..ServeConfig::default()
        });
        assert!(out.contains("all ok"), "{out}");
        assert!(out.contains("\"shards\":2"), "{out}");
    }

    #[test]
    fn chaos_smoke_converges_with_retries_under_injected_panics() {
        // CI's chaos step: the same smoke script against a sharded
        // server that panics every 7th eligible request, driven with
        // --retries 3. The injected panic must surface as a typed
        // internal error, get retried, and the script still end all-ok
        // with its byte-identity and post-reset assertions intact.
        let server = start_server(
            Engine::paper(Technology::generic_180nm()),
            &ServeConfig {
                workers: 2,
                shards: 2,
                faults: FaultPlan {
                    panic_every: 7,
                    ..FaultPlan::none()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let opts = ClientOptions {
            smoke: true,
            retries: 3,
            backoff_ms: 1,
            ..ClientOptions::default()
        };
        let out = cmd_client(&addr, &opts, &mut std::io::empty()).unwrap();
        assert!(out.contains("all ok"), "{out}");
        // The script is sized so the periodic fault fires: a clean run
        // here would mean the chaos step stopped testing anything.
        assert!(!out.contains("0 retrie(s)"), "no retry happened: {out}");
        assert!(out.contains("0 gave up"), "{out}");
        server.join();
    }

    #[test]
    fn client_file_round_trips_against_rip_solve() {
        // `rip client --file net.net` must answer exactly what the
        // local `rip solve` pipeline computes for the same net and
        // target: same engine semantics through the wire.
        let dir = std::env::temp_dir().join(format!("rip_client_file_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("chain.net");
        let net_text = "driver 140\nreceiver 60\nsegment 4000 0.08 0.2\nsegment 3000 0.06 0.18\n";
        std::fs::write(&net_path, net_text).unwrap();

        let server = start_server(
            Engine::paper(Technology::generic_180nm()),
            &ServeConfig {
                workers: 2,
                shards: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let opts = ClientOptions {
            file: Some(net_path.to_string_lossy().into_owned()),
            target: Some(Target::Multiplier(1.4)),
            ..ClientOptions::default()
        };
        let out = cmd_client(&addr, &opts, &mut std::io::empty()).unwrap();
        let response = parse_json(out.trim()).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{out}");

        // The local solve of the same file.
        let net = crate::netfile::parse_net(net_text).unwrap();
        let engine = Engine::paper(Technology::generic_180nm());
        let target_fs = 1.4 * engine.tau_min(&net);
        let expected = engine.solve(&net, target_fs).unwrap();
        assert_eq!(
            response
                .get("delay_fs")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            expected.solution.delay_fs.to_bits(),
            "wire solve diverged from local rip solve"
        );
        assert_eq!(
            response
                .get("total_width")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            expected.solution.total_width.to_bits()
        );

        // A tree file takes the solve_tree path.
        let tree_path = dir.join("fork.tree");
        std::fs::write(
            &tree_path,
            "driver 120\nnode 0 0.08 0.2 1200\nnode 1 0.06 0.18 1500 sink 60\nnode 1 0.08 0.2 1000 sink 50\n",
        )
        .unwrap();
        let opts = ClientOptions {
            file: Some(tree_path.to_string_lossy().into_owned()),
            target: Some(Target::Multiplier(1.4)),
            ..ClientOptions::default()
        };
        let out = cmd_client(&addr, &opts, &mut std::io::empty()).unwrap();
        let response = parse_json(out.trim()).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{out}");
        assert!(response.get("buffers").is_some(), "{out}");

        // Missing target and unknown extensions are usage errors.
        let opts = ClientOptions {
            file: Some(net_path.to_string_lossy().into_owned()),
            ..ClientOptions::default()
        };
        assert!(matches!(
            cmd_client(&addr, &opts, &mut std::io::empty()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            file_request_line("nets.csv", Some(Target::Multiplier(1.4))),
            Err(CliError::Usage(_))
        ));

        let shutdown = ClientOptions {
            shutdown: true,
            ..ClientOptions::default()
        };
        cmd_client(&addr, &shutdown, &mut std::io::empty()).unwrap();
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
