//! `rip serve` / `rip client`: the CLI face of the resident solver
//! service (`rip_serve`).
//!
//! `rip serve` starts the multi-threaded TCP server over one shared
//! [`Engine`] session and blocks until a client sends `shutdown`.
//! `rip client` connects to a running server and either relays raw
//! JSON request lines from stdin, runs the built-in `--smoke` script
//! (the mixed-command health check CI uses), or sends a single
//! `--shutdown`.

use crate::commands::CliError;
use rip_core::Engine;
use rip_serve::{net_to_json, parse_json, start_server, Client, Json, ServeConfig, ServerHandle};
use rip_tech::Technology;
use std::fmt::Write as _;
use std::io::BufRead;

/// Options for `rip serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// TCP port to bind on 127.0.0.1 (0 picks an ephemeral port and
    /// prints it).
    pub port: u16,
    /// Worker threads.
    pub workers: usize,
    /// Geometry-cache LRU bound (entries per cache; 0 = unbounded).
    pub cache_cap: usize,
    /// `τ_min`/library-cache LRU bound (entries per cache; 0 =
    /// unbounded).
    pub value_cache_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let defaults = ServeConfig::default();
        Self {
            port: 4817,
            workers: defaults.workers,
            cache_cap: defaults.cache_cap,
            value_cache_cap: defaults.value_cache_cap,
        }
    }
}

/// Starts the server (printing the bound address on stdout immediately)
/// and blocks until a client sends `shutdown`. Returns the session
/// summary.
///
/// # Errors
///
/// Returns [`CliError::Io`] when the bind fails (e.g. port in use).
pub fn cmd_serve(opts: &ServeOptions) -> Result<String, CliError> {
    let config = ServeConfig {
        addr: format!("127.0.0.1:{}", opts.port),
        workers: opts.workers,
        cache_cap: opts.cache_cap,
        value_cache_cap: opts.value_cache_cap,
    };
    let engine = Engine::paper(Technology::generic_180nm());
    let server: ServerHandle = start_server(engine, &config)?;
    // The banner must appear before the (indefinite) blocking join, so
    // scripts can discover the port; everything else the command prints
    // goes through the returned summary as usual.
    println!(
        "rip serve: listening on {} ({} worker(s), cache cap {}, value cache cap {})",
        server.addr(),
        config.workers,
        config.cache_cap,
        config.value_cache_cap
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let state = std::sync::Arc::clone(server.state());
    server.join();
    let stats = state.engine().stats();
    Ok(format!(
        "rip serve: shut down after {} request(s) over {} connection(s); \
         engine cache hit rate {:.1}% ({} promotion(s), {} eviction(s))\n",
        state.requests(),
        state.connections(),
        stats.hit_rate() * 100.0,
        stats.promotions,
        stats.evictions,
    ))
}

/// Options for `rip client`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientOptions {
    /// Run the built-in mixed-command smoke script and fail unless every
    /// response is `ok`.
    pub smoke: bool,
    /// Send a single `shutdown` request.
    pub shutdown: bool,
}

/// Connects to a running server. Relays JSON request lines from `input`
/// unless `--smoke` or `--shutdown` was given.
///
/// # Errors
///
/// Returns [`CliError::Io`] for transport failures and
/// [`CliError::Protocol`] when a smoke-script response is not `ok`.
pub fn cmd_client(
    addr: &str,
    opts: &ClientOptions,
    input: &mut dyn BufRead,
) -> Result<String, CliError> {
    let mut client = Client::connect(addr)?;
    if opts.shutdown {
        let response = client.request_line(r#"{"id":0,"cmd":"shutdown"}"#)?;
        return Ok(format!("{response}\n"));
    }
    if opts.smoke {
        return run_smoke(&mut client);
    }
    // Relay mode streams: each response is printed as it arrives, so an
    // interactive session sees its answer immediately and a transport
    // error later in the stream cannot discard earlier responses.
    use std::io::Write as _;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = client.request_line(line.trim())?;
        println!("{response}");
        let _ = std::io::stdout().flush();
    }
    Ok(String::new())
}

/// The built-in smoke script: one of every command (including a small
/// masked `solve_tree`, a `reset_stats` whose follow-up `stats` must
/// report exactly one request, and a final `shutdown`), each response
/// required to be `ok`.
fn run_smoke(client: &mut Client) -> Result<String, CliError> {
    let nets: Vec<Json> = rip_net::NetGenerator::suite(rip_net::RandomNetConfig::default(), 7, 3)
        .expect("default net distribution is valid")
        .iter()
        .map(net_to_json)
        .collect();
    // A deliberately small tree: the hybrid tree pipeline is the most
    // expensive command, and the smoke test gates CI wall-clock.
    let tree = r#"{"driver":120,"nodes":[[0,0.08,0.2,1200,null,false],[1,0.06,0.18,1500,60,false],[1,0.08,0.2,1000,50,true]]}"#;
    let script = vec![
        Json::obj([("id", Json::from(1u64)), ("cmd", Json::from("stats"))]).to_string(),
        Json::obj([
            ("id", Json::from(2u64)),
            ("cmd", Json::from("tau_min")),
            ("net", nets[0].clone()),
        ])
        .to_string(),
        Json::obj([
            ("id", Json::from(3u64)),
            ("cmd", Json::from("solve")),
            ("net", nets[0].clone()),
            ("target_mult", Json::Num(1.4)),
        ])
        .to_string(),
        Json::obj([
            ("id", Json::from(4u64)),
            ("cmd", Json::from("batch")),
            ("nets", Json::Arr(nets.clone())),
            ("target_mult", Json::Num(1.4)),
        ])
        .to_string(),
        Json::obj([
            ("id", Json::from(5u64)),
            ("cmd", Json::from("compare")),
            ("nets", Json::Arr(vec![nets[1].clone()])),
            ("target_mult", Json::Num(1.5)),
            ("granularity", Json::Num(20.0)),
        ])
        .to_string(),
        format!(r#"{{"id":6,"cmd":"solve_tree","tree":{tree},"target_mult":1.4}}"#),
        // Repeat the first solve: the warm path must serve from cache.
        Json::obj([
            ("id", Json::from(7u64)),
            ("cmd", Json::from("solve")),
            ("net", nets[0].clone()),
            ("target_mult", Json::Num(1.4)),
        ])
        .to_string(),
        Json::obj([("id", Json::from(8u64)), ("cmd", Json::from("stats"))]).to_string(),
        // Counter reset: the follow-up stats must report exactly one
        // request (itself). Like the warm-vs-cold check, this assumes a
        // quiet server — the smoke script drives the only connection.
        Json::obj([("id", Json::from(9u64)), ("cmd", Json::from("reset_stats"))]).to_string(),
        Json::obj([("id", Json::from(10u64)), ("cmd", Json::from("stats"))]).to_string(),
        Json::obj([("id", Json::from(11u64)), ("cmd", Json::from("shutdown"))]).to_string(),
    ];
    let mut out = String::new();
    let mut solve_first = None;
    for line in &script {
        let response = client.request_line(line)?;
        let value = parse_json(&response)
            .map_err(|e| CliError::Protocol(format!("unparseable response: {e}")))?;
        if value.get("ok") != Some(&Json::Bool(true)) {
            return Err(CliError::Protocol(format!(
                "smoke request failed: {line} -> {response}"
            )));
        }
        // The warm repeat (id 7) must answer byte-identically to the
        // cold solve (id 3) modulo the echoed id.
        if line.contains("\"id\":3") {
            solve_first = Some(response.replace("\"id\":3", ""));
        }
        if line.contains("\"id\":7") {
            let warm = response.replace("\"id\":7", "");
            if solve_first.as_deref() != Some(warm.as_str()) {
                return Err(CliError::Protocol(
                    "warm solve diverged from cold solve".into(),
                ));
            }
        }
        if line.contains("\"id\":9") && value.get("reset") != Some(&Json::Bool(true)) {
            return Err(CliError::Protocol(
                "reset_stats did not acknowledge the reset".into(),
            ));
        }
        if line.contains("\"id\":10") && value.get("requests").and_then(Json::as_f64) != Some(1.0) {
            return Err(CliError::Protocol(format!(
                "stats after reset_stats should report 1 request, got: {response}"
            )));
        }
        let _ = writeln!(out, "{response}");
    }
    let _ = writeln!(out, "smoke: {} request(s), all ok", script.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_serve::start_server;

    #[test]
    fn smoke_script_passes_against_an_in_process_server() {
        // The same script CI drives over a real socket: every command
        // (masked solve_tree and reset_stats included) must be ok, the
        // warm solve byte-identical, and the post-reset stats at 1
        // request.
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let server = start_server(Engine::paper(Technology::generic_180nm()), &config).unwrap();
        let addr = server.addr().to_string();
        let opts = ClientOptions {
            smoke: true,
            shutdown: false,
        };
        let out = cmd_client(&addr, &opts, &mut std::io::empty()).unwrap();
        assert!(out.contains("all ok"), "{out}");
        assert!(out.contains("\"reset\":true"), "{out}");
        // The smoke script ends in shutdown, so the server drains.
        server.join();
    }
}
