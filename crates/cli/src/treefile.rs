//! The `.tree` text format: a minimal, diff-friendly description of a
//! routed multi-sink tree net — the tree counterpart of the `.net`
//! format in [`crate::parse_net`].
//!
//! ```text
//! # comments start with '#'; blank lines are ignored
//! driver 140                  # driver width, u (optional, default 120)
//! node 0 0.08 0.20 1500       # parent r_per_um c_per_um length_um
//! node 1 0.06 0.18 2000 sink 60
//! node 1 0.08 0.20 1200 blocked
//! ```
//!
//! Each `node` line appends one node below an already-declared parent
//! (the implicit root is node 0, so the first `node` line creates node
//! 1, the second node 2, and so on — parents always precede children,
//! the same creation-order convention `rip_net::TreeNet` and
//! `rip_delay::RcTree` use). Trailing attributes mark the node as a
//! `sink <width_u>` (sinks must be leaves) and/or `blocked` (the tree
//! analogue of a forbidden zone).
//!
//! `blocked` is **binding end to end**: the mask
//! ([`rip_net::TreeNet::allowed_mask`]) rides through
//! `Engine::solve_tree_masked`, so `rip solve --tree` and
//! `rip batch --tree` never place a buffer on a blocked node (or on a
//! subdivision point of an edge with a blocked endpoint — see
//! `rip_delay::RcTree::project_allowed`), and relative targets resolve
//! against the *masked* minimum delay. A region so blocked that the
//! target cannot be met fails with a typed infeasibility, never a
//! silent illegal placement.

use crate::netfile::ParseError;
use rip_net::{TreeNet, TreeNetNode};

/// Parses the `.tree` text format into a validated [`TreeNet`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for syntax
/// problems, and line 0 for whole-tree validation failures (e.g. a sink
/// that has children, or a tree without sinks).
///
/// # Examples
///
/// ```
/// let net = rip_cli::parse_tree_file(
///     "driver 140\nnode 0 0.08 0.2 1500\nnode 1 0.06 0.18 2000 sink 60\n",
/// ).unwrap();
/// assert_eq!(net.len(), 3);
/// assert_eq!(net.sinks(), vec![2]);
/// assert_eq!(net.driver_width(), 140.0);
/// ```
pub fn parse_tree_file(text: &str) -> Result<TreeNet, ParseError> {
    let mut driver_width = rip_net::DEFAULT_DRIVER_WIDTH;
    let mut nodes = vec![TreeNetNode {
        parent: None,
        r_per_um: 0.0,
        c_per_um: 0.0,
        length_um: 0.0,
        sink_width: None,
        buffer_ok: true,
    }];
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        let number = |s: &str, what: &str| -> Result<f64, ParseError> {
            s.parse::<f64>().map_err(|_| ParseError {
                line: line_no,
                reason: format!("invalid {what}: {s:?}"),
            })
        };
        match keyword {
            "driver" => {
                let [w] = rest[..] else {
                    return Err(ParseError {
                        line: line_no,
                        reason: "'driver' takes exactly one width".into(),
                    });
                };
                driver_width = number(w, "width")?;
            }
            "node" => {
                let [p, r, c, l, attrs @ ..] = &rest[..] else {
                    return Err(ParseError {
                        line: line_no,
                        reason: "'node' takes <parent> <r_per_um> <c_per_um> <length_um> \
                                 [sink <width_u>] [blocked]"
                            .into(),
                    });
                };
                let parent = p.parse::<usize>().map_err(|_| ParseError {
                    line: line_no,
                    reason: format!("invalid parent index: {p:?}"),
                })?;
                if parent >= nodes.len() {
                    return Err(ParseError {
                        line: line_no,
                        reason: format!(
                            "parent {parent} is not declared yet ({} node(s) so far)",
                            nodes.len()
                        ),
                    });
                }
                let mut node = TreeNetNode {
                    parent: Some(parent),
                    r_per_um: number(r, "resistance per um")?,
                    c_per_um: number(c, "capacitance per um")?,
                    length_um: number(l, "length")?,
                    sink_width: None,
                    buffer_ok: true,
                };
                let mut attrs = attrs.iter();
                while let Some(&attr) = attrs.next() {
                    match attr {
                        "sink" => {
                            let Some(&w) = attrs.next() else {
                                return Err(ParseError {
                                    line: line_no,
                                    reason: "'sink' takes a width".into(),
                                });
                            };
                            node.sink_width = Some(number(w, "sink width")?);
                        }
                        "blocked" => node.buffer_ok = false,
                        other => {
                            return Err(ParseError {
                                line: line_no,
                                reason: format!(
                                    "unknown node attribute {other:?} (expected sink/blocked)"
                                ),
                            });
                        }
                    }
                }
                nodes.push(node);
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    reason: format!("unknown keyword {other:?} (expected driver/node)"),
                });
            }
        }
    }
    TreeNet::from_nodes(nodes, driver_width).map_err(|e| ParseError {
        line: 0,
        reason: e.to_string(),
    })
}

/// Renders a tree net back into the `.tree` format (inverse of
/// [`parse_tree_file`]).
pub fn format_tree_file(net: &TreeNet) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "driver {}", net.driver_width());
    for node in &net.nodes()[1..] {
        let parent = node.parent.expect("non-root nodes have parents");
        let _ = write!(
            out,
            "node {parent} {} {} {}",
            node.r_per_um, node.c_per_um, node.length_um
        );
        if let Some(w) = node.sink_width {
            let _ = write!(out, " sink {w}");
        }
        if !node.buffer_ok {
            let _ = write!(out, " blocked");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{RandomTreeConfig, TreeNetGenerator};

    const SAMPLE: &str = "\
# a three-sink tree on metal4/metal5
driver 140
node 0 0.08 0.20 1500        # trunk
node 1 0.06 0.18 2000 sink 60
node 1 0.08 0.20 1200 blocked
node 3 0.06 0.18 1800 sink 55
node 3 0.08 0.20 1100 sink 44 blocked
";

    #[test]
    fn parses_full_sample() {
        let net = parse_tree_file(SAMPLE).unwrap();
        assert_eq!(net.len(), 6);
        assert_eq!(net.driver_width(), 140.0);
        assert_eq!(net.sinks(), vec![2, 4, 5]);
        assert_eq!(
            net.allowed_mask(),
            vec![true, true, true, false, true, false]
        );
        assert_eq!(net.nodes()[5].sink_width, Some(44.0));
    }

    #[test]
    fn round_trips_through_format() {
        let net = parse_tree_file(SAMPLE).unwrap();
        let text = format_tree_file(&net);
        let again = parse_tree_file(&text).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn generated_trees_round_trip() {
        for net in TreeNetGenerator::suite(RandomTreeConfig::default(), 2005, 5).unwrap() {
            let text = format_tree_file(&net);
            let again = parse_tree_file(&text).unwrap();
            assert_eq!(net, again, "format/parse must be lossless");
        }
    }

    #[test]
    fn driver_defaults_when_omitted() {
        let net = parse_tree_file("node 0 0.08 0.2 1000 sink 60\n").unwrap();
        assert_eq!(net.driver_width(), rip_net::DEFAULT_DRIVER_WIDTH);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_tree_file("node 0 0.08 0.2\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_tree_file("node 0 0.08 0.2 1000 sink 60\nwat 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("wat"));
        let err = parse_tree_file("node 7 0.08 0.2 1000 sink 60\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("parent"));
        let err = parse_tree_file("node 0 0.08 0.2 1000 shiny\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("attribute"));
    }

    #[test]
    fn whole_tree_validation_is_line_zero() {
        // A sink with a child is only detectable once the whole tree is
        // known.
        let err = parse_tree_file("node 0 0.08 0.2 1000 sink 60\nnode 1 0.08 0.2 900 sink 50\n")
            .unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.reason.contains("leaves"));
        // No sinks at all.
        let err = parse_tree_file("node 0 0.08 0.2 1000\n").unwrap_err();
        assert_eq!(err.line, 0);
    }
}
