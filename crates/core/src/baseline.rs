//! The baseline scheme of the paper's evaluation: the Lillis-Cheng-Lin
//! power-mode DP \[14\] with fixed uniform libraries and a uniform 200 µm
//! candidate grid.

use rip_dp::{solve_min_power, CandidateSet, DpError, DpSolution};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};

/// Configuration of a baseline DP run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// The fixed repeater library.
    pub library: RepeaterLibrary,
    /// Uniform candidate grid step, µm (paper: 200 µm).
    pub candidate_step_um: f64,
}

impl BaselineConfig {
    /// The Table 1 baseline: library size 10, minimum width 10u,
    /// granularity `g` → `{10, 10+g, …, 10+9g}`.
    ///
    /// # Panics
    ///
    /// Panics if `g_u` is not strictly positive (the paper uses 10u, 20u
    /// and 40u).
    pub fn paper_table1(g_u: f64) -> Self {
        Self {
            library: RepeaterLibrary::uniform(10.0, g_u, 10)
                .expect("table-1 granularities are positive"),
            candidate_step_um: 200.0,
        }
    }

    /// The Table 2 baseline: fixed width range (10u, 400u) with
    /// granularity `g_DP` (swept 40u → 10u in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `g_u` is not strictly positive.
    pub fn paper_table2(g_u: f64) -> Self {
        Self {
            library: RepeaterLibrary::range_step(10.0, 400.0, g_u)
                .expect("table-2 granularities are positive"),
            candidate_step_um: 200.0,
        }
    }
}

/// Runs the baseline power DP on a net.
///
/// # Errors
///
/// Propagates [`DpError::InfeasibleTarget`] when the library cannot meet
/// the target — this is precisely the paper's `V_DP` timing-violation
/// event (Table 1, column 3).
pub fn baseline_dp(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    config: &BaselineConfig,
    target_fs: f64,
) -> Result<DpSolution, DpError> {
    let cands = CandidateSet::uniform(net, config.candidate_step_um);
    solve_min_power(net, device, &config.library, &cands, target_fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmin::tau_min_paper;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(5000.0, 0.08, 0.2))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn table1_library_shapes() {
        let g10 = BaselineConfig::paper_table1(10.0);
        assert_eq!(g10.library.min_width(), 10.0);
        assert_eq!(g10.library.max_width(), 100.0);
        assert_eq!(g10.library.len(), 10);
        let g40 = BaselineConfig::paper_table1(40.0);
        assert_eq!(g40.library.max_width(), 370.0);
    }

    #[test]
    fn table2_library_covers_fixed_range() {
        for g in [40.0, 30.0, 20.0, 10.0] {
            let cfg = BaselineConfig::paper_table2(g);
            assert_eq!(cfg.library.min_width(), 10.0);
            assert_eq!(cfg.library.max_width(), 400.0);
        }
        // Finer granularity = strictly more widths.
        assert!(
            BaselineConfig::paper_table2(10.0).library.len()
                > BaselineConfig::paper_table2(40.0).library.len()
        );
    }

    #[test]
    fn small_library_violates_tight_targets() {
        // The paper's key Table 1 observation: the g=10u baseline library
        // tops out at 100u, so tight targets are infeasible for it.
        let tech = Technology::generic_180nm();
        let net = net();
        let tmin = tau_min_paper(&net, tech.device());
        let result = baseline_dp(
            &net,
            tech.device(),
            &BaselineConfig::paper_table1(10.0),
            tmin * 1.05,
        );
        assert!(matches!(result, Err(DpError::InfeasibleTarget { .. })));
        // While a coarse-but-wide library succeeds at the same target.
        let ok = baseline_dp(
            &net,
            tech.device(),
            &BaselineConfig::paper_table1(40.0),
            tmin * 1.05,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn baseline_solution_meets_loose_target() {
        let tech = Technology::generic_180nm();
        let net = net();
        let tmin = tau_min_paper(&net, tech.device());
        let sol = baseline_dp(
            &net,
            tech.device(),
            &BaselineConfig::paper_table1(20.0),
            tmin * 1.6,
        )
        .unwrap();
        assert!(sol.meets(tmin * 1.6));
        sol.assignment.validate_on(&net).unwrap();
    }
}
