//! Comparison utilities for the paper's evaluation metrics.

/// Power saving of RIP over a baseline, in percent:
/// `(P_DP − P_RIP) / P_DP · 100`.
///
/// Since repeater power is proportional to total width (Eq. 4), total
/// widths can be passed directly. Positive = RIP wins; the paper reports
/// occasional small negatives in zone III of Figure 7(a).
///
/// # Examples
///
/// ```
/// use rip_core::power_saving_percent;
///
/// assert_eq!(power_saving_percent(200.0, 150.0), 25.0);
/// assert!(power_saving_percent(100.0, 110.0) < 0.0);
/// ```
pub fn power_saving_percent(baseline_width: f64, rip_width: f64) -> f64 {
    (baseline_width - rip_width) / baseline_width * 100.0
}

/// Summary statistics of a series of per-target power savings for one
/// net: the paper's Table 1 columns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SavingsSummary {
    /// Maximum saving over the targets where both schemes were feasible
    /// (`∆Max`), percent.
    pub max_percent: f64,
    /// Mean saving over those targets (`∆Mean`), percent.
    pub mean_percent: f64,
    /// Number of targets where the baseline violated timing (`V_DP`).
    pub baseline_violations: usize,
    /// Number of targets compared (both feasible).
    pub compared: usize,
}

/// Aggregates per-target comparisons into the paper's Table 1 row
/// metrics. Each element is `(baseline_width, rip_width)` where the
/// baseline entry is `None` when it violated timing.
pub fn summarize_savings(rows: &[(Option<f64>, f64)]) -> SavingsSummary {
    let mut summary = SavingsSummary::default();
    let mut sum = 0.0;
    let mut max = f64::NEG_INFINITY;
    for &(baseline, rip) in rows {
        match baseline {
            None => summary.baseline_violations += 1,
            Some(b) => {
                let saving = power_saving_percent(b, rip);
                sum += saving;
                max = max.max(saving);
                summary.compared += 1;
            }
        }
    }
    if summary.compared > 0 {
        summary.mean_percent = sum / summary.compared as f64;
        summary.max_percent = max;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_formula_matches_paper_definition() {
        assert!((power_saving_percent(100.0, 62.86) - 37.14).abs() < 1e-9);
        assert_eq!(power_saving_percent(50.0, 50.0), 0.0);
    }

    #[test]
    fn summary_counts_violations_separately() {
        let rows = vec![
            (Some(100.0), 80.0), // 20 %
            (None, 75.0),        // baseline violated
            (Some(100.0), 90.0), // 10 %
            (None, 60.0),        // baseline violated
        ];
        let s = summarize_savings(&rows);
        assert_eq!(s.baseline_violations, 2);
        assert_eq!(s.compared, 2);
        assert!((s.max_percent - 20.0).abs() < 1e-12);
        assert!((s.mean_percent - 15.0).abs() < 1e-12);
    }

    #[test]
    fn all_violations_leave_zero_stats() {
        let s = summarize_savings(&[(None, 10.0), (None, 20.0)]);
        assert_eq!(s.compared, 0);
        assert_eq!(s.max_percent, 0.0);
        assert_eq!(s.mean_percent, 0.0);
        assert_eq!(s.baseline_violations, 2);
    }

    #[test]
    fn negative_savings_are_preserved() {
        // Zone III of Figure 7(a): the baseline occasionally wins.
        let s = summarize_savings(&[(Some(100.0), 105.0)]);
        assert!(s.max_percent < 0.0);
        assert!(s.mean_percent < 0.0);
    }
}
