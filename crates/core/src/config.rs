//! Configuration of the RIP pipeline, with the paper's Section 6 values
//! as defaults.

use rip_refine::RefineConfig;
use rip_tech::RepeaterLibrary;

/// Stage-1 (coarse DP) configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseDpConfig {
    /// The coarse seed library. Paper: 5 widths, minimum 80u,
    /// granularity 80u → `{80, 160, 240, 320, 400}`.
    pub library: RepeaterLibrary,
    /// Uniform candidate grid step, µm. Paper: 200 µm.
    pub candidate_step_um: f64,
}

impl Default for CoarseDpConfig {
    fn default() -> Self {
        Self {
            library: RepeaterLibrary::paper_coarse(),
            candidate_step_um: 200.0,
        }
    }
}

/// Stage-3/4 (library synthesis + fine DP) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineDpConfig {
    /// Width grid the refined continuous widths are rounded to (the
    /// discrete layout grid). Paper: 10u.
    pub width_grid_u: f64,
    /// Location slots kept on each side of every refined position.
    /// Paper: 10.
    pub window_half_slots: usize,
    /// Granularity of the location window, µm. Paper: 50 µm.
    pub window_step_um: f64,
    /// Library `B` includes this many grid steps on *each side* of every
    /// rounded refined width (clamped to stay positive).
    ///
    /// The paper's Line 3 rounds each width "to its nearest valid
    /// discrete width" and says nothing more — but nearest-rounding a
    /// binding solution *down* makes it infeasible, and a library holding
    /// only the rounded widths then forces the DP into an extra repeater
    /// (a large power regression). A couple of neighbouring grid steps
    /// keep `B` tiny while letting the fine DP trade a +1-step width
    /// against an extra repeater. Set to 0 for the strict paper reading.
    pub enrich_steps: usize,
    /// Also evaluate an (n−1)-repeater branch: REFINE inherits the
    /// repeater *count* from the coarse DP, whose minimum width can
    /// over-count repeaters at loose targets; this extension re-refines
    /// with the narrowest repeater dropped and lets the fine DP pick the
    /// better branch. Set `false` for the strict paper reading.
    pub try_fewer_repeaters: bool,
}

impl Default for FineDpConfig {
    fn default() -> Self {
        Self {
            width_grid_u: 10.0,
            window_half_slots: 10,
            window_step_um: 50.0,
            enrich_steps: 1,
            try_fewer_repeaters: true,
        }
    }
}

/// Full RIP configuration (Fig. 6 + Section 6 of the paper).
///
/// # Examples
///
/// ```
/// use rip_core::RipConfig;
///
/// let config = RipConfig::paper();
/// assert_eq!(config.coarse.library.len(), 5);
/// assert_eq!(config.fine.width_grid_u, 10.0);
/// assert_eq!(config.fine.window_half_slots, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RipConfig {
    /// Stage 1: coarse DP.
    pub coarse: CoarseDpConfig,
    /// Stage 2: analytical refinement.
    pub refine: RefineConfig,
    /// Stages 3–4: library/location synthesis and fine DP.
    pub fine: FineDpConfig,
}

impl RipConfig {
    /// The exact configuration of the paper's experiments (Section 6).
    /// Identical to [`RipConfig::default`]; the named constructor exists
    /// for self-documenting call sites.
    pub fn paper() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6() {
        let c = RipConfig::paper();
        assert_eq!(
            c.coarse.library.widths(),
            &[80.0, 160.0, 240.0, 320.0, 400.0]
        );
        assert_eq!(c.coarse.candidate_step_um, 200.0);
        assert_eq!(c.fine.width_grid_u, 10.0);
        assert_eq!(c.fine.window_half_slots, 10);
        assert_eq!(c.fine.window_step_um, 50.0);
        assert_eq!(c.refine.step_um, 50.0);
    }

    #[test]
    fn config_is_customizable() {
        let mut c = RipConfig::paper();
        c.fine.width_grid_u = 5.0;
        c.coarse.candidate_step_um = 100.0;
        assert_ne!(c, RipConfig::paper());
    }
}
