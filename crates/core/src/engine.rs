//! The batch [`Engine`]: a long-lived session that owns a
//! [`Technology`] + [`RipConfig`] pair, caches the per-technology
//! precomputation the pipeline repeats on every call, and solves many
//! nets in parallel.
//!
//! The free functions [`rip`](crate::rip), [`tree_rip`](crate::tree_rip)
//! and [`baseline_dp`](crate::baseline_dp) are thin wrappers over a
//! one-shot engine; anything that solves more than one net — the CLI
//! `batch` command, the experiment grids, the benchmarks — should hold an
//! engine so that:
//!
//! * coarse/baseline candidate grids are built once per distinct
//!   `(geometry, step)` pair — keyed on exactly the net geometry that
//!   determines them (length + forbidden zones), so nets differing only
//!   in driver/receiver widths share grids — instead of once per
//!   `(net, target)` cell;
//! * the fine stage's windowed candidate sets are cached the same way;
//! * `τ_min` is computed once per net across a whole target sweep;
//! * the synthesized fine libraries of stage 3 are shared between
//!   identical refinement outcomes;
//! * DP scratch memory (option frontiers, trace arenas) is pooled — for
//!   chains *and* trees — so a warm batch allocates nothing per solve;
//! * tree workloads get the same treatment: per-topology edge
//!   subdivisions (the tree analogue of the candidate grids) are cached,
//!   tree `τ_min` is memoized, and [`Engine::solve_tree_batch`] runs
//!   many trees in parallel with deterministic, input-ordered output;
//! * blocked tree nodes are binding: the masked entry points
//!   ([`Engine::solve_tree_masked`], [`Engine::solve_tree_batch_masked`],
//!   [`Engine::tree_tau_min_masked`]) thread a buffer-legality mask
//!   through every stage, the subdivision cache stores the mask
//!   projected onto each subdivided topology under mask-extended keys
//!   (masked and unmasked variants never alias), and a `None`/all-true
//!   mask is byte-identical to the unmasked entry points;
//! * independent nets run on all available cores with deterministic,
//!   input-ordered output ([`Engine::solve_batch`]).
//!
//! Caching never changes results: every cached value is exactly the value
//! the uncached pipeline would recompute, which the batch-determinism
//! test suite pins (`tests/engine_batch.rs`). The geometry caches
//! (candidate grids, fine windows, tree subdivisions) can be bounded with
//! [`Engine::set_cache_cap`], and the value caches (`τ_min`, synthesized
//! libraries) with [`Engine::set_value_cache_cap`]: beyond the cap the
//! *least recently used* entries are evicted (hits promote, counted in
//! [`EngineStats::promotions`]; drops in [`EngineStats::evictions`]),
//! trading recomputation for flat memory on unbounded streams of
//! distinct nets — the sizing knob of a resident solver service
//! (`rip_serve`).

use crate::baseline::BaselineConfig;
use crate::compare::{summarize_savings, SavingsSummary};
use crate::config::RipConfig;
use crate::error::RipError;
use crate::pipeline::{RipOutcome, RipRuntime};
use crate::tmin;
use crate::tree_pipeline::{TreeRipConfig, TreeRipOutcome};
use rip_delay::RcTree;
use rip_dp::{
    solve_min_delay_with, solve_min_power_with, tree_min_delay_with, tree_min_power_with,
    CandidateSet, DpError, DpScratch, DpSolution, TreeScratch,
};
use rip_net::{TreeNet, TwoPinNet};
use rip_obs::{Histogram, MetricsRegistry};
use rip_refine::{refine, trim_tree_widths, RefineError, RefineOutcome, TreeTrimOutcome};
use rip_tech::{RepeaterLibrary, TechError, Technology};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How a batch maps nets to timing targets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatchTarget {
    /// One absolute target for every net, fs.
    AbsoluteFs(f64),
    /// A per-net multiplier over that net's `τ_min` (computed once per
    /// net through the engine cache) — the paper's target convention.
    TauMinMultiple(f64),
    /// Explicit per-net absolute targets, fs. Must have one entry per
    /// net.
    PerNetFs(Vec<f64>),
}

/// Cache-effectiveness counters of an [`Engine`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Uniform candidate-grid lookups served from cache.
    pub grid_hits: u64,
    /// Uniform candidate-grid lookups that had to build the grid.
    pub grid_misses: u64,
    /// Windowed candidate-set lookups served from cache.
    pub window_hits: u64,
    /// Windowed candidate-set lookups that had to build the set.
    pub window_misses: u64,
    /// Tree-subdivision lookups served from cache.
    pub tree_grid_hits: u64,
    /// Tree-subdivision lookups that had to subdivide the tree.
    pub tree_grid_misses: u64,
    /// `τ_min` lookups served from cache.
    pub tau_min_hits: u64,
    /// `τ_min` lookups that had to run the min-delay DP.
    pub tau_min_misses: u64,
    /// Synthesized-library lookups served from cache.
    pub library_hits: u64,
    /// Synthesized-library lookups that had to build the library.
    pub library_misses: u64,
    /// Chain solves completed (successful or not).
    pub nets_solved: u64,
    /// Tree solves completed (successful or not).
    pub trees_solved: u64,
    /// Cache hits that moved an entry to the most-recently-used position
    /// (LRU hit-promotes; a hit on the already-hottest entry is not
    /// counted).
    pub promotions: u64,
    /// Cache entries dropped by the LRU bounds ([`Engine::set_cache_cap`],
    /// [`Engine::set_value_cache_cap`]).
    pub evictions: u64,
}

impl EngineStats {
    /// Total lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.grid_hits
            + self.window_hits
            + self.tree_grid_hits
            + self.tau_min_hits
            + self.library_hits
    }

    /// Total lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.grid_misses
            + self.window_misses
            + self.tree_grid_misses
            + self.tau_min_misses
            + self.library_misses
    }

    /// Fraction of lookups served from cache (0.0 when nothing has been
    /// looked up yet) — the service's headline amortization metric.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits() + self.misses();
        if lookups > 0 {
            self.hits() as f64 / lookups as f64
        } else {
            0.0
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    grid_hits: AtomicU64,
    grid_misses: AtomicU64,
    window_hits: AtomicU64,
    window_misses: AtomicU64,
    tree_grid_hits: AtomicU64,
    tree_grid_misses: AtomicU64,
    tau_min_hits: AtomicU64,
    tau_min_misses: AtomicU64,
    library_hits: AtomicU64,
    library_misses: AtomicU64,
    nets_solved: AtomicU64,
    trees_solved: AtomicU64,
    evictions: AtomicU64,
    promotions: AtomicU64,
}

/// A 64-bit fingerprint of any `Debug`-printable value, used only for
/// the informational [`Engine::config_hash`].
fn fingerprint(value: &impl fmt::Debug) -> u64 {
    let mut hasher = DefaultHasher::new();
    format!("{value:?}").hash(&mut hasher);
    hasher.finish()
}

/// An exact in-memory cache key: the `Debug` rendering of the inputs.
///
/// Rust's `{:?}` for `f64` prints the shortest representation that
/// round-trips, so distinct parameter values yield distinct keys — and
/// because the full string is the `HashMap` key (not a digest of it),
/// hash collisions are resolved by equality and can never serve a stale
/// or wrong cached value.
fn cache_key(value: &impl fmt::Debug) -> String {
    format!("{value:?}")
}

fn combine(a: u64, b: u64) -> u64 {
    let mut hasher = DefaultHasher::new();
    a.hash(&mut hasher);
    b.hash(&mut hasher);
    hasher.finish()
}

/// Cache key for candidate sets: exactly the geometry that determines
/// the positions — total length and forbidden zones — plus the grid
/// parameters. Keying on the full net `Debug` rendering (the seed
/// behavior) over-discriminated: driver/receiver widths and per-segment
/// parasitics never influence candidate positions, so nets differing
/// only in those now share one cached grid.
fn geometry_key(net: &TwoPinNet, extra: &impl fmt::Debug) -> String {
    use fmt::Write as _;
    let mut key = String::with_capacity(32 + 36 * net.zones().len());
    let _ = write!(key, "{:x}", net.total_length().to_bits());
    for zone in net.zones() {
        let _ = write!(
            key,
            "|{:x}-{:x}",
            zone.start().to_bits(),
            zone.end().to_bits()
        );
    }
    let _ = write!(key, "|{extra:?}");
    key
}

/// Validates a caller-supplied tree buffer-legality mask and normalizes
/// the trivial case: a mask that allows every *non-root* node is the
/// unmasked problem (the root entry is ignored throughout — the root
/// hosts the driver, never a buffer), so it collapses to `None` and
/// shares the unmasked cache entries, keeping trivially-masked solves
/// byte-identical to unmasked ones.
///
/// # Errors
///
/// Returns [`DpError::BadAllowedMask`] when the mask length does not
/// match the tree's node count.
fn effective_mask<'a>(
    tree: &RcTree,
    allowed: Option<&'a [bool]>,
) -> Result<Option<&'a [bool]>, DpError> {
    let Some(mask) = allowed else { return Ok(None) };
    if mask.len() != tree.len() {
        return Err(DpError::BadAllowedMask {
            got: mask.len(),
            expected: tree.len(),
        });
    }
    Ok(if mask[1..].iter().all(|&ok| ok) {
        None
    } else {
        Some(mask)
    })
}

/// Extends a cache key with the legality-mask bits — the ONE rule that
/// keeps masked and unmasked cache entries from ever aliasing (the
/// subdivision and `τ_min` caches both depend on it). `None` returns
/// the base key unchanged, so unmasked lookups keep their historical
/// keys bit for bit.
fn masked_key(base: String, mask: Option<&[bool]>) -> String {
    match mask {
        None => base,
        Some(mask) => {
            let bits: String = mask.iter().map(|&ok| if ok { '1' } else { '0' }).collect();
            format!("{base}|mask:{bits}")
        }
    }
}

/// Stable shard key of a chain net, derived from the engine's
/// **geometry** cache key (total length + forbidden zones): nets that
/// share candidate grids and fine windows hash to the same shard, so a
/// sharded service keeps each engine's geometry caches hot and disjoint
/// instead of duplicating the working set N times.
///
/// The key is deterministic within a process (requests for one net
/// always land on one shard) but not stable across processes or Rust
/// versions — routing is a cache-affinity hint, never part of the
/// answer: any routing yields byte-identical responses.
pub fn net_shard_key(net: &TwoPinNet) -> u64 {
    let mut hasher = DefaultHasher::new();
    geometry_key(net, &"shard").hash(&mut hasher);
    hasher.finish()
}

/// Stable shard key of a tree net, derived from the tree's **topology**
/// rendering — the same `Debug` discrimination the engine's subdivision
/// cache keys on (one `TreeNet` maps to one [`RcTree`], so equal trees
/// always share a shard and its cached subdivisions). Same determinism
/// contract as [`net_shard_key`].
pub fn tree_shard_key(tree: &TreeNet) -> u64 {
    let mut hasher = DefaultHasher::new();
    cache_key(tree).hash(&mut hasher);
    hasher.finish()
}

/// A cached tree subdivision: the subdivided candidate-site tree and —
/// for masked lookups — the buffer-legality mask projected onto the
/// subdivided topology ([`RcTree::project_allowed`]).
///
/// Masked and unmasked variants of one `(topology, step)` pair live
/// under **different cache keys** (the key embeds the mask bits), so
/// the two can never alias: an unmasked solve always sees
/// `allowed == None`, a masked solve always sees exactly its own
/// projection.
#[derive(Debug)]
struct TreeSites {
    /// The subdivided site tree.
    tree: RcTree,
    /// The projected legality mask (`None` for unmasked lookups).
    allowed: Option<Vec<bool>>,
}

/// Sentinel "no neighbour" slot index for [`LruCache`]'s intrusive
/// recency list.
const LRU_NIL: usize = usize::MAX;

#[derive(Debug)]
struct LruEntry<V> {
    key: String,
    /// `None` only while the slot sits on the free list — eviction must
    /// drop the value immediately (the cap exists to bound memory), not
    /// when the slot is eventually reused.
    value: Option<V>,
    /// Neighbour towards the most-recently-used end (`LRU_NIL` at the
    /// head).
    prev: usize,
    /// Neighbour towards the least-recently-used end (`LRU_NIL` at the
    /// tail).
    next: usize,
}

/// A `HashMap` with recency-aware (LRU) eviction: every entry sits on an
/// intrusive doubly-linked recency list threaded through a slab, a hit
/// promotes the entry to the most-recently-used position in O(1), and
/// inserts past the cap drop the *least recently used* entries — so a
/// hot working set survives an unbounded stream of one-shot keys, which
/// the PR 3 FIFO bound could not guarantee (a popular early entry aged
/// out regardless of use). Eviction never changes results — a dropped
/// entry is simply recomputed on its next lookup — so it is safe on
/// exactly the caches whose values are pure functions of their keys.
#[derive(Debug)]
struct LruCache<V> {
    /// Key → slot in `entries`.
    map: HashMap<String, usize>,
    /// Slot slab; freed slots are recycled via `free`.
    entries: Vec<LruEntry<V>>,
    free: Vec<usize>,
    /// Most-recently-used slot (`LRU_NIL` when empty).
    head: usize,
    /// Least-recently-used slot (`LRU_NIL` when empty).
    tail: usize,
}

// Derived `Default` would needlessly require `V: Default`.
impl<V> Default for LruCache<V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            entries: Vec::new(),
            free: Vec::new(),
            head: LRU_NIL,
            tail: LRU_NIL,
        }
    }
}

impl<V: Clone> LruCache<V> {
    /// Entry count (test/diagnostic helper; the hot paths read
    /// `map.len()` directly).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Detaches `slot` from the recency list without freeing it.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.entries[slot].prev, self.entries[slot].next);
        match prev {
            LRU_NIL => self.head = next,
            p => self.entries[p].next = next,
        }
        match next {
            LRU_NIL => self.tail = prev,
            n => self.entries[n].prev = prev,
        }
    }

    /// Attaches `slot` at the most-recently-used end.
    fn push_front(&mut self, slot: usize) {
        self.entries[slot].prev = LRU_NIL;
        self.entries[slot].next = self.head;
        match self.head {
            LRU_NIL => self.tail = slot,
            h => self.entries[h].prev = slot,
        }
        self.head = slot;
    }

    /// Looks up `key`; a hit promotes the entry to most-recently-used
    /// (counted in `promotions` when the entry actually moves — a hit
    /// on the entry already at the head is free and uncounted).
    fn get_promote(&mut self, key: &str, promotions: &AtomicU64) -> Option<V> {
        let &slot = self.map.get(key)?;
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
            promotions.fetch_add(1, Ordering::Relaxed);
        }
        Some(
            self.entries[slot]
                .value
                .clone()
                .expect("mapped slots hold live values"),
        )
    }

    /// Completes a lookup whose value was computed outside the lock:
    /// returns the existing value when another worker won the race
    /// (`false` = hit, promoting it), otherwise inserts `value` at the
    /// most-recently-used position, evicts LRU entries down to `cap`
    /// (0 = unbounded, counting drops into `evictions`), and returns it
    /// (`true` = miss).
    fn finish(
        &mut self,
        key: String,
        value: V,
        cap: usize,
        evictions: &AtomicU64,
        promotions: &AtomicU64,
    ) -> (V, bool) {
        if let Some(existing) = self.get_promote(&key, promotions) {
            return (existing, false);
        }
        let entry = LruEntry {
            key: key.clone(),
            value: Some(value.clone()),
            prev: LRU_NIL,
            next: LRU_NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        if cap > 0 {
            while self.map.len() > cap {
                let victim = self.tail;
                debug_assert_ne!(victim, LRU_NIL, "the recency list tracks every entry");
                self.unlink(victim);
                let key = std::mem::take(&mut self.entries[victim].key);
                self.map.remove(&key);
                self.entries[victim].value = None;
                self.free.push(victim);
                evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        (value, true)
    }

    /// Keys from most- to least-recently-used (test/diagnostic helper).
    #[cfg(test)]
    fn recency_order(&self) -> Vec<String> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != LRU_NIL {
            keys.push(self.entries[slot].key.clone());
            slot = self.entries[slot].next;
        }
        keys
    }

    fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = LRU_NIL;
        self.tail = LRU_NIL;
    }
}

/// Deterministic parallel map: distributes `items` over the available
/// cores and returns results in input order. Falls back to an inline loop
/// when a single worker would be spawned.
fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                collected
                    .lock()
                    .expect("no poisoned worker")
                    .push((i, result));
            });
        }
    });
    let mut tagged = collected.into_inner().expect("workers joined");
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// A solving session: one technology, one configuration, shared caches,
/// parallel batch entry points.
///
/// Caches are unbounded by default: reuse within a batch, a target
/// sweep, or a bounded working set is the design point. A long-lived
/// process solving an unbounded stream of *distinct* nets should set
/// LRU bounds with [`Engine::set_cache_cap`] /
/// [`Engine::set_value_cache_cap`], or call
/// [`Engine::clear_cache`] at natural boundaries (end of a design, end
/// of a request) to keep memory flat.
///
/// # Examples
///
/// ```
/// use rip_core::{BatchTarget, Engine, RipConfig};
/// use rip_net::{NetGenerator, RandomNetConfig};
/// use rip_tech::Technology;
///
/// let engine = Engine::new(Technology::generic_180nm(), RipConfig::paper());
/// let nets = NetGenerator::suite(RandomNetConfig::default(), 7, 4).unwrap();
/// let outcomes = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
/// assert_eq!(outcomes.len(), nets.len());
/// for out in &outcomes {
///     assert!(out.as_ref().unwrap().solution.delay_fs > 0.0);
/// }
/// // A second pass over the same nets is served from the session cache.
/// let before = engine.stats();
/// let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
/// assert!(engine.stats().hits() > before.hits());
/// ```
#[derive(Debug)]
pub struct Engine {
    tech: Technology,
    config: RipConfig,
    config_hash: u64,
    grids: Mutex<LruCache<Arc<CandidateSet>>>,
    windows: Mutex<LruCache<Arc<CandidateSet>>>,
    subdivisions: Mutex<LruCache<Arc<TreeSites>>>,
    tau_mins: Mutex<LruCache<f64>>,
    libraries: Mutex<LruCache<Arc<RepeaterLibrary>>>,
    scratches: Mutex<Vec<DpScratch>>,
    tree_scratches: Mutex<Vec<TreeScratch>>,
    cache_cap: AtomicUsize,
    value_cache_cap: AtomicUsize,
    scratch_cap: AtomicUsize,
    counters: Counters,
    metrics: EngineMetrics,
}

/// Pre-resolved handles into the engine's metrics registry: the shared
/// [`MetricsRegistry`] plus one [`Histogram`] per pipeline stage, so hot
/// paths observe through a pointer instead of a by-name lookup. The
/// registry is get-or-create, so handles resolved from it stay valid
/// across [`Engine::adopt_metrics`] — a supervisor can hand one
/// registry from a crashed engine to its replacement and external
/// holders keep observing the same histograms.
#[derive(Debug)]
struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    chain_grid: Arc<Histogram>,
    chain_coarse_dp: Arc<Histogram>,
    chain_refine: Arc<Histogram>,
    chain_fine: Arc<Histogram>,
    tree_subdivide_coarse: Arc<Histogram>,
    tree_coarse_dp: Arc<Histogram>,
    tree_trim: Arc<Histogram>,
    tree_window_gen: Arc<Histogram>,
    tree_fine_dp: Arc<Histogram>,
    cache_hit: Arc<Histogram>,
    cache_miss: Arc<Histogram>,
}

impl EngineMetrics {
    /// Resolves every stage handle against `registry` (creating the
    /// histograms on first use).
    fn resolve(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            chain_grid: registry.histogram("engine_chain_grid_ns"),
            chain_coarse_dp: registry.histogram("engine_chain_coarse_dp_ns"),
            chain_refine: registry.histogram("engine_chain_refine_ns"),
            chain_fine: registry.histogram("engine_chain_fine_ns"),
            tree_subdivide_coarse: registry.histogram("engine_tree_subdivide_coarse_ns"),
            tree_coarse_dp: registry.histogram("engine_tree_coarse_dp_ns"),
            tree_trim: registry.histogram("engine_tree_trim_ns"),
            tree_window_gen: registry.histogram("engine_tree_window_gen_ns"),
            tree_fine_dp: registry.histogram("engine_tree_fine_dp_ns"),
            cache_hit: registry.histogram("engine_cache_hit_ns"),
            cache_miss: registry.histogram("engine_cache_miss_ns"),
            registry,
        }
    }
}

impl Engine {
    /// Creates a session over a technology and pipeline configuration.
    pub fn new(tech: Technology, config: RipConfig) -> Self {
        let config_hash = combine(fingerprint(&tech), fingerprint(&config));
        Self {
            tech,
            config,
            config_hash,
            grids: Mutex::new(LruCache::default()),
            windows: Mutex::new(LruCache::default()),
            subdivisions: Mutex::new(LruCache::default()),
            tau_mins: Mutex::new(LruCache::default()),
            libraries: Mutex::new(LruCache::default()),
            scratches: Mutex::new(Vec::new()),
            tree_scratches: Mutex::new(Vec::new()),
            cache_cap: AtomicUsize::new(0),
            value_cache_cap: AtomicUsize::new(0),
            scratch_cap: AtomicUsize::new(0),
            counters: Counters::default(),
            metrics: EngineMetrics::resolve(Arc::new(MetricsRegistry::new())),
        }
    }

    /// A session with the paper's Section 6 configuration.
    pub fn paper(tech: Technology) -> Self {
        Self::new(tech, RipConfig::paper())
    }

    /// The session's technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The session's pipeline configuration.
    pub fn config(&self) -> &RipConfig {
        &self.config
    }

    /// In-process fingerprint of the `(technology, configuration)` pair,
    /// for logging and diagnostics (e.g. tagging results with the
    /// session that produced them).
    ///
    /// Unequal hashes guarantee different configurations; equal hashes
    /// make identical configurations overwhelmingly likely but are not
    /// proof (64-bit digest), and the underlying hasher is unspecified
    /// across Rust releases — do not key persisted caches on this value.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Drops every cached candidate grid, tree subdivision, `τ_min` and
    /// synthesized library, keeping the technology, configuration and
    /// statistics counters. Long-running services solving unbounded
    /// streams of distinct nets call this at natural boundaries to bound
    /// memory (or set a standing bound with [`Engine::set_cache_cap`]).
    pub fn clear_cache(&self) {
        self.grids.lock().expect("grid cache").clear();
        self.windows.lock().expect("window cache").clear();
        self.subdivisions.lock().expect("subdivision cache").clear();
        self.tau_mins.lock().expect("tau cache").clear();
        self.libraries.lock().expect("library cache").clear();
        self.scratches.lock().expect("scratch pool").clear();
        self.tree_scratches
            .lock()
            .expect("tree scratch pool")
            .clear();
    }

    /// Bounds the geometry caches (candidate grids, fine windows, tree
    /// subdivisions) to at most `cap` entries **each**, evicting the
    /// *least recently used* entries as new ones arrive (every cache hit
    /// promotes its entry, counted in [`EngineStats::promotions`]); `0`
    /// (the default) means unbounded. Evicted entries are recomputed on
    /// their next lookup, so results never change — only
    /// [`EngineStats::evictions`] and the hit rate do.
    pub fn set_cache_cap(&self, cap: usize) {
        self.cache_cap.store(cap, Ordering::Relaxed);
    }

    /// The current geometry-cache bound (`0` = unbounded).
    pub fn cache_cap(&self) -> usize {
        self.cache_cap.load(Ordering::Relaxed)
    }

    /// Bounds the value caches — the `τ_min` memo and the synthesized
    /// fine libraries — to at most `cap` entries **each**, with the same
    /// LRU semantics as [`Engine::set_cache_cap`]; `0` (the default)
    /// means unbounded. These maps hold one scalar / one small library
    /// per distinct net, so they only matter at service lifetimes: a
    /// resident server solving an unbounded stream of distinct nets sets
    /// both caps to keep memory flat forever.
    pub fn set_value_cache_cap(&self, cap: usize) {
        self.value_cache_cap.store(cap, Ordering::Relaxed);
    }

    /// The current value-cache bound (`0` = unbounded).
    pub fn value_cache_cap(&self) -> usize {
        self.value_cache_cap.load(Ordering::Relaxed)
    }

    /// Bounds the DP scratch pools (chain and tree) to at most `cap`
    /// retained scratches each; `0` (the default) means unbounded —
    /// the pool then grows to the peak number of concurrent solves.
    /// A service sizes this to its worker-thread count so a burst of
    /// concurrency cannot pin arena memory for the life of the process.
    /// Excess scratches are simply dropped on return; results never
    /// change.
    pub fn set_scratch_cap(&self, cap: usize) {
        self.scratch_cap.store(cap, Ordering::Relaxed);
    }

    /// The current scratch-pool bound (`0` = unbounded).
    pub fn scratch_cap(&self) -> usize {
        self.scratch_cap.load(Ordering::Relaxed)
    }

    /// The engine's metrics registry: per-stage latency histograms for
    /// the chain pipeline (`engine_chain_*_ns`), the tree pipeline
    /// (`engine_tree_*_ns`), and cache lookup latency
    /// (`engine_cache_{hit,miss}_ns`). All values are nanoseconds.
    /// Observation never changes solver results — the determinism suite
    /// pins that solve bytes are identical with metrics read or reset at
    /// any point.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics.registry
    }

    /// Re-points the engine at an existing metrics registry, rebuilding
    /// the per-stage histogram handles. A supervisor replacing a crashed
    /// engine calls this with the old engine's registry so latency
    /// history survives the respawn; handles previously resolved from
    /// that registry (e.g. a shard worker's queue-wait histogram) stay
    /// valid because the registry is get-or-create.
    pub fn adopt_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = EngineMetrics::resolve(registry);
    }

    /// Resets every statistics counter to zero, keeping the caches and
    /// their contents untouched — the monitoring reset behind the
    /// service's `reset_stats` command. Counter reads/writes are
    /// `Relaxed`, so a reset concurrent with in-flight solves may lose
    /// a few increments; results are never affected.
    pub fn reset_stats(&self) {
        let c = &self.counters;
        for counter in [
            &c.grid_hits,
            &c.grid_misses,
            &c.window_hits,
            &c.window_misses,
            &c.tree_grid_hits,
            &c.tree_grid_misses,
            &c.tau_min_hits,
            &c.tau_min_misses,
            &c.library_hits,
            &c.library_misses,
            &c.nets_solved,
            &c.trees_solved,
            &c.evictions,
            &c.promotions,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
        self.metrics.registry.reset();
    }

    /// Cache-effectiveness counters so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            grid_hits: self.counters.grid_hits.load(Ordering::Relaxed),
            grid_misses: self.counters.grid_misses.load(Ordering::Relaxed),
            window_hits: self.counters.window_hits.load(Ordering::Relaxed),
            window_misses: self.counters.window_misses.load(Ordering::Relaxed),
            tree_grid_hits: self.counters.tree_grid_hits.load(Ordering::Relaxed),
            tree_grid_misses: self.counters.tree_grid_misses.load(Ordering::Relaxed),
            tau_min_hits: self.counters.tau_min_hits.load(Ordering::Relaxed),
            tau_min_misses: self.counters.tau_min_misses.load(Ordering::Relaxed),
            library_hits: self.counters.library_hits.load(Ordering::Relaxed),
            library_misses: self.counters.library_misses.load(Ordering::Relaxed),
            nets_solved: self.counters.nets_solved.load(Ordering::Relaxed),
            trees_solved: self.counters.trees_solved.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            promotions: self.counters.promotions.load(Ordering::Relaxed),
        }
    }

    // ---- scratch pool ----------------------------------------------------

    /// Runs `f` with a pooled [`DpScratch`]: pops one (or creates the
    /// pool's first on a cold start), and returns it afterwards so a
    /// warm batch allocates no DP working memory at all. The pool grows
    /// to at most the peak number of concurrent solves, bounded by
    /// [`Engine::set_scratch_cap`].
    fn with_scratch<R>(&self, f: impl FnOnce(&mut DpScratch) -> R) -> R {
        let mut scratch = self
            .scratches
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        let result = f(&mut scratch);
        let cap = self.scratch_cap.load(Ordering::Relaxed);
        let mut pool = self.scratches.lock().expect("scratch pool");
        if cap == 0 || pool.len() < cap {
            pool.push(scratch);
        }
        result
    }

    /// The tree analogue of [`Engine::with_scratch`]: every tree DP stage
    /// of one `solve_tree` call reuses the same pooled [`TreeScratch`].
    fn with_tree_scratch<R>(&self, f: impl FnOnce(&mut TreeScratch) -> R) -> R {
        let mut scratch = self
            .tree_scratches
            .lock()
            .expect("tree scratch pool")
            .pop()
            .unwrap_or_default();
        let result = f(&mut scratch);
        let cap = self.scratch_cap.load(Ordering::Relaxed);
        let mut pool = self.tree_scratches.lock().expect("tree scratch pool");
        if cap == 0 || pool.len() < cap {
            pool.push(scratch);
        }
        result
    }

    // ---- cached precomputation -------------------------------------------

    /// Looks up `key`, promoting it on a hit — the fast path of every
    /// cached precomputation.
    fn cache_get<V: Clone>(
        &self,
        cache: &Mutex<LruCache<V>>,
        key: &str,
        hits: &AtomicU64,
    ) -> Option<V> {
        let value = cache
            .lock()
            .expect("engine cache")
            .get_promote(key, &self.counters.promotions)?;
        hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Inserts a freshly computed value unless another worker won the
    /// race, and attributes the hit/miss to whoever actually resolved
    /// the entry: values are computed *outside* the cache lock, so two
    /// workers can build the same key concurrently — only the one whose
    /// insert lands counts a miss, keeping the counters exact even
    /// under parallel batches (the hit-rate tests assert equality).
    /// Applies `cap` with LRU eviction on insert.
    fn finish_lookup<V: Clone>(
        &self,
        cache: &Mutex<LruCache<V>>,
        cap: usize,
        key: String,
        computed: V,
        hits: &AtomicU64,
        misses: &AtomicU64,
    ) -> V {
        let (value, was_miss) = cache.lock().expect("engine cache").finish(
            key,
            computed,
            cap,
            &self.counters.evictions,
            &self.counters.promotions,
        );
        if was_miss {
            misses.fetch_add(1, Ordering::Relaxed);
        } else {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// The uniform candidate grid for `(net geometry, step)`, built at
    /// most once per session (LRU-bounded by
    /// [`Engine::set_cache_cap`]). Keyed on geometry only (length +
    /// zones), so nets differing in driver/receiver widths or wire
    /// parasitics share one grid.
    fn grid(&self, net: &TwoPinNet, step_um: f64) -> Arc<CandidateSet> {
        let t = Instant::now();
        let key = geometry_key(net, &step_um.to_bits());
        if let Some(grid) = self.cache_get(&self.grids, &key, &self.counters.grid_hits) {
            self.metrics.cache_hit.observe_since(t);
            return grid;
        }
        let grid = Arc::new(CandidateSet::uniform(net, step_um));
        let grid = self.finish_lookup(
            &self.grids,
            self.cache_cap.load(Ordering::Relaxed),
            key,
            grid,
            &self.counters.grid_hits,
            &self.counters.grid_misses,
        );
        self.metrics.cache_miss.observe_since(t);
        grid
    }

    /// The windowed candidate set for `(net geometry, centers, window)`,
    /// built at most once per session — repeated solves of a net (target
    /// sweeps, identical batches) reuse the fine-stage candidate sets.
    fn window_grid(
        &self,
        net: &TwoPinNet,
        centers: &[f64],
        half_slots: usize,
        step_um: f64,
    ) -> Arc<CandidateSet> {
        let t = Instant::now();
        let center_bits: Vec<u64> = centers.iter().map(|c| c.to_bits()).collect();
        let key = geometry_key(net, &(center_bits, half_slots, step_um.to_bits()));
        if let Some(set) = self.cache_get(&self.windows, &key, &self.counters.window_hits) {
            self.metrics.cache_hit.observe_since(t);
            return set;
        }
        let set = Arc::new(CandidateSet::windows(net, centers, half_slots, step_um));
        let set = self.finish_lookup(
            &self.windows,
            self.cache_cap.load(Ordering::Relaxed),
            key,
            set,
            &self.counters.window_hits,
            &self.counters.window_misses,
        );
        self.metrics.cache_miss.observe_since(t);
        set
    }

    /// The `step_um` edge subdivision of a tree — its candidate buffer
    /// sites — built at most once per `(topology, step[, mask])` per
    /// session. The tree analogue of [`Engine::grid`]: repeated solves
    /// of one topology (target sweeps, identical batches) reuse the
    /// coarse and fine site trees instead of re-subdividing.
    ///
    /// With a mask (given on the *original* node indexing), the cache
    /// entry also carries the mask projected onto the subdivided
    /// topology: inserted Steiner points inherit the legality of their
    /// covering original edge — see [`RcTree::project_allowed`]. The
    /// mask bits are part of the cache key, so masked and unmasked
    /// variants of one `(topology, step)` pair never alias.
    ///
    /// `allowed` must already be validated/normalized
    /// ([`effective_mask`]): `None` here reproduces the unmasked entry
    /// bit for bit.
    fn subdivision_masked(
        &self,
        tree: &RcTree,
        step_um: f64,
        allowed: Option<&[bool]>,
    ) -> Arc<TreeSites> {
        let t = Instant::now();
        let key = masked_key(cache_key(&(tree, step_um.to_bits())), allowed);
        if let Some(sub) = self.cache_get(&self.subdivisions, &key, &self.counters.tree_grid_hits) {
            self.metrics.cache_hit.observe_since(t);
            return sub;
        }
        let (sub, map) = tree.subdivided(step_um);
        let projected = allowed.map(|mask| tree.project_allowed(&sub, &map, mask));
        let sites = self.finish_lookup(
            &self.subdivisions,
            self.cache_cap.load(Ordering::Relaxed),
            key,
            Arc::new(TreeSites {
                tree: sub,
                allowed: projected,
            }),
            &self.counters.tree_grid_hits,
            &self.counters.tree_grid_misses,
        );
        self.metrics.cache_miss.observe_since(t);
        sites
    }

    /// `τ_min` of a net under the paper's experimental setup, computed at
    /// most once per session (LRU-bounded by
    /// [`Engine::set_value_cache_cap`]).
    pub fn tau_min(&self, net: &TwoPinNet) -> f64 {
        let t = Instant::now();
        let key = cache_key(net);
        if let Some(tmin) = self.cache_get(&self.tau_mins, &key, &self.counters.tau_min_hits) {
            self.metrics.cache_hit.observe_since(t);
            return tmin;
        }
        let tmin = tmin::tau_min_paper(net, self.tech.device());
        let tmin = self.finish_lookup(
            &self.tau_mins,
            self.value_cache_cap.load(Ordering::Relaxed),
            key,
            tmin,
            &self.counters.tau_min_hits,
            &self.counters.tau_min_misses,
        );
        self.metrics.cache_miss.observe_since(t);
        tmin
    }

    /// Stage-3 library synthesis, memoized on `(rounded widths, grid,
    /// steps, direction)`.
    ///
    /// `upward_only = false` builds the standard enrichment (`steps` grid
    /// neighbours on both sides of every rounded width); `true` builds
    /// the infeasibility-retry library (wider neighbours only).
    fn synthesized_library(
        &self,
        rounded: &RepeaterLibrary,
        grid: f64,
        steps: usize,
        upward_only: bool,
    ) -> Result<Arc<RepeaterLibrary>, TechError> {
        let t = Instant::now();
        let key = cache_key(&(rounded.widths(), steps, upward_only, grid.to_bits()));
        if let Some(lib) = self.cache_get(&self.libraries, &key, &self.counters.library_hits) {
            self.metrics.cache_hit.observe_since(t);
            return Ok(lib);
        }
        let mut widths: Vec<f64> = Vec::new();
        for &w in rounded.widths() {
            widths.push(w);
            for k in 1..=steps {
                widths.push(w + grid * k as f64);
                if !upward_only {
                    let below = w - grid * k as f64;
                    if below >= grid - 1e-9 {
                        widths.push(below);
                    }
                }
            }
        }
        let lib = Arc::new(RepeaterLibrary::from_widths(widths)?);
        let lib = self.finish_lookup(
            &self.libraries,
            self.value_cache_cap.load(Ordering::Relaxed),
            key,
            lib,
            &self.counters.library_hits,
            &self.counters.library_misses,
        );
        self.metrics.cache_miss.observe_since(t);
        Ok(lib)
    }

    // ---- chain solving ---------------------------------------------------

    /// Runs algorithm RIP (Fig. 6) on one two-pin net through the session
    /// caches. Semantics are identical to [`rip`](crate::rip); see there
    /// for the stage walkthrough and the robustness extensions.
    ///
    /// # Errors
    ///
    /// * [`RipError::Infeasible`] when no stage can meet the target;
    /// * [`RipError::Dp`] / [`RipError::Refine`] for invalid inputs.
    pub fn solve(&self, net: &TwoPinNet, target_fs: f64) -> Result<RipOutcome, RipError> {
        self.with_scratch(|scratch| self.solve_with_scratch(net, target_fs, scratch))
    }

    /// [`Engine::solve`] against one checked-out scratch: every DP stage
    /// of the pipeline reuses the same working memory.
    fn solve_with_scratch(
        &self,
        net: &TwoPinNet,
        target_fs: f64,
        scratch: &mut DpScratch,
    ) -> Result<RipOutcome, RipError> {
        self.counters.nets_solved.fetch_add(1, Ordering::Relaxed);
        let device = self.tech.device();
        let config = &self.config;
        let mut runtime = RipRuntime::default();

        // ---- Stage 1: coarse DP (Fig. 6, Line 1).
        let t0 = Instant::now();
        let coarse_cands = self.grid(net, config.coarse.candidate_step_um);
        self.metrics.chain_grid.observe_since(t0);
        let t0_dp = Instant::now();
        let coarse = match solve_min_power_with(
            scratch,
            net,
            device,
            &config.coarse.library,
            &coarse_cands,
            target_fs,
        ) {
            Ok(sol) => sol,
            // Coarse library can't meet the target: seed REFINE from the
            // fastest coarse placement instead.
            Err(DpError::InfeasibleTarget { .. }) => {
                solve_min_delay_with(scratch, net, device, &config.coarse.library, &coarse_cands)
            }
            Err(e) => return Err(e.into()),
        };
        self.metrics.chain_coarse_dp.observe_since(t0_dp);
        runtime.coarse = t0.elapsed();

        // ---- Stage 2: REFINE (Fig. 6, Line 2).
        let t1 = Instant::now();
        let refined = match refine(
            net,
            device,
            &coarse.assignment.positions(),
            target_fs,
            &config.refine,
        ) {
            Ok(out) => out,
            Err(RefineError::InfeasibleTarget { achievable_fs, .. }) => {
                return Err(RipError::Infeasible {
                    target_fs,
                    achievable_fs,
                });
            }
            Err(e) => return Err(e.into()),
        };
        self.metrics.chain_refine.observe_since(t1);
        runtime.refine = t1.elapsed();

        // Degenerate loose-target case: no repeaters needed at all.
        if refined.positions.is_empty() {
            let t2 = Instant::now();
            let empty_cands = CandidateSet::from_positions(net, vec![])?;
            let solution = solve_min_power_with(
                scratch,
                net,
                device,
                &config.coarse.library,
                &empty_cands,
                target_fs,
            )?;
            self.metrics.chain_fine.observe_since(t2);
            runtime.fine = t2.elapsed();
            return Ok(RipOutcome {
                solution,
                coarse,
                refined: Some(refined),
                library: None,
                candidate_count: 0,
                runtime,
            });
        }

        // ---- Stages 3-4 on the n-repeater branch.
        let t2 = Instant::now();
        let mut best = self.finish_from_refined(net, &refined, target_fs, scratch);

        // Extension (`FineDpConfig::try_fewer_repeaters`): REFINE cannot
        // change the repeater *count* it inherited from the coarse DP, and
        // a coarse library whose minimum width exceeds the loose-target
        // optimum systematically over-counts. Re-refine with one repeater
        // dropped (each of the up-to-3 narrowest tried — removal can
        // strand the survivors behind a forbidden zone, so a single
        // heuristic pick is not enough) and keep whichever branch the fine
        // DP likes better. Over-counting only happens in the
        // small-repeater regime: when the refined widths sit well above
        // the coarse library's minimum, the count was not forced by the
        // library floor and dropping can only lose. The gate keeps
        // tight-target runs (big widths, big DP frontiers) free of
        // pointless extra branches.
        let mean_refined_width = refined.total_width / refined.widths.len().max(1) as f64;
        let small_width_regime = mean_refined_width < 1.5 * config.coarse.library.min_width();
        if config.fine.try_fewer_repeaters && refined.positions.len() >= 2 && small_width_regime {
            let mut by_width: Vec<usize> = (0..refined.widths.len()).collect();
            by_width.sort_by(|&a, &b| {
                refined.widths[a]
                    .partial_cmp(&refined.widths[b])
                    .expect("finite widths")
            });
            for &drop in by_width.iter().take(3) {
                let mut fewer_positions = refined.positions.clone();
                fewer_positions.remove(drop);
                let Ok(fewer) = refine(net, device, &fewer_positions, target_fs, &config.refine)
                else {
                    continue;
                };
                // The continuous width lower-bounds this branch's discrete
                // outcome (modulo one grid step); skip branches that
                // cannot beat the incumbent.
                if let Ok((incumbent, _, _)) = &best {
                    if fewer.total_width >= incumbent.total_width + config.fine.width_grid_u {
                        continue;
                    }
                }
                let alt = self.finish_from_refined(net, &fewer, target_fs, scratch);
                let better = match (&best, &alt) {
                    (Ok(b), Ok(a)) => a.0.total_width < b.0.total_width,
                    (Err(_), Ok(_)) => true,
                    _ => false,
                };
                if better {
                    best = alt;
                }
            }
        }
        self.metrics.chain_fine.observe_since(t2);
        runtime.fine = t2.elapsed();

        let (solution, final_lib, candidate_count) = match best {
            Ok(parts) => parts,
            Err(achievable_fs) => {
                // Final fallback: the coarse solution, if it met the
                // target.
                if coarse.meets(target_fs) {
                    (coarse.clone(), config.coarse.library.clone(), 0)
                } else {
                    return Err(RipError::Infeasible {
                        target_fs,
                        achievable_fs: achievable_fs.min(coarse.delay_fs),
                    });
                }
            }
        };

        Ok(RipOutcome {
            solution,
            coarse,
            refined: Some(refined),
            library: Some(final_lib),
            candidate_count,
            runtime,
        })
    }

    /// Stages 3-4 for one refined branch: synthesize the design-specific
    /// library `B` (rounded + neighbouring grid steps — see
    /// [`crate::FineDpConfig::enrich_steps`]) and candidate set `S`, then
    /// run the fine DP with an infeasibility retry on a further-enriched
    /// library.
    ///
    /// Returns the minimum achievable delay on failure so the caller can
    /// report how far off the target was.
    fn finish_from_refined(
        &self,
        net: &TwoPinNet,
        refined: &RefineOutcome,
        target_fs: f64,
        scratch: &mut DpScratch,
    ) -> Result<(DpSolution, RepeaterLibrary, usize), f64> {
        let device = self.tech.device();
        let config = &self.config;
        let grid = config.fine.width_grid_u;
        let rounded = RepeaterLibrary::from_refined_widths(refined.widths.iter().copied(), grid)
            .expect("refined widths are positive");
        let cands = self.window_grid(
            net,
            &refined.positions,
            config.fine.window_half_slots,
            config.fine.window_step_um,
        );
        let mut final_lib = self
            .synthesized_library(&rounded, grid, config.fine.enrich_steps, false)
            .expect("enriched widths are positive");
        let mut solution =
            solve_min_power_with(scratch, net, device, &final_lib, &cands, target_fs);
        if matches!(solution, Err(DpError::InfeasibleTarget { .. })) {
            // Infeasible after rounding: only *wider* fallbacks can help,
            // so the retry enriches upward only (keeps the library small -
            // the fine DP's cost is sensitive to |B| at tight targets).
            final_lib = self
                .synthesized_library(&rounded, grid, config.fine.enrich_steps.max(1) * 3, true)
                .expect("positive widths");
            solution = solve_min_power_with(scratch, net, device, &final_lib, &cands, target_fs);
        }
        match solution {
            Ok(sol) => Ok((sol, (*final_lib).clone(), cands.len())),
            Err(DpError::InfeasibleTarget { achievable_fs, .. }) => Err(achievable_fs),
            Err(e) => unreachable!("windowed candidates and targets are pre-validated: {e}"),
        }
    }

    /// Resolves a [`BatchTarget`] for net `index`.
    fn resolve_target(&self, net: &TwoPinNet, target: &BatchTarget, index: usize) -> f64 {
        match target {
            BatchTarget::AbsoluteFs(fs) => *fs,
            BatchTarget::TauMinMultiple(mult) => mult * self.tau_min(net),
            BatchTarget::PerNetFs(all) => all[index],
        }
    }

    /// Solves a batch of nets in parallel over the available cores.
    ///
    /// The output is input-ordered and deterministic: entry `i` is
    /// exactly what `self.solve(&nets[i], target_i)` returns, regardless
    /// of thread interleaving (the caches only memoize values the
    /// pipeline would recompute identically).
    ///
    /// # Panics
    ///
    /// Panics when a [`BatchTarget::PerNetFs`] list length differs from
    /// `nets.len()`.
    pub fn solve_batch(
        &self,
        nets: &[TwoPinNet],
        target: &BatchTarget,
    ) -> Vec<Result<RipOutcome, RipError>> {
        if let BatchTarget::PerNetFs(all) = target {
            assert_eq!(all.len(), nets.len(), "one target per net");
        }
        par_map(nets, |i, net| {
            let target_fs = self.resolve_target(net, target, i);
            self.solve(net, target_fs)
        })
    }

    // ---- baseline + comparison ------------------------------------------

    /// Runs the Lillis-style baseline DP through the session's grid
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates [`DpError::InfeasibleTarget`] — the paper's `V_DP`
    /// timing-violation event.
    pub fn baseline(
        &self,
        net: &TwoPinNet,
        config: &BaselineConfig,
        target_fs: f64,
    ) -> Result<DpSolution, DpError> {
        let cands = self.grid(net, config.candidate_step_um);
        self.with_scratch(|scratch| {
            solve_min_power_with(
                scratch,
                net,
                self.tech.device(),
                &config.library,
                &cands,
                target_fs,
            )
        })
    }

    /// Runs the Lillis-style baseline power DP on a tree — one uniform
    /// fixed-width library over a uniform candidate subdivision
    /// (`config.candidate_step_um`), no hybrid stages — through the
    /// session's subdivision cache, under an optional buffer-legality
    /// mask. The tree analogue of [`Engine::baseline`], and what tree
    /// entries in a `compare` request are measured against.
    ///
    /// # Errors
    ///
    /// Propagates [`DpError::InfeasibleTarget`] (the paper's `V_DP`
    /// timing-violation event) and [`DpError::BadAllowedMask`] for a
    /// mask whose length does not match the tree.
    pub fn tree_baseline_masked(
        &self,
        tree: &RcTree,
        driver_width: f64,
        config: &BaselineConfig,
        target_fs: f64,
        allowed: Option<&[bool]>,
    ) -> Result<rip_dp::TreeSolution, DpError> {
        let allowed = effective_mask(tree, allowed)?;
        let sites = self.subdivision_masked(tree, config.candidate_step_um, allowed);
        self.with_tree_scratch(|scratch| {
            tree_min_power_with(
                scratch,
                &sites.tree,
                self.tech.device(),
                driver_width,
                &config.library,
                sites.allowed.as_deref(),
                target_fs,
            )
        })
    }

    /// RIP vs baseline over a batch, in parallel: per-net
    /// `(baseline width, RIP width)` rows plus the paper's Table 1 summary
    /// metrics. A baseline timing violation becomes a `None` row entry
    /// (counted in [`SavingsSummary::baseline_violations`]).
    ///
    /// # Errors
    ///
    /// Fails when RIP itself fails on any net, or when the baseline
    /// reports anything other than an infeasible target.
    ///
    /// # Panics
    ///
    /// Panics when a [`BatchTarget::PerNetFs`] list length differs from
    /// `nets.len()`.
    #[allow(clippy::type_complexity)]
    pub fn compare_batch(
        &self,
        nets: &[TwoPinNet],
        target: &BatchTarget,
        baseline: &BaselineConfig,
    ) -> Result<(Vec<(Option<f64>, f64)>, SavingsSummary), RipError> {
        if let BatchTarget::PerNetFs(all) = target {
            assert_eq!(all.len(), nets.len(), "one target per net");
        }
        let rows: Vec<Result<(Option<f64>, f64), RipError>> = par_map(nets, |i, net| {
            let target_fs = self.resolve_target(net, target, i);
            let rip_width = self.solve(net, target_fs)?.solution.total_width;
            let base = match self.baseline(net, baseline, target_fs) {
                Ok(sol) => Some(sol.total_width),
                Err(DpError::InfeasibleTarget { .. }) => None,
                Err(e) => return Err(e.into()),
            };
            Ok((base, rip_width))
        });
        let rows: Vec<(Option<f64>, f64)> = rows.into_iter().collect::<Result<_, _>>()?;
        let summary = summarize_savings(&rows);
        Ok((rows, summary))
    }

    // ---- tree solving ----------------------------------------------------

    /// The minimum achievable delay of a tree under `config`'s coarse
    /// sites with the paper's fine-granularity width range, computed at
    /// most once per `(topology, driver, config)` per session — the tree
    /// analogue of [`Engine::tau_min`], and what
    /// [`BatchTarget::TauMinMultiple`] resolves against in
    /// [`Engine::solve_tree_batch`].
    pub fn tree_tau_min(&self, tree: &RcTree, driver_width: f64, config: &TreeRipConfig) -> f64 {
        self.tree_tau_min_masked(tree, driver_width, config, None)
            .expect("the unmasked tree tau_min cannot fail")
    }

    /// [`Engine::tree_tau_min`] under an optional buffer-legality mask
    /// aligned to `tree`'s node indexing (the indexing
    /// [`RcTree::from_tree_net`] preserves, so a
    /// [`rip_net::TreeNet::allowed_mask`] can be passed straight
    /// through): the minimum achievable delay when buffers may only
    /// occupy allowed coarse sites. A `None` or all-true mask is
    /// byte-identical to [`Engine::tree_tau_min`] and shares its cache
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`RipError::Dp`] ([`DpError::BadAllowedMask`]) when the
    /// mask length does not match the tree.
    pub fn tree_tau_min_masked(
        &self,
        tree: &RcTree,
        driver_width: f64,
        config: &TreeRipConfig,
        allowed: Option<&[bool]>,
    ) -> Result<f64, RipError> {
        let t = Instant::now();
        let allowed = effective_mask(tree, allowed)?;
        let key = masked_key(
            cache_key(&(
                "tree_tau_min",
                tree,
                driver_width.to_bits(),
                config.coarse_step_um.to_bits(),
            )),
            allowed,
        );
        if let Some(tmin) = self.cache_get(&self.tau_mins, &key, &self.counters.tau_min_hits) {
            self.metrics.cache_hit.observe_since(t);
            return Ok(tmin);
        }
        let sites = self.subdivision_masked(tree, config.coarse_step_um, allowed);
        let library = RepeaterLibrary::range_step(10.0, 400.0, 10.0)
            .expect("paper library constants are valid");
        let tmin = self.with_tree_scratch(|scratch| {
            tree_min_delay_with(
                scratch,
                &sites.tree,
                self.tech.device(),
                driver_width,
                &library,
                sites.allowed.as_deref(),
            )
            .map(|sol| sol.delay_fs)
        })?;
        let tmin = self.finish_lookup(
            &self.tau_mins,
            self.value_cache_cap.load(Ordering::Relaxed),
            key,
            tmin,
            &self.counters.tau_min_hits,
            &self.counters.tau_min_misses,
        );
        self.metrics.cache_miss.observe_since(t);
        Ok(tmin)
    }

    /// Runs the hybrid RIP pipeline on an RC tree through the session's
    /// caches. Semantics are identical to [`tree_rip`](crate::tree_rip);
    /// the chain knobs are taken from `config.base` (not the engine's
    /// chain configuration, which governs two-pin solves only).
    ///
    /// Per-topology candidate-site trees (the coarse and fine edge
    /// subdivisions) come from the session cache, and every tree DP
    /// stage draws its working memory from the pooled [`TreeScratch`]es.
    ///
    /// # Errors
    ///
    /// * [`RipError::Infeasible`] when even min-delay buffering over the
    ///   coarse sites cannot meet the target;
    /// * other [`RipError`] variants for invalid inputs.
    pub fn solve_tree(
        &self,
        tree: &RcTree,
        driver_width: f64,
        target_fs: f64,
        config: &TreeRipConfig,
    ) -> Result<TreeRipOutcome, RipError> {
        self.solve_tree_masked(tree, driver_width, target_fs, config, None)
    }

    /// [`Engine::solve_tree`] under a buffer-legality mask: `allowed[v]`
    /// says whether a buffer may occupy node `v` of the **original**
    /// tree indexing (the indexing [`RcTree::from_tree_net`] preserves,
    /// so a [`rip_net::TreeNet::allowed_mask`] — e.g. the `blocked`
    /// attributes of a `.tree` file — passes straight through).
    ///
    /// The mask is binding end to end:
    ///
    /// * the coarse DP (stage 1) and its min-delay fallback only see
    ///   coarse sites whose projection is legal — inserted Steiner
    ///   points inherit the legality of their covering original edge
    ///   ([`RcTree::project_allowed`]);
    /// * the width trim (stage 2) keeps the coarse stage's legal sites
    ///   fixed, so it cannot re-legalize a blocked node;
    /// * the fine DP (stage 4) intersects its windowed candidate sites
    ///   with the projected fine mask before solving.
    ///
    /// A `None` or all-true mask is **byte-identical** to
    /// [`Engine::solve_tree`] (it normalizes away and shares the
    /// unmasked cache entries); a real mask never places a buffer on a
    /// blocked node — the masked-tree conformance suite pins both.
    ///
    /// # Errors
    ///
    /// * [`RipError::Dp`] ([`DpError::BadAllowedMask`]) when the mask
    ///   length does not match the tree;
    /// * [`RipError::Infeasible`] when the target cannot be met over
    ///   the legal sites — an all-blocked region degrades to bufferless
    ///   buffering and surfaces here as a typed infeasibility, never a
    ///   panic;
    /// * other [`RipError`] variants for invalid inputs.
    pub fn solve_tree_masked(
        &self,
        tree: &RcTree,
        driver_width: f64,
        target_fs: f64,
        config: &TreeRipConfig,
        allowed: Option<&[bool]>,
    ) -> Result<TreeRipOutcome, RipError> {
        let allowed = effective_mask(tree, allowed)?;
        self.with_tree_scratch(|scratch| {
            self.solve_tree_with_scratch(tree, driver_width, target_fs, config, allowed, scratch)
        })
    }

    /// [`Engine::solve_tree_masked`] against one checked-out scratch.
    /// `allowed` must already be validated/normalized
    /// ([`effective_mask`]).
    fn solve_tree_with_scratch(
        &self,
        tree: &RcTree,
        driver_width: f64,
        target_fs: f64,
        config: &TreeRipConfig,
        allowed: Option<&[bool]>,
        scratch: &mut TreeScratch,
    ) -> Result<TreeRipOutcome, RipError> {
        self.counters.trees_solved.fetch_add(1, Ordering::Relaxed);
        let device = self.tech.device();
        let mut runtime = RipRuntime::default();

        // ---- Stage 1: coarse tree DP (over the legal coarse sites
        // only, when a mask is in force).
        let t0 = Instant::now();
        let coarse_sites = self.subdivision_masked(tree, config.coarse_step_um, allowed);
        self.metrics.tree_subdivide_coarse.observe_since(t0);
        let coarse_tree = &coarse_sites.tree;
        let coarse_mask = coarse_sites.allowed.as_deref();
        let t0_dp = Instant::now();
        let coarse = match tree_min_power_with(
            scratch,
            coarse_tree,
            device,
            driver_width,
            &config.base.coarse.library,
            coarse_mask,
            target_fs,
        ) {
            Ok(sol) => sol,
            Err(DpError::InfeasibleTarget { .. }) => {
                // Seed from the fastest coarse buffering, as on chains.
                let fastest = tree_min_delay_with(
                    scratch,
                    coarse_tree,
                    device,
                    driver_width,
                    &config.base.coarse.library,
                    coarse_mask,
                )?;
                if fastest.delay_fs > target_fs {
                    return Err(RipError::Infeasible {
                        target_fs,
                        achievable_fs: fastest.delay_fs,
                    });
                }
                fastest
            }
            Err(e) => return Err(e.into()),
        };
        self.metrics.tree_coarse_dp.observe_since(t0_dp);
        runtime.coarse = t0.elapsed();

        // ---- Stage 2: continuous width trim at the chosen sites.
        let t1 = Instant::now();
        let trim: TreeTrimOutcome = match trim_tree_widths(
            coarse_tree,
            device,
            driver_width,
            &coarse.buffer_widths,
            target_fs,
            &config.trim,
        ) {
            Ok(out) => out,
            Err(RefineError::InfeasibleTarget { achievable_fs, .. }) => {
                return Err(RipError::Infeasible {
                    target_fs,
                    achievable_fs,
                });
            }
            Err(e) => return Err(e.into()),
        };
        self.metrics.tree_trim.observe_since(t1);
        runtime.refine = t1.elapsed();

        // Degenerate loose case: no buffers at all.
        let trimmed_widths: Vec<f64> = trim.buffer_widths.iter().flatten().copied().collect();
        let t2 = Instant::now();
        if trimmed_widths.is_empty() {
            let fine_sites = self.subdivision_masked(tree, config.fine_step_um, allowed);
            let fine_tree = &fine_sites.tree;
            let unbuffered = tree_min_power_with(
                scratch,
                fine_tree,
                device,
                driver_width,
                &config.base.coarse.library,
                Some(&vec![false; fine_tree.len()]),
                target_fs,
            )?;
            self.metrics.tree_fine_dp.observe_since(t2);
            runtime.fine = t2.elapsed();
            return Ok(TreeRipOutcome {
                solution: unbuffered,
                fine_tree: fine_tree.clone(),
                coarse_width: coarse.total_width,
                trimmed_width: 0.0,
                library: config.base.coarse.library.clone(),
                candidate_count: 0,
                runtime,
            });
        }

        // ---- Stage 3: synthesized library + windowed fine sites.
        let t_win = Instant::now();
        let grid = config.base.fine.width_grid_u;
        let rounded = RepeaterLibrary::from_refined_widths(trimmed_widths.iter().copied(), grid)?;

        // Buffer positions measured as coarse-tree root distances; fine
        // sites within the window of any buffer (path distance via
        // root-distance frame of the *original* tree is approximated on
        // the fine tree, which shares its geometry).
        let window_um = config.base.fine.window_half_slots as f64 * config.base.fine.window_step_um;
        let fine_sites = self.subdivision_masked(tree, config.fine_step_um, allowed);
        let fine_tree = &fine_sites.tree;
        let fine_mask = fine_sites.allowed.as_deref();
        let buffer_sites: Vec<usize> = (0..coarse_tree.len())
            .filter(|&v| trim.buffer_widths[v].is_some())
            .collect();
        let mut windowed = vec![false; fine_tree.len()];
        let mut candidate_count = 0usize;
        // Both subdivisions preserve geometry, so match sites by root
        // distance + subtree identity via nearest fine node on the same
        // monotone path. A conservative and simple criterion that works
        // for the common case: allow fine nodes whose root distance is
        // within the window of some chosen buffer's root distance.
        // (Branches at equal depth admit a few extra candidates; the DP
        // simply ignores unhelpful ones.) Under a mask, the window is
        // intersected with the projected fine legality before the DP
        // ever sees it.
        let buffer_dists: Vec<f64> = buffer_sites
            .iter()
            .map(|&v| coarse_tree.root_distance(v))
            .collect();
        for (v, slot) in windowed.iter_mut().enumerate().skip(1) {
            if fine_mask.is_some_and(|m| !m[v]) {
                continue;
            }
            let d = fine_tree.root_distance(v);
            if buffer_dists.iter().any(|&bd| (d - bd).abs() <= window_um) {
                *slot = true;
                candidate_count += 1;
            }
        }
        self.metrics.tree_window_gen.observe_since(t_win);

        // ---- Stage 4: fine tree DP with enrichment retry.
        let t_fine = Instant::now();
        let mut library =
            self.synthesized_library(&rounded, grid, config.base.fine.enrich_steps, false)?;
        let mut solution = tree_min_power_with(
            scratch,
            fine_tree,
            device,
            driver_width,
            &library,
            Some(&windowed),
            target_fs,
        );
        if matches!(solution, Err(DpError::InfeasibleTarget { .. })) {
            library = self.synthesized_library(
                &rounded,
                grid,
                config.base.fine.enrich_steps.max(1) * 3,
                false,
            )?;
            solution = tree_min_power_with(
                scratch,
                fine_tree,
                device,
                driver_width,
                &library,
                Some(&windowed),
                target_fs,
            );
        }
        self.metrics.tree_fine_dp.observe_since(t_fine);
        runtime.fine = t2.elapsed();

        let solution = match solution {
            Ok(sol) => sol,
            Err(DpError::InfeasibleTarget { achievable_fs, .. }) => {
                return Err(RipError::Infeasible {
                    target_fs,
                    achievable_fs,
                });
            }
            Err(e) => return Err(e.into()),
        };

        Ok(TreeRipOutcome {
            solution,
            fine_tree: fine_tree.clone(),
            coarse_width: coarse.total_width,
            trimmed_width: trim.total_width,
            library: (*library).clone(),
            candidate_count,
            runtime,
        })
    }

    /// Solves a batch of `(tree, driver width)` pairs in parallel over
    /// the available cores — the tree counterpart of
    /// [`Engine::solve_batch`].
    ///
    /// The output is input-ordered and deterministic: entry `i` is
    /// exactly what `self.solve_tree(&trees[i].0, trees[i].1, target_i,
    /// config)` returns, regardless of thread interleaving.
    /// [`BatchTarget::TauMinMultiple`] resolves against each tree's
    /// cached [`Engine::tree_tau_min`].
    ///
    /// # Panics
    ///
    /// Panics when a [`BatchTarget::PerNetFs`] list length differs from
    /// `trees.len()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rip_core::{BatchTarget, Engine, RipConfig, TreeRipConfig};
    /// use rip_delay::RcTree;
    /// use rip_net::{RandomTreeConfig, TreeNetGenerator};
    /// use rip_tech::Technology;
    ///
    /// let engine = Engine::new(Technology::generic_180nm(), RipConfig::paper());
    /// let config = TreeRipConfig::paper();
    /// let nets = TreeNetGenerator::suite(RandomTreeConfig::default(), 7, 3).unwrap();
    /// let trees: Vec<(RcTree, f64)> = nets
    ///     .iter()
    ///     .map(|n| (RcTree::from_tree_net(n, engine.technology().device()), n.driver_width()))
    ///     .collect();
    /// let outcomes = engine.solve_tree_batch(&trees, &BatchTarget::TauMinMultiple(1.4), &config);
    /// assert_eq!(outcomes.len(), trees.len());
    /// ```
    pub fn solve_tree_batch(
        &self,
        trees: &[(RcTree, f64)],
        target: &BatchTarget,
        config: &TreeRipConfig,
    ) -> Vec<Result<TreeRipOutcome, RipError>> {
        if let BatchTarget::PerNetFs(all) = target {
            assert_eq!(all.len(), trees.len(), "one target per tree");
        }
        par_map(trees, |i, (tree, driver_width)| {
            let target_fs = match target {
                BatchTarget::AbsoluteFs(fs) => *fs,
                BatchTarget::TauMinMultiple(mult) => {
                    mult * self.tree_tau_min(tree, *driver_width, config)
                }
                BatchTarget::PerNetFs(all) => all[i],
            };
            self.solve_tree(tree, *driver_width, target_fs, config)
        })
    }

    /// [`Engine::solve_tree_batch`] with a per-tree buffer-legality
    /// mask: each entry is `(tree, driver width, allowed)` where
    /// `allowed` follows [`Engine::solve_tree_masked`]'s conventions
    /// (`None` = unmasked; aligned to the tree's original indexing).
    ///
    /// The output is input-ordered and deterministic: entry `i` is
    /// exactly what `self.solve_tree_masked(..)` returns for that
    /// entry, regardless of thread interleaving.
    /// [`BatchTarget::TauMinMultiple`] resolves against each tree's
    /// cached **masked** `τ_min` ([`Engine::tree_tau_min_masked`]), so
    /// relative targets stay achievable under the mask.
    ///
    /// # Panics
    ///
    /// Panics when a [`BatchTarget::PerNetFs`] list length differs from
    /// `trees.len()`.
    #[allow(clippy::type_complexity)]
    pub fn solve_tree_batch_masked(
        &self,
        trees: &[(RcTree, f64, Option<Vec<bool>>)],
        target: &BatchTarget,
        config: &TreeRipConfig,
    ) -> Vec<Result<TreeRipOutcome, RipError>> {
        if let BatchTarget::PerNetFs(all) = target {
            assert_eq!(all.len(), trees.len(), "one target per tree");
        }
        par_map(trees, |i, (tree, driver_width, allowed)| {
            let allowed = allowed.as_deref();
            let target_fs = match target {
                BatchTarget::AbsoluteFs(fs) => *fs,
                BatchTarget::TauMinMultiple(mult) => {
                    mult * self.tree_tau_min_masked(tree, *driver_width, config, allowed)?
                }
                BatchTarget::PerNetFs(all) => all[i],
            };
            self.solve_tree_masked(tree, *driver_width, target_fs, config, allowed)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetGenerator, RandomNetConfig, RandomTreeConfig, TreeNetGenerator};

    fn engine() -> Engine {
        Engine::paper(Technology::generic_180nm())
    }

    fn nets(seed: u64, count: usize) -> Vec<TwoPinNet> {
        NetGenerator::suite(RandomNetConfig::default(), seed, count).unwrap()
    }

    fn trees(seed: u64, count: usize) -> Vec<(RcTree, f64)> {
        let device = *Technology::generic_180nm().device();
        TreeNetGenerator::suite(RandomTreeConfig::default(), seed, count)
            .unwrap()
            .iter()
            .map(|net| (RcTree::from_tree_net(net, &device), net.driver_width()))
            .collect()
    }

    #[test]
    fn engine_solve_matches_free_function() {
        let engine = engine();
        let nets = nets(11, 3);
        for net in &nets {
            let target = engine.tau_min(net) * 1.4;
            let from_engine = engine.solve(net, target).unwrap();
            let from_free = crate::rip(net, engine.technology(), target, engine.config()).unwrap();
            assert_eq!(from_engine.solution, from_free.solution);
            assert_eq!(from_engine.coarse, from_free.coarse);
            assert_eq!(from_engine.library, from_free.library);
            assert_eq!(from_engine.candidate_count, from_free.candidate_count);
        }
    }

    #[test]
    fn batch_is_input_ordered_and_deterministic() {
        let engine = engine();
        let nets = nets(23, 6);
        let a = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.35));
        let b = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.35));
        assert_eq!(a.len(), nets.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_ref().unwrap().solution, y.as_ref().unwrap().solution);
        }
    }

    #[test]
    fn second_identical_batch_hits_the_cache() {
        let engine = engine();
        let nets = nets(5, 4);
        let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
        let first = engine.stats();
        assert!(first.misses() > 0);
        let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
        let second = engine.stats();
        assert_eq!(
            second.misses(),
            first.misses(),
            "a second identical batch must not recompute anything"
        );
        assert!(second.hits() > first.hits());
        assert_eq!(second.nets_solved, 2 * nets.len() as u64);
    }

    #[test]
    fn per_net_targets_are_respected() {
        let engine = engine();
        let nets = nets(31, 2);
        let targets: Vec<f64> = nets.iter().map(|n| engine.tau_min(n) * 1.5).collect();
        let outs = engine.solve_batch(&nets, &BatchTarget::PerNetFs(targets.clone()));
        for (out, &t) in outs.iter().zip(&targets) {
            assert!(out.as_ref().unwrap().solution.meets(t));
        }
    }

    #[test]
    #[should_panic(expected = "one target per net")]
    fn per_net_target_length_mismatch_panics() {
        let engine = engine();
        let nets = nets(1, 2);
        let _ = engine.solve_batch(&nets, &BatchTarget::PerNetFs(vec![1.0e6]));
    }

    #[test]
    fn infeasible_nets_error_without_poisoning_the_batch() {
        let engine = engine();
        let nets = nets(3, 3);
        // Net 1 gets an impossible absolute target; the others are fine.
        let targets = vec![
            engine.tau_min(&nets[0]) * 1.4,
            1.0,
            engine.tau_min(&nets[2]) * 1.4,
        ];
        let outs = engine.solve_batch(&nets, &BatchTarget::PerNetFs(targets));
        assert!(outs[0].is_ok());
        assert!(matches!(outs[1], Err(RipError::Infeasible { .. })));
        assert!(outs[2].is_ok());
    }

    #[test]
    fn compare_batch_summarizes_savings() {
        let engine = engine();
        let nets = nets(2005, 3);
        let (rows, summary) = engine
            .compare_batch(
                &nets,
                &BatchTarget::TauMinMultiple(1.5),
                &BaselineConfig::paper_table1(20.0),
            )
            .unwrap();
        assert_eq!(rows.len(), nets.len());
        assert_eq!(summary.compared + summary.baseline_violations, nets.len());
    }

    #[test]
    fn cache_cap_evicts_lru_and_rebuilds_identically() {
        let engine = engine();
        engine.set_cache_cap(2);
        assert_eq!(engine.cache_cap(), 2);
        let nets = nets(77, 4);
        for net in &nets {
            let _ = engine.grid(net, 200.0);
        }
        let stats = engine.stats();
        assert_eq!(stats.grid_misses, 4);
        assert_eq!(
            stats.evictions, 2,
            "the two least recently used grids must have been dropped"
        );
        assert!(engine.grids.lock().unwrap().len() <= 2);
        // The newest entries survived...
        let _ = engine.grid(&nets[3], 200.0);
        assert_eq!(engine.stats().grid_hits, 1);
        // ...and an evicted geometry is rebuilt bit-identically.
        let again = engine.grid(&nets[0], 200.0);
        let fresh = CandidateSet::uniform(&nets[0], 200.0);
        assert_eq!(again.positions(), fresh.positions());
        assert_eq!(engine.stats().evictions, 3);
    }

    #[test]
    fn lru_hit_promotes_and_changes_the_eviction_victim() {
        // Under FIFO, touching nets[0] before inserting a fourth grid
        // would not save it; under LRU it must survive while nets[1]
        // (the actual least recently used) is evicted.
        let engine = engine();
        engine.set_cache_cap(3);
        let nets = nets(41, 4);
        for net in &nets[..3] {
            let _ = engine.grid(net, 200.0);
        }
        // Promote the oldest entry...
        let _ = engine.grid(&nets[0], 200.0);
        let stats = engine.stats();
        assert_eq!(stats.grid_hits, 1);
        assert_eq!(
            stats.promotions, 1,
            "the hit must have moved nets[0] to most-recently-used"
        );
        // ...then overflow the cap: nets[1] is now the LRU victim.
        let _ = engine.grid(&nets[3], 200.0);
        assert_eq!(engine.stats().evictions, 1);
        let before = engine.stats();
        let _ = engine.grid(&nets[0], 200.0); // still cached
        let _ = engine.grid(&nets[2], 200.0); // still cached
        assert_eq!(engine.stats().grid_hits, before.grid_hits + 2);
        assert_eq!(engine.stats().grid_misses, before.grid_misses);
        let _ = engine.grid(&nets[1], 200.0); // evicted: a fresh miss
        assert_eq!(engine.stats().grid_misses, before.grid_misses + 1);
    }

    #[test]
    fn lru_recency_order_tracks_hits_and_inserts() {
        let mut cache: LruCache<u32> = LruCache::default();
        let evictions = AtomicU64::new(0);
        let promotions = AtomicU64::new(0);
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            cache.finish(key.to_string(), i as u32, 0, &evictions, &promotions);
        }
        assert_eq!(cache.recency_order(), ["c", "b", "a"]);
        // A hit promotes; a hit on the head is free.
        assert_eq!(cache.get_promote("a", &promotions), Some(0));
        assert_eq!(cache.recency_order(), ["a", "c", "b"]);
        assert_eq!(promotions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.get_promote("a", &promotions), Some(0));
        assert_eq!(promotions.load(Ordering::Relaxed), 1, "head hit is free");
        // Capacity is respected and the tail ("b") is the victim.
        cache.finish("d".to_string(), 3, 3, &evictions, &promotions);
        assert_eq!(cache.recency_order(), ["d", "a", "c"]);
        assert_eq!(evictions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.get_promote("b", &promotions), None);
        // A lost insert race is a hit that promotes the survivor.
        let (v, miss) = cache.finish("c".to_string(), 99, 3, &evictions, &promotions);
        assert_eq!((v, miss), (2, false), "existing value wins the race");
        assert_eq!(cache.recency_order(), ["c", "d", "a"]);
        // Freed slots are recycled: len never exceeds the cap.
        for key in ["e", "f", "g"] {
            cache.finish(key.to_string(), 7, 3, &evictions, &promotions);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(evictions.load(Ordering::Relaxed), 4);
        assert_eq!(cache.recency_order(), ["g", "f", "e"]);
    }

    #[test]
    fn lru_eviction_drops_the_value_immediately() {
        // The cap bounds *memory*, so an evicted value must be dropped
        // at eviction time — not parked in the slab until the free slot
        // is reused by some later insert.
        let mut cache: LruCache<Arc<u32>> = LruCache::default();
        let evictions = AtomicU64::new(0);
        let promotions = AtomicU64::new(0);
        let first = Arc::new(7u32);
        let weak = Arc::downgrade(&first);
        cache.finish("a".to_string(), first, 1, &evictions, &promotions);
        assert!(weak.upgrade().is_some());
        cache.finish("b".to_string(), Arc::new(8), 1, &evictions, &promotions);
        assert_eq!(evictions.load(Ordering::Relaxed), 1);
        assert!(
            weak.upgrade().is_none(),
            "the evicted Arc must be dropped by the eviction itself"
        );
    }

    #[test]
    fn value_cache_cap_bounds_tau_min_and_library_maps() {
        let engine = engine();
        engine.set_value_cache_cap(2);
        assert_eq!(engine.value_cache_cap(), 2);
        let nets = nets(9, 4);
        for net in &nets {
            let _ = engine.tau_min(net);
        }
        assert_eq!(engine.stats().tau_min_misses, 4);
        assert!(engine.tau_mins.lock().unwrap().len() <= 2);
        assert!(engine.stats().evictions >= 2);
        // An evicted τ_min is recomputed to exactly the same value.
        let again = engine.tau_min(&nets[0]);
        assert_eq!(
            again.to_bits(),
            tmin::tau_min_paper(&nets[0], engine.tech.device()).to_bits()
        );
        // The library map obeys the same bound (engine solves populate it).
        let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
        assert!(engine.libraries.lock().unwrap().len() <= 2);
    }

    #[test]
    fn scratch_cap_bounds_the_pools() {
        let engine = engine();
        engine.set_scratch_cap(1);
        assert_eq!(engine.scratch_cap(), 1);
        let nets = nets(13, 3);
        let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
        assert!(engine.scratches.lock().unwrap().len() <= 1);
    }

    #[test]
    fn tree_batch_is_deterministic_and_reuses_the_session_caches() {
        let engine = engine();
        let config = crate::TreeRipConfig::paper();
        let trees = trees(5, 3);
        let target = BatchTarget::TauMinMultiple(1.4);
        let a = engine.solve_tree_batch(&trees, &target, &config);
        let first = engine.stats();
        assert!(first.tree_grid_misses > 0);
        let b = engine.solve_tree_batch(&trees, &target, &config);
        let second = engine.stats();
        assert_eq!(a.len(), trees.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                format!("{:?}", x.as_ref().unwrap().solution),
                format!("{:?}", y.as_ref().unwrap().solution),
                "tree {i}: repeated batch diverged"
            );
        }
        assert_eq!(
            second.misses(),
            first.misses(),
            "a second identical tree batch must not recompute anything"
        );
        assert!(second.tree_grid_hits > first.tree_grid_hits);
        assert_eq!(second.trees_solved, 2 * trees.len() as u64);
        // Entry i is exactly the one-at-a-time solve.
        let (tree, driver) = &trees[1];
        let solo = engine
            .solve_tree(
                tree,
                *driver,
                1.4 * engine.tree_tau_min(tree, *driver, &config),
                &config,
            )
            .unwrap();
        assert_eq!(
            format!("{:?}", solo.solution),
            format!("{:?}", b[1].as_ref().unwrap().solution)
        );
    }

    #[test]
    fn trivial_masks_are_byte_identical_to_unmasked_solves() {
        let engine = engine();
        let config = crate::TreeRipConfig::paper();
        let (tree, driver) = trees(5, 1).remove(0);
        let target = 1.4 * engine.tree_tau_min(&tree, driver, &config);
        let unmasked = engine.solve_tree(&tree, driver, target, &config).unwrap();
        // All-true mask (and one that only blocks the ignored root
        // entry) normalize away entirely: same cache keys, same bytes.
        let before = engine.stats();
        for mask in [vec![true; tree.len()], {
            let mut m = vec![true; tree.len()];
            m[0] = false;
            m
        }] {
            let masked = engine
                .solve_tree_masked(&tree, driver, target, &config, Some(&mask))
                .unwrap();
            assert_eq!(
                format!("{:?}", masked.solution),
                format!("{:?}", unmasked.solution)
            );
            assert_eq!(
                engine
                    .tree_tau_min_masked(&tree, driver, &config, Some(&mask))
                    .unwrap()
                    .to_bits(),
                engine.tree_tau_min(&tree, driver, &config).to_bits()
            );
        }
        let after = engine.stats();
        assert_eq!(
            after.misses(),
            before.misses(),
            "trivially-masked solves must be served from the unmasked cache"
        );
    }

    #[test]
    fn masked_and_unmasked_subdivisions_never_alias() {
        let engine = engine();
        let config = crate::TreeRipConfig::paper();
        let (tree, driver) = trees(9, 1).remove(0);
        let mut mask = vec![true; tree.len()];
        mask[1] = false;
        let target = 1.5 * engine.tree_tau_min(&tree, driver, &config);
        let _ = engine.solve_tree(&tree, driver, target, &config).unwrap();
        let misses_unmasked = engine.stats().tree_grid_misses;
        // The masked solve must build its own (projected) subdivisions…
        let masked_target = 1.5
            * engine
                .tree_tau_min_masked(&tree, driver, &config, Some(&mask))
                .unwrap();
        let _ = engine
            .solve_tree_masked(&tree, driver, masked_target, &config, Some(&mask))
            .unwrap();
        let misses_masked = engine.stats().tree_grid_misses;
        assert!(
            misses_masked > misses_unmasked,
            "a real mask must not be served from the unmasked subdivision entries"
        );
        // …and a repeat of both is fully warm.
        let _ = engine.solve_tree(&tree, driver, target, &config).unwrap();
        let _ = engine
            .solve_tree_masked(&tree, driver, masked_target, &config, Some(&mask))
            .unwrap();
        assert_eq!(engine.stats().tree_grid_misses, misses_masked);
    }

    #[test]
    fn bad_masks_are_typed_errors_and_all_blocked_is_infeasible_or_bufferless() {
        let engine = engine();
        let config = crate::TreeRipConfig::paper();
        let (tree, driver) = trees(13, 1).remove(0);
        // Misaligned mask: typed error from every masked entry point.
        let short = vec![true; tree.len() - 1];
        assert!(matches!(
            engine.solve_tree_masked(&tree, driver, 1.0e6, &config, Some(&short)),
            Err(RipError::Dp(rip_dp::DpError::BadAllowedMask { .. }))
        ));
        assert!(matches!(
            engine.tree_tau_min_masked(&tree, driver, &config, Some(&short)),
            Err(RipError::Dp(rip_dp::DpError::BadAllowedMask { .. }))
        ));
        // An all-blocked mask degrades to bufferless buffering: a tight
        // target is a typed infeasibility (never a panic)…
        let blocked = vec![false; tree.len()];
        let unbuffered = engine
            .tree_tau_min_masked(&tree, driver, &config, Some(&blocked))
            .unwrap();
        let err = engine
            .solve_tree_masked(&tree, driver, unbuffered * 0.5, &config, Some(&blocked))
            .unwrap_err();
        assert!(matches!(err, RipError::Infeasible { .. }));
        // …while a loose target solves without placing any buffer.
        let out = engine
            .solve_tree_masked(&tree, driver, unbuffered * 2.0, &config, Some(&blocked))
            .unwrap();
        assert!(out.solution.buffer_widths.iter().all(Option::is_none));
        assert_eq!(out.solution.total_width, 0.0);
    }

    #[test]
    fn masked_batch_matches_sequential_masked_solves() {
        let engine = engine();
        let config = crate::TreeRipConfig::paper();
        let jobs: Vec<(RcTree, f64, Option<Vec<bool>>)> = {
            let device = *Technology::generic_180nm().device();
            rip_net::TreeNetGenerator::suite(rip_net::RandomTreeConfig::compact(), 21, 3)
                .unwrap()
                .iter()
                .map(|net| {
                    (
                        RcTree::from_tree_net(net, &device),
                        net.driver_width(),
                        Some(net.allowed_mask()),
                    )
                })
                .collect()
        };
        let target = BatchTarget::TauMinMultiple(1.4);
        let batch = engine.solve_tree_batch_masked(&jobs, &target, &config);
        for (i, ((tree, driver, allowed), out)) in jobs.iter().zip(&batch).enumerate() {
            let allowed = allowed.as_deref();
            let solo_target = 1.4
                * engine
                    .tree_tau_min_masked(tree, *driver, &config, allowed)
                    .unwrap();
            let solo = engine
                .solve_tree_masked(tree, *driver, solo_target, &config, allowed)
                .unwrap();
            assert_eq!(
                format!("{:?}", solo.solution),
                format!("{:?}", out.as_ref().unwrap().solution),
                "tree {i}: masked batch diverged from the sequential masked solve"
            );
        }
    }

    #[test]
    fn reset_stats_rezeroes_every_counter() {
        let engine = engine();
        let nets = nets(17, 2);
        let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
        let before = engine.stats();
        assert!(before.misses() > 0 && before.nets_solved == 2);
        engine.reset_stats();
        assert_eq!(engine.stats(), EngineStats::default());
        // The caches themselves survive a stats reset: a repeated batch
        // is all hits, no misses.
        let _ = engine.solve_batch(&nets, &BatchTarget::TauMinMultiple(1.4));
        let after = engine.stats();
        assert_eq!(after.misses(), 0, "reset must not drop cache contents");
        assert!(after.hits() > 0);
    }

    #[test]
    fn config_hash_distinguishes_configurations() {
        let a = Engine::paper(Technology::generic_180nm());
        let mut config = RipConfig::paper();
        config.fine.window_half_slots = 7;
        let b = Engine::new(Technology::generic_180nm(), config);
        assert_ne!(a.config_hash(), b.config_hash());
        let c = Engine::paper(Technology::generic_180nm());
        assert_eq!(a.config_hash(), c.config_hash());
    }

    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineStats>();
        assert_send_sync::<BatchTarget>();
    }
}
