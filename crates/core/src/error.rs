//! Error type for the RIP pipeline.

use rip_dp::DpError;
use rip_refine::RefineError;
use rip_tech::TechError;
use std::error::Error;
use std::fmt;

/// Errors produced by the RIP pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RipError {
    /// A DP stage failed (invalid candidates/target).
    Dp(DpError),
    /// The analytical refinement failed.
    Refine(RefineError),
    /// Library construction failed.
    Tech(TechError),
    /// No stage could meet the timing target.
    Infeasible {
        /// The requested target, fs.
        target_fs: f64,
        /// The best delay any stage achieved, fs.
        achievable_fs: f64,
    },
}

impl fmt::Display for RipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RipError::Dp(e) => write!(f, "DP stage failed: {e}"),
            RipError::Refine(e) => write!(f, "refinement stage failed: {e}"),
            RipError::Tech(e) => write!(f, "library construction failed: {e}"),
            RipError::Infeasible { target_fs, achievable_fs } => write!(
                f,
                "no RIP stage met the target {target_fs} fs (best achieved: {achievable_fs} fs)"
            ),
        }
    }
}

impl Error for RipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RipError::Dp(e) => Some(e),
            RipError::Refine(e) => Some(e),
            RipError::Tech(e) => Some(e),
            RipError::Infeasible { .. } => None,
        }
    }
}

impl From<DpError> for RipError {
    fn from(e: DpError) -> Self {
        RipError::Dp(e)
    }
}

impl From<RefineError> for RipError {
    fn from(e: RefineError) -> Self {
        RipError::Refine(e)
    }
}

impl From<TechError> for RipError {
    fn from(e: TechError) -> Self {
        RipError::Tech(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: RipError = DpError::InvalidTarget { target_fs: -1.0 }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("DP stage"));
        let e: RipError = RefineError::InvalidTarget { target_fs: -1.0 }.into();
        assert!(matches!(e, RipError::Refine(_)));
        let e: RipError = TechError::Empty { what: "library" }.into();
        assert!(matches!(e, RipError::Tech(_)));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<RipError>();
    }
}
