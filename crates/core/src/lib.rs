//! # rip-core — RIP: An Efficient Hybrid Repeater Insertion Scheme for Low Power
//!
//! A from-scratch Rust reproduction of Liu, Peng & Papaefthymiou,
//! DATE 2005. Given a routed multi-layer two-pin interconnect with
//! forbidden zones and a timing budget, [`rip`] chooses the number,
//! widths and locations of repeaters so that the Elmore delay meets the
//! budget and the repeater power — equivalently the total repeater width
//! (Eq. 4) — is minimized.
//!
//! The hybrid pipeline (Fig. 6 of the paper):
//!
//! 1. coarse power-mode DP seeds the solution shape;
//! 2. algorithm REFINE (continuous Lagrangian widths + derivative-driven
//!    movement) polishes it analytically;
//! 3. the refined widths/locations are **rounded into a tiny
//!    design-specific library and candidate set**;
//! 4. a final power-mode DP over that tiny space picks the discrete
//!    optimum.
//!
//! Compared to the conventional fine-granularity DP baseline
//! ([`baseline_dp`], Lillis et al. \[14\]), this achieves comparable or
//! better power at a fraction of the runtime — the tradeoff reproduced by
//! this workspace's Table 1 / Table 2 / Figure 7 experiments.
//!
//! # Quickstart
//!
//! ```
//! use rip_core::{rip, tau_min_paper, RipConfig};
//! use rip_net::{NetBuilder, Segment};
//! use rip_tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::generic_180nm();
//! let net = NetBuilder::new()
//!     .segment(Segment::new(6000.0, 0.08, 0.20)) // metal4 piece
//!     .segment(Segment::new(6000.0, 0.06, 0.18)) // metal5 piece
//!     .forbidden_zone(4000.0, 7000.0)?            // a macro in the way
//!     .build()?;
//!
//! let t_min = tau_min_paper(&net, tech.device());
//! let outcome = rip(&net, &tech, 1.3 * t_min, &RipConfig::paper())?;
//!
//! assert!(outcome.solution.delay_fs <= 1.3 * t_min);
//! for r in outcome.solution.assignment.repeaters() {
//!     println!("repeater: {:.0} um, width {:.0} u", r.position, r.width);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Batch solving
//!
//! [`rip`] is a one-shot convenience. Anything that solves more than one
//! net — target sweeps, experiment grids, serving workloads — should hold
//! an [`Engine`] session instead: it caches per-technology precomputation
//! (candidate grids, `τ_min`, synthesized fine libraries) across calls
//! and runs batches in parallel over all cores with deterministic,
//! input-ordered results ([`Engine::solve_batch`]). Multi-sink trees get
//! the same treatment via [`Engine::solve_tree_batch`] (cached
//! per-topology subdivisions, pooled tree scratch, cached tree `τ_min`).
//!
//! The re-exported substrate crates ([`rip_tech`], [`rip_net`],
//! [`rip_delay`], [`rip_dp`], [`rip_refine`]) are available under
//! [`prelude`] for one-line imports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod compare;
mod config;
mod engine;
mod error;
mod pipeline;
mod tmin;
mod tree_pipeline;

pub use baseline::{baseline_dp, BaselineConfig};
pub use compare::{power_saving_percent, summarize_savings, SavingsSummary};
pub use config::{CoarseDpConfig, FineDpConfig, RipConfig};
pub use engine::{net_shard_key, tree_shard_key, BatchTarget, Engine, EngineStats};
pub use error::RipError;
pub use pipeline::{rip, RipOutcome, RipRuntime};
pub use rip_dp::{DpError, TreeSolution};
pub use tmin::{tau_min, tau_min_paper};
pub use tree_pipeline::{tree_rip, tree_rip_masked, TreeRipConfig, TreeRipOutcome};

/// Convenient bulk imports for applications.
///
/// ```
/// use rip_core::prelude::*;
///
/// let tech = Technology::generic_180nm();
/// let _ = tech.device();
/// ```
pub mod prelude {
    pub use crate::{
        baseline_dp, power_saving_percent, rip, tau_min, tau_min_paper, tree_rip, tree_rip_masked,
        BaselineConfig, BatchTarget, Engine, EngineStats, RipConfig, RipError, RipOutcome,
        TreeRipConfig,
    };
    pub use rip_delay::{evaluate, Repeater, RepeaterAssignment};
    pub use rip_dp::{solve_min_delay, solve_min_power, CandidateSet, DpSolution};
    pub use rip_net::{
        ForbiddenZone, NetBuilder, NetGenerator, RandomNetConfig, Segment, TwoPinNet,
    };
    pub use rip_refine::{refine, RefineConfig, RefineOutcome};
    pub use rip_tech::{RepeaterLibrary, Technology};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RipConfig>();
        assert_send_sync::<RipOutcome>();
        assert_send_sync::<RipError>();
        assert_send_sync::<BaselineConfig>();
        assert_send_sync::<SavingsSummary>();
    }
}
