//! Algorithm RIP (Fig. 6 of the paper): the hybrid pipeline.
//!
//! 1. **Coarse DP** — Lillis-style power DP with a 5-entry coarse library
//!    on a 200 µm grid: cheap, and good enough to seed the analytics.
//! 2. **REFINE** — continuous Lagrangian width solving + derivative
//!    movement from the coarse seed.
//! 3. **Synthesis** — round the refined widths to the layout grid (10u)
//!    into a tiny design-specific library `B`; collect candidate
//!    locations `S` as ±10 slots at 50 µm around each refined position.
//! 4. **Fine DP** — power DP over `(B, S)`: a few widths × a few dozen
//!    positions, so it runs fast regardless of how fine the underlying
//!    width/location grids are.

use crate::config::RipConfig;
use crate::error::RipError;
use rip_dp::{solve_min_delay, solve_min_power, CandidateSet, DpError, DpSolution};
use rip_net::TwoPinNet;
use rip_refine::{refine, RefineError, RefineOutcome};
use rip_tech::{RepeaterLibrary, Technology};
use std::time::{Duration, Instant};

/// Wall-clock runtimes of the RIP stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RipRuntime {
    /// Stage 1: coarse DP.
    pub coarse: Duration,
    /// Stage 2: analytical refinement.
    pub refine: Duration,
    /// Stages 3–4: synthesis + fine DP.
    pub fine: Duration,
}

impl RipRuntime {
    /// Total pipeline runtime.
    pub fn total(&self) -> Duration {
        self.coarse + self.refine + self.fine
    }
}

/// Complete result of a RIP run, with per-stage diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct RipOutcome {
    /// The final solution (stage 4; falls back to the best earlier stage
    /// in the rare cases discussed in [`rip`]).
    pub solution: DpSolution,
    /// Stage 1 solution (coarse DP seed).
    pub coarse: DpSolution,
    /// Stage 2 outcome (continuous refinement), when repeaters exist.
    pub refined: Option<RefineOutcome>,
    /// The synthesized design-specific library `B` (stage 3).
    pub library: Option<RepeaterLibrary>,
    /// Size of the synthesized candidate set `S` (stage 3).
    pub candidate_count: usize,
    /// Per-stage wall-clock runtimes.
    pub runtime: RipRuntime,
}

/// Runs algorithm RIP (Fig. 6) on a two-pin net.
///
/// Robustness beyond the paper's pseudocode (each case is rare but real):
///
/// * if the coarse power DP cannot meet the target (coarse libraries lack
///   small widths, not large ones, so this happens only at extremely
///   tight targets), the coarse *min-delay* solution seeds REFINE
///   instead;
/// * if the refined solution has **zero** repeaters (very loose targets
///   where the bare wire meets timing), the empty assignment is already
///   power-optimal and stages 3–4 are skipped;
/// * if the fine DP cannot meet the target after width rounding, the
///   library is enriched upward ([`crate::FineDpConfig::enrich_steps`])
///   and retried; the coarse solution is the final fallback.
///
/// # Errors
///
/// * [`RipError::Infeasible`] when no stage can meet the target (the
///   target is below the net's achievable delay);
/// * [`RipError::Dp`] / [`RipError::Refine`] for invalid inputs
///   (non-positive target, illegal candidates).
///
/// # Examples
///
/// ```
/// use rip_core::{rip, RipConfig};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(12_000.0, 0.08, 0.2))
///     .build()?;
/// let outcome = rip(&net, &tech, 2.5e6, &RipConfig::paper())?;
/// assert!(outcome.solution.delay_fs <= 2.5e6);
/// println!("{} repeaters, total width {:.0}u",
///          outcome.solution.assignment.len(),
///          outcome.solution.total_width);
/// # Ok(())
/// # }
/// ```
pub fn rip(
    net: &TwoPinNet,
    tech: &Technology,
    target_fs: f64,
    config: &RipConfig,
) -> Result<RipOutcome, RipError> {
    let device = tech.device();
    let mut runtime = RipRuntime::default();

    // ---- Stage 1: coarse DP (Fig. 6, Line 1).
    let t0 = Instant::now();
    let coarse_cands = CandidateSet::uniform(net, config.coarse.candidate_step_um);
    let coarse = match solve_min_power(
        net,
        device,
        &config.coarse.library,
        &coarse_cands,
        target_fs,
    ) {
        Ok(sol) => sol,
        // Coarse library can't meet the target: seed REFINE from the
        // fastest coarse placement instead.
        Err(DpError::InfeasibleTarget { .. }) => {
            solve_min_delay(net, device, &config.coarse.library, &coarse_cands)
        }
        Err(e) => return Err(e.into()),
    };
    runtime.coarse = t0.elapsed();

    // ---- Stage 2: REFINE (Fig. 6, Line 2).
    let t1 = Instant::now();
    let refined = match refine(
        net,
        device,
        &coarse.assignment.positions(),
        target_fs,
        &config.refine,
    ) {
        Ok(out) => out,
        Err(RefineError::InfeasibleTarget { achievable_fs, .. }) => {
            return Err(RipError::Infeasible { target_fs, achievable_fs });
        }
        Err(e) => return Err(e.into()),
    };
    runtime.refine = t1.elapsed();

    // Degenerate loose-target case: no repeaters needed at all.
    if refined.positions.is_empty() {
        let t2 = Instant::now();
        let empty_cands = CandidateSet::from_positions(net, vec![])?;
        let solution =
            solve_min_power(net, device, &config.coarse.library, &empty_cands, target_fs)?;
        runtime.fine = t2.elapsed();
        return Ok(RipOutcome {
            solution,
            coarse,
            refined: Some(refined),
            library: None,
            candidate_count: 0,
            runtime,
        });
    }

    // ---- Stages 3-4 on the n-repeater branch.
    let t2 = Instant::now();
    let mut best = finish_from_refined(net, device, &refined, target_fs, config);

    // Extension (`FineDpConfig::try_fewer_repeaters`): REFINE cannot
    // change the repeater *count* it inherited from the coarse DP, and a
    // coarse library whose minimum width exceeds the loose-target optimum
    // systematically over-counts. Re-refine with one repeater dropped
    // (each of the up-to-3 narrowest tried — removal can strand the
    // survivors behind a forbidden zone, so a single heuristic pick is
    // not enough) and keep whichever branch the fine DP likes better.
    // Over-counting only happens in the small-repeater regime: when the
    // refined widths sit well above the coarse library's minimum, the
    // count was not forced by the library floor and dropping can only
    // lose. The gate keeps tight-target runs (big widths, big DP
    // frontiers) free of pointless extra branches.
    let mean_refined_width = refined.total_width / refined.widths.len().max(1) as f64;
    let small_width_regime =
        mean_refined_width < 1.5 * config.coarse.library.min_width();
    if config.fine.try_fewer_repeaters
        && refined.positions.len() >= 2
        && small_width_regime
    {
        let mut by_width: Vec<usize> = (0..refined.widths.len()).collect();
        by_width.sort_by(|&a, &b| {
            refined.widths[a]
                .partial_cmp(&refined.widths[b])
                .expect("finite widths")
        });
        for &drop in by_width.iter().take(3) {
            let mut fewer_positions = refined.positions.clone();
            fewer_positions.remove(drop);
            let Ok(fewer) = refine(net, device, &fewer_positions, target_fs, &config.refine)
            else {
                continue;
            };
            // The continuous width lower-bounds this branch's discrete
            // outcome (modulo one grid step); skip branches that cannot
            // beat the incumbent.
            if let Ok((incumbent, _, _)) = &best {
                if fewer.total_width
                    >= incumbent.total_width + config.fine.width_grid_u
                {
                    continue;
                }
            }
            let alt = finish_from_refined(net, device, &fewer, target_fs, config);
            let better = match (&best, &alt) {
                (Ok(b), Ok(a)) => a.0.total_width < b.0.total_width,
                (Err(_), Ok(_)) => true,
                _ => false,
            };
            if better {
                best = alt;
            }
        }
    }
    runtime.fine = t2.elapsed();

    let (solution, final_lib, candidate_count) = match best {
        Ok(parts) => parts,
        Err(achievable_fs) => {
            // Final fallback: the coarse solution, if it met the target.
            if coarse.meets(target_fs) {
                (coarse.clone(), config.coarse.library.clone(), 0)
            } else {
                return Err(RipError::Infeasible {
                    target_fs,
                    achievable_fs: achievable_fs.min(coarse.delay_fs),
                });
            }
        }
    };

    Ok(RipOutcome {
        solution,
        coarse,
        refined: Some(refined),
        library: Some(final_lib),
        candidate_count,
        runtime,
    })
}

/// Stages 3-4 for one refined branch: synthesize the design-specific
/// library `B` (rounded + neighbouring grid steps — see
/// [`crate::FineDpConfig::enrich_steps`]) and candidate set `S`, then run
/// the fine DP with an infeasibility retry on a further-enriched library.
///
/// Returns the minimum achievable delay on failure so the caller can
/// report how far off the target was.
fn finish_from_refined(
    net: &TwoPinNet,
    device: &rip_tech::RepeaterDevice,
    refined: &RefineOutcome,
    target_fs: f64,
    config: &RipConfig,
) -> Result<(DpSolution, RepeaterLibrary, usize), f64> {
    let grid = config.fine.width_grid_u;
    let rounded = RepeaterLibrary::from_refined_widths(refined.widths.iter().copied(), grid)
        .expect("refined widths are positive");
    let enriched = |steps: usize| -> RepeaterLibrary {
        let mut widths: Vec<f64> = Vec::new();
        for &w in rounded.widths() {
            widths.push(w);
            for k in 1..=steps {
                widths.push(w + grid * k as f64);
                let below = w - grid * k as f64;
                if below >= grid - 1e-9 {
                    widths.push(below);
                }
            }
        }
        RepeaterLibrary::from_widths(widths).expect("enriched widths are positive")
    };
    let cands = CandidateSet::windows(
        net,
        &refined.positions,
        config.fine.window_half_slots,
        config.fine.window_step_um,
    );
    let mut final_lib = enriched(config.fine.enrich_steps);
    let mut solution = solve_min_power(net, device, &final_lib, &cands, target_fs);
    if matches!(solution, Err(DpError::InfeasibleTarget { .. })) {
        // Infeasible after rounding: only *wider* fallbacks can help, so
        // the retry enriches upward only (keeps the library small - the
        // fine DP's cost is sensitive to |B| at tight targets).
        let mut widths: Vec<f64> = rounded.widths().to_vec();
        for &w in rounded.widths() {
            for k in 1..=(config.fine.enrich_steps.max(1) * 3) {
                widths.push(w + grid * k as f64);
            }
        }
        final_lib = RepeaterLibrary::from_widths(widths).expect("positive widths");
        solution = solve_min_power(net, device, &final_lib, &cands, target_fs);
    }
    match solution {
        Ok(sol) => Ok((sol, final_lib, cands.len())),
        Err(DpError::InfeasibleTarget { achievable_fs, .. }) => Err(achievable_fs),
        Err(e) => unreachable!("windowed candidates and targets are pre-validated: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmin::tau_min_paper;
    use rip_delay::evaluate;
    use rip_net::{NetBuilder, NetGenerator, RandomNetConfig, Segment};

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn long_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn rip_meets_target_and_matches_ground_truth() {
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let target = tmin * 1.3;
        let out = rip(&net, &tech, target, &RipConfig::paper()).unwrap();
        assert!(out.solution.meets(target));
        out.solution.assignment.validate_on(&net).unwrap();
        let timing = evaluate(&net, tech.device(), &out.solution.assignment);
        assert!((timing.total_delay - out.solution.delay_fs).abs() < 1e-6);
        assert!(out.refined.is_some());
        assert!(out.library.is_some());
        assert!(out.candidate_count > 0);
    }

    #[test]
    fn synthesized_library_is_small_and_on_grid() {
        // The essence of RIP: the fine DP sees a tiny design-specific
        // library (a handful of 10u-grid widths), not a full range sweep.
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let out = rip(&net, &tech, tmin * 1.4, &RipConfig::paper()).unwrap();
        let lib = out.library.unwrap();
        // A handful of distinct refined widths x (1 + 2*enrich_steps)
        // neighbours - still far smaller than a full-range sweep library.
        assert!(lib.len() <= 20, "library of {} widths", lib.len());
        for &w in lib.widths() {
            assert!((w / 10.0 - (w / 10.0).round()).abs() < 1e-9, "width {w} off-grid");
        }
    }

    #[test]
    fn rip_beats_or_ties_its_own_coarse_seed() {
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        for mult in [1.15, 1.4, 1.8] {
            let out = rip(&net, &tech, tmin * mult, &RipConfig::paper()).unwrap();
            if out.coarse.meets(tmin * mult) {
                assert!(
                    out.solution.total_width <= out.coarse.total_width + 1e-9,
                    "mult {mult}: final {} vs coarse {}",
                    out.solution.total_width,
                    out.coarse.total_width
                );
            }
        }
    }

    #[test]
    fn very_loose_target_returns_unbuffered() {
        let tech = tech();
        // A short net whose bare wire easily meets a huge target.
        let net = NetBuilder::new()
            .segment(Segment::new(1500.0, 0.08, 0.2))
            .build()
            .unwrap();
        let unbuffered =
            evaluate(&net, tech.device(), &rip_delay::RepeaterAssignment::empty())
                .total_delay;
        let out = rip(&net, &tech, unbuffered * 3.0, &RipConfig::paper()).unwrap();
        assert!(out.solution.assignment.is_empty());
        assert_eq!(out.solution.total_width, 0.0);
    }

    #[test]
    fn impossible_target_errors_with_achievable() {
        let tech = tech();
        let net = long_net();
        let err = rip(&net, &tech, 1.0, &RipConfig::paper()).unwrap_err();
        match err {
            RipError::Infeasible { achievable_fs, .. } => assert!(achievable_fs > 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tight_target_feasible_via_min_delay_seed() {
        // Target right at tau_min: the coarse power DP may fail, but the
        // pipeline must still deliver through the min-delay seeding path.
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let out = rip(&net, &tech, tmin * 1.02, &RipConfig::paper()).unwrap();
        assert!(out.solution.meets(tmin * 1.02));
    }

    #[test]
    fn zoned_nets_stay_legal_through_the_pipeline() {
        let tech = tech();
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 17).unwrap();
        for _ in 0..5 {
            let net = gen.generate();
            let tmin = tau_min_paper(&net, tech.device());
            let out = rip(&net, &tech, tmin * 1.3, &RipConfig::paper()).unwrap();
            out.solution.assignment.validate_on(&net).unwrap();
            assert!(out.solution.meets(tmin * 1.3));
        }
    }

    #[test]
    fn runtime_totals_add_up() {
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let out = rip(&net, &tech, tmin * 1.5, &RipConfig::paper()).unwrap();
        assert_eq!(
            out.runtime.total(),
            out.runtime.coarse + out.runtime.refine + out.runtime.fine
        );
    }
}
