//! Algorithm RIP (Fig. 6 of the paper): the hybrid pipeline.
//!
//! 1. **Coarse DP** — Lillis-style power DP with a 5-entry coarse library
//!    on a 200 µm grid: cheap, and good enough to seed the analytics.
//! 2. **REFINE** — continuous Lagrangian width solving + derivative
//!    movement from the coarse seed.
//! 3. **Synthesis** — round the refined widths to the layout grid (10u)
//!    into a tiny design-specific library `B`; collect candidate
//!    locations `S` as ±10 slots at 50 µm around each refined position.
//! 4. **Fine DP** — power DP over `(B, S)`: a few widths × a few dozen
//!    positions, so it runs fast regardless of how fine the underlying
//!    width/location grids are.
//!
//! The implementation lives in [`crate::Engine`]; the [`rip`] free
//! function here is a one-shot convenience wrapper over a fresh engine.
//! Multi-net workloads should construct an [`crate::Engine`] directly to
//! reuse its session caches.

use crate::config::RipConfig;
use crate::engine::Engine;
use crate::error::RipError;
use rip_dp::DpSolution;
use rip_net::TwoPinNet;
use rip_refine::RefineOutcome;
use rip_tech::{RepeaterLibrary, Technology};
use std::time::Duration;

/// Wall-clock runtimes of the RIP stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RipRuntime {
    /// Stage 1: coarse DP.
    pub coarse: Duration,
    /// Stage 2: analytical refinement.
    pub refine: Duration,
    /// Stages 3–4: synthesis + fine DP.
    pub fine: Duration,
}

impl RipRuntime {
    /// Total pipeline runtime.
    pub fn total(&self) -> Duration {
        self.coarse + self.refine + self.fine
    }
}

/// Complete result of a RIP run, with per-stage diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct RipOutcome {
    /// The final solution (stage 4; falls back to the best earlier stage
    /// in the rare cases discussed in [`rip`]).
    pub solution: DpSolution,
    /// Stage 1 solution (coarse DP seed).
    pub coarse: DpSolution,
    /// Stage 2 outcome (continuous refinement), when repeaters exist.
    pub refined: Option<RefineOutcome>,
    /// The synthesized design-specific library `B` (stage 3).
    pub library: Option<RepeaterLibrary>,
    /// Size of the synthesized candidate set `S` (stage 3).
    pub candidate_count: usize,
    /// Per-stage wall-clock runtimes.
    pub runtime: RipRuntime,
}

/// Runs algorithm RIP (Fig. 6) on a two-pin net.
///
/// Robustness beyond the paper's pseudocode (each case is rare but real):
///
/// * if the coarse power DP cannot meet the target (coarse libraries lack
///   small widths, not large ones, so this happens only at extremely
///   tight targets), the coarse *min-delay* solution seeds REFINE
///   instead;
/// * if the refined solution has **zero** repeaters (very loose targets
///   where the bare wire meets timing), the empty assignment is already
///   power-optimal and stages 3–4 are skipped;
/// * if the fine DP cannot meet the target after width rounding, the
///   library is enriched upward ([`crate::FineDpConfig::enrich_steps`])
///   and retried; the coarse solution is the final fallback.
///
/// # Errors
///
/// * [`RipError::Infeasible`] when no stage can meet the target (the
///   target is below the net's achievable delay);
/// * [`RipError::Dp`] / [`RipError::Refine`] for invalid inputs
///   (non-positive target, illegal candidates).
///
/// # Examples
///
/// ```
/// use rip_core::{rip, RipConfig};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(12_000.0, 0.08, 0.2))
///     .build()?;
/// let outcome = rip(&net, &tech, 2.5e6, &RipConfig::paper())?;
/// assert!(outcome.solution.delay_fs <= 2.5e6);
/// println!("{} repeaters, total width {:.0}u",
///          outcome.solution.assignment.len(),
///          outcome.solution.total_width);
/// # Ok(())
/// # }
/// ```
pub fn rip(
    net: &TwoPinNet,
    tech: &Technology,
    target_fs: f64,
    config: &RipConfig,
) -> Result<RipOutcome, RipError> {
    Engine::new(tech.clone(), config.clone()).solve(net, target_fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tmin::tau_min_paper;
    use rip_delay::evaluate;
    use rip_net::{NetBuilder, NetGenerator, RandomNetConfig, Segment};

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn long_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn rip_meets_target_and_matches_ground_truth() {
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let target = tmin * 1.3;
        let out = rip(&net, &tech, target, &RipConfig::paper()).unwrap();
        assert!(out.solution.meets(target));
        out.solution.assignment.validate_on(&net).unwrap();
        let timing = evaluate(&net, tech.device(), &out.solution.assignment);
        assert!((timing.total_delay - out.solution.delay_fs).abs() < 1e-6);
        assert!(out.refined.is_some());
        assert!(out.library.is_some());
        assert!(out.candidate_count > 0);
    }

    #[test]
    fn synthesized_library_is_small_and_on_grid() {
        // The essence of RIP: the fine DP sees a tiny design-specific
        // library (a handful of 10u-grid widths), not a full range sweep.
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let out = rip(&net, &tech, tmin * 1.4, &RipConfig::paper()).unwrap();
        let lib = out.library.unwrap();
        // A handful of distinct refined widths x (1 + 2*enrich_steps)
        // neighbours - still far smaller than a full-range sweep library.
        assert!(lib.len() <= 20, "library of {} widths", lib.len());
        for &w in lib.widths() {
            assert!(
                (w / 10.0 - (w / 10.0).round()).abs() < 1e-9,
                "width {w} off-grid"
            );
        }
    }

    #[test]
    fn rip_beats_or_ties_its_own_coarse_seed() {
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        for mult in [1.15, 1.4, 1.8] {
            let out = rip(&net, &tech, tmin * mult, &RipConfig::paper()).unwrap();
            if out.coarse.meets(tmin * mult) {
                assert!(
                    out.solution.total_width <= out.coarse.total_width + 1e-9,
                    "mult {mult}: final {} vs coarse {}",
                    out.solution.total_width,
                    out.coarse.total_width
                );
            }
        }
    }

    #[test]
    fn very_loose_target_returns_unbuffered() {
        let tech = tech();
        // A short net whose bare wire easily meets a huge target.
        let net = NetBuilder::new()
            .segment(Segment::new(1500.0, 0.08, 0.2))
            .build()
            .unwrap();
        let unbuffered =
            evaluate(&net, tech.device(), &rip_delay::RepeaterAssignment::empty()).total_delay;
        let out = rip(&net, &tech, unbuffered * 3.0, &RipConfig::paper()).unwrap();
        assert!(out.solution.assignment.is_empty());
        assert_eq!(out.solution.total_width, 0.0);
    }

    #[test]
    fn impossible_target_errors_with_achievable() {
        let tech = tech();
        let net = long_net();
        let err = rip(&net, &tech, 1.0, &RipConfig::paper()).unwrap_err();
        match err {
            RipError::Infeasible { achievable_fs, .. } => assert!(achievable_fs > 1.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tight_target_feasible_via_min_delay_seed() {
        // Target right at tau_min: the coarse power DP may fail, but the
        // pipeline must still deliver through the min-delay seeding path.
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let out = rip(&net, &tech, tmin * 1.02, &RipConfig::paper()).unwrap();
        assert!(out.solution.meets(tmin * 1.02));
    }

    #[test]
    fn zoned_nets_stay_legal_through_the_pipeline() {
        let tech = tech();
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 17).unwrap();
        for _ in 0..5 {
            let net = gen.generate();
            let tmin = tau_min_paper(&net, tech.device());
            let out = rip(&net, &tech, tmin * 1.3, &RipConfig::paper()).unwrap();
            out.solution.assignment.validate_on(&net).unwrap();
            assert!(out.solution.meets(tmin * 1.3));
        }
    }

    #[test]
    fn runtime_totals_add_up() {
        let tech = tech();
        let net = long_net();
        let tmin = tau_min_paper(&net, tech.device());
        let out = rip(&net, &tech, tmin * 1.5, &RipConfig::paper()).unwrap();
        assert_eq!(
            out.runtime.total(),
            out.runtime.coarse + out.runtime.refine + out.runtime.fine
        );
    }
}
