//! Minimum achievable delay `τ_min` of a net.
//!
//! The paper's experiments sweep timing targets from `1.05·τ_min` to
//! `2.05·τ_min`, where "`τ_min` is the minimum delay of the net"
//! (Section 6). We compute it with the min-delay DP over a fine library —
//! min-delay solutions are insensitive to width granularity (the paper's
//! observation [9]/[2]), so this is a robust anchor for both RIP and the
//! baselines.

use rip_dp::{solve_min_delay, CandidateSet};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};

/// Minimum Elmore delay achievable with the given library and candidate
/// step, fs.
pub fn tau_min(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidate_step_um: f64,
) -> f64 {
    let cands = CandidateSet::uniform(net, candidate_step_um);
    solve_min_delay(net, device, library, &cands).delay_fs
}

/// `τ_min` under the paper's experimental setup: width range (10u, 400u)
/// at 10u granularity, 200 µm candidate grid.
pub fn tau_min_paper(net: &TwoPinNet, device: &RepeaterDevice) -> f64 {
    let library =
        RepeaterLibrary::range_step(10.0, 400.0, 10.0).expect("paper library constants are valid");
    tau_min(net, device, &library, 200.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_delay::{evaluate, RepeaterAssignment};
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(6000.0, 0.08, 0.2))
            .segment(Segment::new(6000.0, 0.06, 0.18))
            .build()
            .unwrap()
    }

    #[test]
    fn tau_min_is_below_unbuffered_delay() {
        let tech = Technology::generic_180nm();
        let net = net();
        let tmin = tau_min_paper(&net, tech.device());
        let unbuffered = evaluate(&net, tech.device(), &RepeaterAssignment::empty()).total_delay;
        assert!(tmin < unbuffered);
        assert!(tmin > 0.0);
    }

    #[test]
    fn tau_min_improves_with_finer_grid() {
        let tech = Technology::generic_180nm();
        let net = net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let coarse = tau_min(&net, tech.device(), &lib, 400.0);
        let fine = tau_min(&net, tech.device(), &lib, 200.0); // superset grid
        assert!(fine <= coarse + 1e-6);
    }

    #[test]
    fn tau_min_insensitive_to_width_granularity() {
        // The claim the paper builds on: delay-optimal solutions barely
        // care about width granularity (unlike power-optimal ones).
        let tech = Technology::generic_180nm();
        let net = net();
        let fine_lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let coarse_lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let fine = tau_min(&net, tech.device(), &fine_lib, 200.0);
        let coarse = tau_min(&net, tech.device(), &coarse_lib, 200.0);
        assert!(
            (coarse - fine) / fine < 0.02,
            "width granularity moved tau_min by {:.2}%",
            (coarse - fine) / fine * 100.0
        );
    }
}
