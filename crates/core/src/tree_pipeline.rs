//! RIP for interconnect trees — the extension announced in the paper's
//! conclusion ("we are currently extending our hybrid scheme to the
//! design of low-power interconnect trees").
//!
//! The chain pipeline's four stages map onto trees as follows:
//!
//! 1. **Coarse tree DP** — candidate buffer sites from a coarse edge
//!    subdivision ([`rip_delay::RcTree::subdivided`]), coarse library;
//! 2. **Analytical width trim** — continuous per-buffer width
//!    minimization at fixed sites ([`rip_refine::trim_tree_widths`]),
//!    playing REFINE's width-solve role (location movement on trees is
//!    delegated to stage 4's windowed sites, consistent with RIP's
//!    philosophy of letting the DP handle discreteness);
//! 3. **Synthesis** — trimmed widths rounded to the layout grid into a
//!    tiny library `B`; candidate sites restricted to fine-subdivision
//!    nodes within a path-distance window of the chosen buffers;
//! 4. **Fine tree DP** over `(B, windowed sites)`.
//!
//! The implementation lives in [`crate::Engine::solve_tree`]; the
//! [`tree_rip`] free function here is a one-shot convenience wrapper over
//! a fresh engine.

use crate::config::RipConfig;
use crate::engine::Engine;
use crate::error::RipError;
use rip_delay::RcTree;
use rip_dp::TreeSolution;
use rip_refine::TreeTrimConfig;
use rip_tech::{RepeaterLibrary, Technology};

use crate::pipeline::RipRuntime;

/// Configuration of the tree pipeline.
///
/// Reuses the chain [`RipConfig`] knobs where they carry over (coarse
/// library, width grid, enrichment, window width) and adds the
/// tree-specific subdivision steps.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRipConfig {
    /// Chain-pipeline knobs reused for trees.
    pub base: RipConfig,
    /// Coarse candidate-site spacing along edges, µm (stage 1; the
    /// analogue of the chain's 200 µm grid).
    pub coarse_step_um: f64,
    /// Fine candidate-site spacing, µm (stage 4; the analogue of the
    /// chain's 50 µm windows).
    pub fine_step_um: f64,
    /// Width trimmer settings (stage 2).
    pub trim: TreeTrimConfig,
}

impl Default for TreeRipConfig {
    fn default() -> Self {
        Self {
            base: RipConfig::paper(),
            coarse_step_um: 200.0,
            fine_step_um: 50.0,
            trim: TreeTrimConfig::default(),
        }
    }
}

impl TreeRipConfig {
    /// The paper-analogous configuration (identical to `default`).
    pub fn paper() -> Self {
        Self::default()
    }
}

/// Result of a tree RIP run. Node indices refer to the **fine
/// subdivision** returned in [`TreeRipOutcome::fine_tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRipOutcome {
    /// The final buffered solution on the fine tree.
    pub solution: TreeSolution,
    /// The fine subdivision the solution indexes into.
    pub fine_tree: RcTree,
    /// Stage 1 coarse solution's total width, u (diagnostic).
    pub coarse_width: f64,
    /// Stage 2 trimmed (continuous) total width, u (diagnostic).
    pub trimmed_width: f64,
    /// The synthesized library `B`.
    pub library: RepeaterLibrary,
    /// Number of fine candidate sites offered to stage 4.
    pub candidate_count: usize,
    /// Per-stage wall-clock runtimes.
    pub runtime: RipRuntime,
}

/// Runs the hybrid RIP pipeline on an RC tree.
///
/// The tree must be built with physical edge lengths
/// ([`RcTree::add_line_child`]) so candidate sites can be generated along
/// its edges.
///
/// # Errors
///
/// * [`RipError::Infeasible`] when even min-delay buffering over the
///   coarse sites cannot meet the target;
/// * other [`RipError`] variants for invalid inputs.
///
/// # Examples
///
/// ```
/// use rip_core::{tree_rip, TreeRipConfig};
/// use rip_delay::RcTree;
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let mut tree = RcTree::with_root();
/// let trunk = tree.add_line_child(0, 0.08, 0.2, 5000.0)?;
/// let s1 = tree.add_line_child(trunk, 0.06, 0.18, 4000.0)?;
/// let s2 = tree.add_line_child(trunk, 0.08, 0.2, 2500.0)?;
/// tree.set_sink_cap(s1, tech.device().input_cap(60.0))?;
/// tree.set_sink_cap(s2, tech.device().input_cap(40.0))?;
///
/// let outcome = tree_rip(&tree, &tech, 120.0, 1.0e6, &TreeRipConfig::paper())?;
/// assert!(outcome.solution.delay_fs <= 1.0e6);
/// # Ok(())
/// # }
/// ```
pub fn tree_rip(
    tree: &RcTree,
    tech: &Technology,
    driver_width: f64,
    target_fs: f64,
    config: &TreeRipConfig,
) -> Result<TreeRipOutcome, RipError> {
    Engine::new(tech.clone(), config.base.clone()).solve_tree(tree, driver_width, target_fs, config)
}

/// [`tree_rip`] under a per-node buffer-legality mask (see
/// [`Engine::solve_tree_masked`] for the binding semantics): blocked
/// nodes — e.g. the `blocked` attributes of a `.tree` file, via
/// [`rip_net::TreeNet::allowed_mask`] — never receive a buffer, in any
/// stage. A `None` or all-true mask is byte-identical to [`tree_rip`].
///
/// # Errors
///
/// * [`RipError::Dp`] for a mask not aligned to the tree;
/// * [`RipError::Infeasible`] when the target cannot be met over the
///   legal sites;
/// * other [`RipError`] variants for invalid inputs.
pub fn tree_rip_masked(
    tree: &RcTree,
    tech: &Technology,
    driver_width: f64,
    target_fs: f64,
    config: &TreeRipConfig,
    allowed: Option<&[bool]>,
) -> Result<TreeRipOutcome, RipError> {
    Engine::new(tech.clone(), config.base.clone()).solve_tree_masked(
        tree,
        driver_width,
        target_fs,
        config,
        allowed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_dp::{tree_min_delay, tree_min_power};

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    /// A 3-sink routed tree with line edges (total ~17 mm of wire).
    fn routed_tree(tech: &Technology) -> RcTree {
        let dev = tech.device();
        let mut tree = RcTree::with_root();
        let trunk = tree.add_line_child(0, 0.08, 0.2, 5000.0).unwrap();
        let near = tree.add_line_child(trunk, 0.08, 0.2, 2000.0).unwrap();
        let mid = tree.add_line_child(trunk, 0.06, 0.18, 4000.0).unwrap();
        let far_a = tree.add_line_child(mid, 0.08, 0.2, 3000.0).unwrap();
        let far_b = tree.add_line_child(mid, 0.06, 0.18, 3500.0).unwrap();
        tree.set_sink_cap(near, dev.input_cap(50.0)).unwrap();
        tree.set_sink_cap(far_a, dev.input_cap(60.0)).unwrap();
        tree.set_sink_cap(far_b, dev.input_cap(40.0)).unwrap();
        tree
    }

    fn tree_tau_min(tree: &RcTree, tech: &Technology) -> f64 {
        let (fine, _) = tree.subdivided(200.0);
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        tree_min_delay(&fine, tech.device(), 120.0, &lib, None)
            .unwrap()
            .delay_fs
    }

    #[test]
    fn tree_rip_meets_target_and_verifies() {
        let tech = tech();
        let tree = routed_tree(&tech);
        let tmin = tree_tau_min(&tree, &tech);
        let target = tmin * 1.3;
        let out = tree_rip(&tree, &tech, 120.0, target, &TreeRipConfig::paper()).unwrap();
        assert!(out.solution.delay_fs <= target * (1.0 + 1e-9));
        // Independent re-evaluation on the fine tree.
        let timing =
            out.fine_tree
                .evaluate_buffered(tech.device(), 120.0, &out.solution.buffer_widths);
        assert!((timing.max_sink_delay - out.solution.delay_fs).abs() < 1e-6);
        assert!(out.candidate_count > 0);
    }

    #[test]
    fn hybrid_beats_or_matches_its_coarse_seed() {
        let tech = tech();
        let tree = routed_tree(&tech);
        let tmin = tree_tau_min(&tree, &tech);
        for mult in [1.2, 1.6, 2.0] {
            let out = tree_rip(&tree, &tech, 120.0, tmin * mult, &TreeRipConfig::paper()).unwrap();
            assert!(
                out.solution.total_width <= out.coarse_width + 1e-9,
                "mult {mult}: final {} vs coarse {}",
                out.solution.total_width,
                out.coarse_width
            );
            // The continuous trim bounds the *coarse topology* from
            // below; the fine DP may pick a different (even cheaper)
            // topology, so only sanity-check the trim itself here.
            assert!(out.trimmed_width <= out.coarse_width + 1e-9);
        }
    }

    #[test]
    fn tree_rip_matches_fine_tree_dp_quality() {
        // Against a full fine-granularity tree DP (10u steps, 200 um
        // sites) the hybrid should land within a few percent.
        let tech = tech();
        let tree = routed_tree(&tech);
        let tmin = tree_tau_min(&tree, &tech);
        let target = tmin * 1.5;
        let out = tree_rip(&tree, &tech, 120.0, target, &TreeRipConfig::paper()).unwrap();
        let (coarse_sites, _) = tree.subdivided(200.0);
        let full_lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let full =
            tree_min_power(&coarse_sites, tech.device(), 120.0, &full_lib, None, target).unwrap();
        let gap = (out.solution.total_width - full.total_width) / full.total_width * 100.0;
        assert!(
            gap < 10.0,
            "hybrid is {gap:.1}% worse than the full fine DP"
        );
    }

    #[test]
    fn impossible_tree_target_errors() {
        let tech = tech();
        let tree = routed_tree(&tech);
        let err = tree_rip(&tree, &tech, 120.0, 1.0, &TreeRipConfig::paper()).unwrap_err();
        assert!(matches!(err, RipError::Infeasible { .. }));
    }

    #[test]
    fn very_loose_tree_target_can_go_bufferless() {
        let tech = tech();
        let dev = tech.device();
        // A short stubby tree that needs no buffers at a huge target.
        let mut tree = RcTree::with_root();
        let a = tree.add_line_child(0, 0.08, 0.2, 800.0).unwrap();
        let s = tree.add_line_child(a, 0.08, 0.2, 700.0).unwrap();
        tree.set_sink_cap(s, dev.input_cap(40.0)).unwrap();
        let unbuffered = tree.elmore_delays(dev, 120.0).max_sink_delay;
        let out = tree_rip(
            &tree,
            &tech,
            120.0,
            unbuffered * 2.0,
            &TreeRipConfig::paper(),
        )
        .unwrap();
        assert_eq!(out.solution.total_width, 0.0);
        assert!(out.solution.buffer_widths.iter().all(Option::is_none));
    }
}
