//! Repeater assignments and their evaluation (Eq. 2 of the paper).
//!
//! A [`RepeaterAssignment`] is a complete solution to Problem LPRI: the
//! number, widths and positions of all inserted repeaters. Evaluation
//! walks the chain driver → repeaters → receiver, summing Eq. (1) stage
//! delays, and is the single source of truth every algorithm's output is
//! checked against (the DP engines and REFINE must agree with it).

use crate::error::DelayError;
use crate::stage::stage_delay;
use rip_net::TwoPinNet;
use rip_tech::RepeaterDevice;

/// One inserted repeater: a position along the net and a width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Repeater {
    /// Distance from the source, µm.
    pub position: f64,
    /// Repeater width, in u.
    pub width: f64,
}

impl Repeater {
    /// Convenience constructor.
    pub fn new(position: f64, width: f64) -> Self {
        Self { position, width }
    }
}

/// A complete repeater insertion solution: repeaters sorted
/// source-to-sink.
///
/// # Examples
///
/// ```
/// use rip_delay::{Repeater, RepeaterAssignment};
///
/// # fn main() -> Result<(), rip_delay::DelayError> {
/// let asg = RepeaterAssignment::new(vec![
///     Repeater::new(3000.0, 120.0),
///     Repeater::new(1500.0, 90.0), // out of order: sorted automatically
/// ])?;
/// assert_eq!(asg.len(), 2);
/// assert_eq!(asg.positions(), vec![1500.0, 3000.0]);
/// assert_eq!(asg.total_width(), 210.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RepeaterAssignment {
    repeaters: Vec<Repeater>,
}

impl RepeaterAssignment {
    /// Creates an assignment, sorting repeaters by position.
    ///
    /// # Errors
    ///
    /// * [`DelayError::InvalidWidth`] for non-positive/non-finite widths;
    /// * [`DelayError::DuplicatePosition`] when two repeaters coincide.
    ///
    /// Position legality with respect to a concrete net (span, forbidden
    /// zones) is checked separately by
    /// [`RepeaterAssignment::validate_on`], since an assignment may be
    /// constructed before the net is known.
    pub fn new(mut repeaters: Vec<Repeater>) -> Result<Self, DelayError> {
        for (i, r) in repeaters.iter().enumerate() {
            if !r.width.is_finite() || r.width <= 0.0 {
                return Err(DelayError::InvalidWidth {
                    index: i,
                    value: r.width,
                });
            }
            if !r.position.is_finite() {
                return Err(DelayError::PositionOutOfSpan {
                    index: i,
                    position: r.position,
                    net_length: f64::NAN,
                });
            }
        }
        repeaters.sort_by(|a, b| {
            a.position
                .partial_cmp(&b.position)
                .expect("finite positions")
        });
        for pair in repeaters.windows(2) {
            if pair[0].position == pair[1].position {
                return Err(DelayError::DuplicatePosition {
                    position: pair[0].position,
                });
            }
        }
        Ok(Self { repeaters })
    }

    /// The empty assignment (unbuffered net).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The repeaters, sorted source-to-sink.
    #[inline]
    pub fn repeaters(&self) -> &[Repeater] {
        &self.repeaters
    }

    /// Number of repeaters `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.repeaters.len()
    }

    /// Returns `true` for the unbuffered assignment.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.repeaters.is_empty()
    }

    /// Total repeater width `p = Σ wᵢ`, in u — the paper's power
    /// objective (Eq. 4).
    pub fn total_width(&self) -> f64 {
        self.repeaters.iter().map(|r| r.width).sum()
    }

    /// The repeater positions, ascending, µm.
    pub fn positions(&self) -> Vec<f64> {
        self.repeaters.iter().map(|r| r.position).collect()
    }

    /// The repeater widths in position order, u.
    pub fn widths(&self) -> Vec<f64> {
        self.repeaters.iter().map(|r| r.width).collect()
    }

    /// Validates the assignment against a concrete net: every repeater
    /// must lie strictly inside `(0, L)` and outside forbidden-zone
    /// interiors.
    ///
    /// # Errors
    ///
    /// Returns the first violation as [`DelayError::PositionOutOfSpan`]
    /// or [`DelayError::PositionInForbiddenZone`].
    pub fn validate_on(&self, net: &TwoPinNet) -> Result<(), DelayError> {
        let total = net.total_length();
        for (i, r) in self.repeaters.iter().enumerate() {
            if r.position <= 0.0 || r.position >= total {
                return Err(DelayError::PositionOutOfSpan {
                    index: i,
                    position: r.position,
                    net_length: total,
                });
            }
            if net.is_forbidden(r.position) {
                return Err(DelayError::PositionInForbiddenZone {
                    index: i,
                    position: r.position,
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<Repeater> for RepeaterAssignment {
    /// Collects repeaters into an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the repeaters are invalid (non-positive widths or
    /// duplicate positions); use [`RepeaterAssignment::new`] for fallible
    /// construction.
    fn from_iter<T: IntoIterator<Item = Repeater>>(iter: T) -> Self {
        RepeaterAssignment::new(iter.into_iter().collect())
            .expect("collected repeaters must be valid")
    }
}

/// Timing of an evaluated assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTiming {
    /// Total source-to-sink Elmore delay (Eq. 2), fs.
    pub total_delay: f64,
    /// Per-stage delays `τ₀ … τₙ` (driver stage first), fs.
    pub stage_delays: Vec<f64>,
}

/// Evaluates an assignment on a net: the sum of Eq. (1) stage delays over
/// driver → repeaters → receiver (Eq. 2).
///
/// This function intentionally does **not** check position legality —
/// call [`RepeaterAssignment::validate_on`] for that — so that algorithm
/// internals (e.g. REFINE mid-iteration states) can be evaluated too.
///
/// # Examples
///
/// ```
/// use rip_delay::{evaluate, Repeater, RepeaterAssignment};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(4000.0, 0.08, 0.2))
///     .build()?;
/// let unbuffered = evaluate(&net, tech.device(), &RepeaterAssignment::empty());
/// let buffered = evaluate(
///     &net,
///     tech.device(),
///     &RepeaterAssignment::new(vec![Repeater::new(2000.0, 100.0)])?,
/// );
/// // One well-placed repeater speeds up a long wire.
/// assert!(buffered.total_delay < unbuffered.total_delay);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    assignment: &RepeaterAssignment,
) -> NetTiming {
    let profile = net.profile();
    let total_len = net.total_length();
    let n = assignment.len();
    let mut stage_delays = Vec::with_capacity(n + 1);

    // Node i has position pos(i) and width w(i); node 0 is the driver,
    // node n+1 the receiver.
    let pos = |i: usize| -> f64 {
        if i == 0 {
            0.0
        } else if i <= n {
            assignment.repeaters()[i - 1].position
        } else {
            total_len
        }
    };
    let width = |i: usize| -> f64 {
        if i == 0 {
            net.driver_width()
        } else if i <= n {
            assignment.repeaters()[i - 1].width
        } else {
            net.receiver_width()
        }
    };

    let mut total = 0.0;
    for i in 0..=n {
        let interval = profile.interval(pos(i), pos(i + 1));
        let load = device.input_cap(width(i + 1));
        let tau = stage_delay(device, interval, width(i), load);
        stage_delays.push(tau);
        total += tau;
    }
    NetTiming {
        total_delay: total,
        stage_delays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(2000.0, 0.08, 0.20))
            .segment(Segment::new(2500.0, 0.06, 0.18))
            .forbidden_zone(2800.0, 3600.0)
            .unwrap()
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    fn device() -> RepeaterDevice {
        *Technology::generic_180nm().device()
    }

    #[test]
    fn empty_assignment_is_single_stage() {
        let timing = evaluate(&net(), &device(), &RepeaterAssignment::empty());
        assert_eq!(timing.stage_delays.len(), 1);
        assert!(timing.total_delay > 0.0);
    }

    #[test]
    fn stage_delays_sum_to_total() {
        let asg = RepeaterAssignment::new(vec![
            Repeater::new(1200.0, 100.0),
            Repeater::new(2600.0, 140.0),
        ])
        .unwrap();
        let timing = evaluate(&net(), &device(), &asg);
        assert_eq!(timing.stage_delays.len(), 3);
        let sum: f64 = timing.stage_delays.iter().sum();
        assert!((sum - timing.total_delay).abs() < 1e-9);
    }

    #[test]
    fn evaluation_matches_manual_eq1_composition() {
        // Independent recomputation of Eq. (2) for a 2-repeater solution.
        let net = net();
        let d = device();
        let asg = RepeaterAssignment::new(vec![
            Repeater::new(1500.0, 90.0),
            Repeater::new(4000.0, 110.0),
        ])
        .unwrap();
        let p = net.profile();
        let mut expected = 0.0;
        let nodes = [
            (0.0, 120.0),
            (1500.0, 90.0),
            (4000.0, 110.0),
            (4500.0, 60.0),
        ];
        for w in nodes.windows(2) {
            let ((a, wa), (b, wb)) = (w[0], w[1]);
            expected += stage_delay(&d, p.interval(a, b), wa, d.input_cap(wb));
        }
        let timing = evaluate(&net, &d, &asg);
        assert!((timing.total_delay - expected).abs() < 1e-9);
    }

    #[test]
    fn well_placed_repeater_reduces_delay_on_long_net() {
        let long = NetBuilder::new()
            .segment(Segment::new(10_000.0, 0.08, 0.2))
            .build()
            .unwrap();
        let d = device();
        let unbuffered = evaluate(&long, &d, &RepeaterAssignment::empty()).total_delay;
        let asg = RepeaterAssignment::new(vec![Repeater::new(5000.0, 100.0)]).unwrap();
        let buffered = evaluate(&long, &d, &asg).total_delay;
        assert!(buffered < unbuffered, "{buffered} !< {unbuffered}");
    }

    #[test]
    fn validate_on_catches_zone_violation() {
        let asg = RepeaterAssignment::new(vec![Repeater::new(3000.0, 100.0)]).unwrap();
        let err = asg.validate_on(&net()).unwrap_err();
        assert!(matches!(err, DelayError::PositionInForbiddenZone { .. }));
    }

    #[test]
    fn validate_on_catches_span_violation() {
        let asg = RepeaterAssignment::new(vec![Repeater::new(9000.0, 100.0)]).unwrap();
        assert!(matches!(
            asg.validate_on(&net()),
            Err(DelayError::PositionOutOfSpan { .. })
        ));
        let asg = RepeaterAssignment::new(vec![Repeater::new(0.0, 100.0)]).unwrap();
        assert!(asg.validate_on(&net()).is_err());
    }

    #[test]
    fn validate_on_accepts_legal_solution() {
        let asg = RepeaterAssignment::new(vec![
            Repeater::new(1000.0, 80.0),
            Repeater::new(2800.0, 80.0), // zone start boundary: legal
            Repeater::new(4000.0, 80.0),
        ])
        .unwrap();
        assert!(asg.validate_on(&net()).is_ok());
    }

    #[test]
    fn constructor_rejects_bad_inputs() {
        assert!(matches!(
            RepeaterAssignment::new(vec![Repeater::new(100.0, 0.0)]),
            Err(DelayError::InvalidWidth { .. })
        ));
        assert!(matches!(
            RepeaterAssignment::new(vec![Repeater::new(100.0, 10.0), Repeater::new(100.0, 20.0)]),
            Err(DelayError::DuplicatePosition { .. })
        ));
    }

    #[test]
    fn total_width_and_accessors() {
        let asg =
            RepeaterAssignment::new(vec![Repeater::new(200.0, 30.0), Repeater::new(100.0, 20.0)])
                .unwrap();
        assert_eq!(asg.total_width(), 50.0);
        assert_eq!(asg.positions(), vec![100.0, 200.0]);
        assert_eq!(asg.widths(), vec![20.0, 30.0]);
        assert!(!asg.is_empty());
    }
}
