//! Fixed-position chain view with analytic sensitivities.
//!
//! [`ChainView`] freezes the repeater *positions* of a candidate solution
//! and exposes the quantities the paper's analysis needs as functions of
//! the *widths*:
//!
//! * the total Elmore delay `τ_total(w)` (Eq. 2),
//! * the width derivatives `∂τ_total/∂wᵢ` appearing in the KKT condition
//!   Eq. (8),
//! * the one-sided location derivatives `(∂τ_total/∂xᵢ)₊` and
//!   `(∂τ_total/∂xᵢ)₋` of Eqs. (17)–(18) that drive repeater movement.
//!
//! REFINE alternates between solving widths on a `ChainView` and moving
//! positions (producing a new `ChainView`).

use crate::error::DelayError;
use crate::stage::stage_delay;
use rip_net::{IntervalRc, RcProfile, Side, TwoPinNet};
use rip_tech::RepeaterDevice;

/// A two-pin net with `n` repeaters at fixed positions, widths left free.
///
/// Node indexing follows the paper: node `0` is the driver (width `w_d`),
/// nodes `1..=n` are repeaters, node `n+1` is the receiver (width `w_r`).
/// Public methods take 0-based repeater indices `j ∈ 0..n` (repeater
/// `j` is the paper's repeater `i = j+1`).
///
/// # Examples
///
/// ```
/// use rip_delay::ChainView;
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(6000.0, 0.08, 0.2))
///     .build()?;
/// let view = ChainView::new(&net, tech.device(), vec![2000.0, 4000.0])?;
/// let delay = view.total_delay(&[100.0, 100.0]);
/// assert!(delay > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChainView<'a> {
    profile: &'a RcProfile,
    device: &'a RepeaterDevice,
    driver_width: f64,
    receiver_width: f64,
    positions: Vec<f64>,
    /// `intervals[i]` is the wire between node `i` and node `i+1`
    /// (length `n+1`).
    intervals: Vec<IntervalRc>,
}

impl<'a> ChainView<'a> {
    /// Creates a view of `net` with repeaters at `positions` (strictly
    /// ascending, strictly inside `(0, L)`).
    ///
    /// Forbidden zones are *not* checked here: REFINE legitimately
    /// evaluates trial positions during movement; zone legality is
    /// enforced where solutions are committed.
    ///
    /// # Errors
    ///
    /// * [`DelayError::PositionOutOfSpan`] for positions outside `(0, L)`;
    /// * [`DelayError::DuplicatePosition`] for non-increasing positions.
    pub fn new(
        net: &'a TwoPinNet,
        device: &'a RepeaterDevice,
        positions: Vec<f64>,
    ) -> Result<Self, DelayError> {
        let profile = net.profile();
        let total = profile.total_length();
        for (i, &x) in positions.iter().enumerate() {
            if !x.is_finite() || x <= 0.0 || x >= total {
                return Err(DelayError::PositionOutOfSpan {
                    index: i,
                    position: x,
                    net_length: total,
                });
            }
        }
        for pair in positions.windows(2) {
            if pair[1] <= pair[0] {
                return Err(DelayError::DuplicatePosition { position: pair[1] });
            }
        }
        let intervals = Self::build_intervals(profile, &positions, total);
        Ok(Self {
            profile,
            device,
            driver_width: net.driver_width(),
            receiver_width: net.receiver_width(),
            positions,
            intervals,
        })
    }

    fn build_intervals(profile: &RcProfile, positions: &[f64], total: f64) -> Vec<IntervalRc> {
        let mut intervals = Vec::with_capacity(positions.len() + 1);
        let mut prev = 0.0;
        for &x in positions {
            intervals.push(profile.interval(prev, x));
            prev = x;
        }
        intervals.push(profile.interval(prev, total));
        intervals
    }

    /// Number of repeaters `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when the chain carries no repeaters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Repeater positions, ascending, µm.
    #[inline]
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// Driver width `w_d`, u.
    #[inline]
    pub fn driver_width(&self) -> f64 {
        self.driver_width
    }

    /// Receiver width `w_r`, u.
    #[inline]
    pub fn receiver_width(&self) -> f64 {
        self.receiver_width
    }

    /// The device model used by this view.
    #[inline]
    pub fn device(&self) -> &RepeaterDevice {
        self.device
    }

    /// Lumped wire between node `i` and node `i+1`, for `i ∈ 0..=n`.
    #[inline]
    pub fn stage_interval(&self, i: usize) -> IntervalRc {
        self.intervals[i]
    }

    /// Wire resistance `R_{i−1}` of the paper: between repeater `j`
    /// (paper's `i = j+1`) and its upstream neighbour, Ω.
    #[inline]
    pub fn upstream_wire_resistance(&self, j: usize) -> f64 {
        self.intervals[j].resistance
    }

    /// Wire capacitance `C_i` of the paper: between repeater `j` and its
    /// downstream neighbour, fF.
    #[inline]
    pub fn downstream_wire_capacitance(&self, j: usize) -> f64 {
        self.intervals[j + 1].capacitance
    }

    /// Width of the node upstream of repeater `j` (`w_{i−1}`): another
    /// repeater's width or the driver width, u.
    #[inline]
    pub fn upstream_width(&self, widths: &[f64], j: usize) -> f64 {
        if j == 0 {
            self.driver_width
        } else {
            widths[j - 1]
        }
    }

    /// Width of the node downstream of repeater `j` (`w_{i+1}`): another
    /// repeater's width or the receiver width, u.
    #[inline]
    pub fn downstream_width(&self, widths: &[f64], j: usize) -> f64 {
        if j + 1 < widths.len() {
            widths[j + 1]
        } else {
            self.receiver_width
        }
    }

    /// Total Elmore delay `τ_total(w)` of Eq. (2), fs.
    ///
    /// # Panics
    ///
    /// Panics if `widths.len() != self.len()`.
    pub fn total_delay(&self, widths: &[f64]) -> f64 {
        assert_eq!(widths.len(), self.len(), "one width per repeater");
        let n = self.len();
        let node_width = |i: usize| -> f64 {
            if i == 0 {
                self.driver_width
            } else if i <= n {
                widths[i - 1]
            } else {
                self.receiver_width
            }
        };
        let mut total = 0.0;
        for i in 0..=n {
            let load = self.device.input_cap(node_width(i + 1));
            total += stage_delay(self.device, self.intervals[i], node_width(i), load);
        }
        total
    }

    /// Analytic `∂τ_total/∂w_j` — the inner derivative of the KKT
    /// condition Eq. (8):
    ///
    /// ```text
    /// ∂τ/∂wᵢ = Co·(R_{i−1} + Rs/w_{i−1}) − Rs·(Cᵢ + Co·w_{i+1}) / wᵢ²
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `widths.len() != self.len()` or `j` is out of range.
    pub fn dtau_dw(&self, widths: &[f64], j: usize) -> f64 {
        assert_eq!(widths.len(), self.len(), "one width per repeater");
        let rs = self.device.rs();
        let co = self.device.co();
        let w = widths[j];
        let w_up = self.upstream_width(widths, j);
        let w_down = self.downstream_width(widths, j);
        let r_up = self.upstream_wire_resistance(j);
        let c_down = self.downstream_wire_capacitance(j);
        co * (r_up + rs / w_up) - rs * (c_down + co * w_down) / (w * w)
    }

    /// Analytic one-sided location derivative `(∂τ_total/∂x_j)±` of
    /// Eqs. (17)–(18):
    ///
    /// ```text
    /// (∂τ/∂xᵢ)± = Co·r±·(wᵢ − w_{i+1}) + Rs·c±·(1/w_{i−1} − 1/wᵢ)
    ///             + c±·R_{i−1} − r±·Cᵢ
    /// ```
    ///
    /// where `(r±, c±)` are the per-unit-length wire parameters
    /// immediately downstream (`Side::Downstream`, Eq. 17) or upstream
    /// (`Side::Upstream`, Eq. 18) of the repeater.
    ///
    /// # Panics
    ///
    /// Panics if `widths.len() != self.len()` or `j` is out of range.
    pub fn dtau_dx(&self, widths: &[f64], j: usize, side: Side) -> f64 {
        assert_eq!(widths.len(), self.len(), "one width per repeater");
        let rs = self.device.rs();
        let co = self.device.co();
        let x = self.positions[j];
        let r_side = self.profile.r_at(x, side);
        let c_side = self.profile.c_at(x, side);
        let w = widths[j];
        let w_up = self.upstream_width(widths, j);
        let w_down = self.downstream_width(widths, j);
        let r_up = self.upstream_wire_resistance(j);
        let c_down = self.downstream_wire_capacitance(j);
        co * r_side * (w - w_down) + rs * c_side * (1.0 / w_up - 1.0 / w) + c_side * r_up
            - r_side * c_down
    }

    /// Rebuilds the view with new positions, keeping net and device.
    ///
    /// # Errors
    ///
    /// Same as [`ChainView::new`].
    pub fn with_positions(&self, positions: Vec<f64>) -> Result<Self, DelayError> {
        let total = self.profile.total_length();
        for (i, &x) in positions.iter().enumerate() {
            if !x.is_finite() || x <= 0.0 || x >= total {
                return Err(DelayError::PositionOutOfSpan {
                    index: i,
                    position: x,
                    net_length: total,
                });
            }
        }
        for pair in positions.windows(2) {
            if pair[1] <= pair[0] {
                return Err(DelayError::DuplicatePosition { position: pair[1] });
            }
        }
        let intervals = Self::build_intervals(self.profile, &positions, total);
        Ok(Self {
            positions,
            intervals,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{evaluate, Repeater, RepeaterAssignment};
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(2000.0, 0.08, 0.20))
            .segment(Segment::new(2500.0, 0.06, 0.18))
            .segment(Segment::new(1800.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn total_delay_agrees_with_assignment_evaluation() {
        let tech = tech();
        let net = net();
        let positions = vec![1500.0, 3600.0, 5200.0];
        let widths = vec![90.0, 130.0, 70.0];
        let view = ChainView::new(&net, tech.device(), positions.clone()).unwrap();
        let via_view = view.total_delay(&widths);
        let asg = RepeaterAssignment::new(
            positions
                .iter()
                .zip(&widths)
                .map(|(&x, &w)| Repeater::new(x, w))
                .collect(),
        )
        .unwrap();
        let via_eval = evaluate(&net, tech.device(), &asg).total_delay;
        assert!((via_view - via_eval).abs() < 1e-9);
    }

    #[test]
    fn dtau_dw_matches_central_finite_difference() {
        let tech = tech();
        let net = net();
        let view = ChainView::new(&net, tech.device(), vec![1500.0, 3600.0, 5200.0]).unwrap();
        let widths = vec![90.0, 130.0, 70.0];
        let h = 1e-4;
        for j in 0..3 {
            let analytic = view.dtau_dw(&widths, j);
            let mut up = widths.clone();
            up[j] += h;
            let mut dn = widths.clone();
            dn[j] -= h;
            let numeric = (view.total_delay(&up) - view.total_delay(&dn)) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 1e-3 * numeric.abs().max(1.0),
                "j={j}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn dtau_dx_matches_one_sided_finite_difference() {
        let tech = tech();
        let net = net();
        let positions = vec![1500.0, 3600.0, 5200.0];
        let widths = vec![90.0, 130.0, 70.0];
        let view = ChainView::new(&net, tech.device(), positions.clone()).unwrap();
        let h = 1e-3;
        for j in 0..positions.len() {
            for (side, sign) in [(Side::Downstream, 1.0), (Side::Upstream, -1.0)] {
                let analytic = view.dtau_dx(&widths, j, side);
                let mut moved = positions.clone();
                moved[j] += sign * h;
                let shifted = view.with_positions(moved).unwrap();
                let numeric = sign * (shifted.total_delay(&widths) - view.total_delay(&widths)) / h;
                assert!(
                    (analytic - numeric).abs() < 1e-2 * numeric.abs().max(1.0),
                    "j={j} {side:?}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn dtau_dx_sides_differ_across_segment_boundary() {
        // Repeater exactly on the metal4/metal5 boundary at x = 2000:
        // the one-sided derivatives use different (r, c) and must differ.
        let tech = tech();
        let net = net();
        let view = ChainView::new(&net, tech.device(), vec![2000.0]).unwrap();
        let widths = vec![100.0];
        let plus = view.dtau_dx(&widths, 0, Side::Downstream);
        let minus = view.dtau_dx(&widths, 0, Side::Upstream);
        assert!((plus - minus).abs() > 1e-9);
    }

    #[test]
    fn dtau_dx_sides_agree_inside_segment() {
        let tech = tech();
        let net = net();
        let view = ChainView::new(&net, tech.device(), vec![1000.0]).unwrap();
        let widths = vec![100.0];
        let plus = view.dtau_dx(&widths, 0, Side::Downstream);
        let minus = view.dtau_dx(&widths, 0, Side::Upstream);
        assert!((plus - minus).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_positions() {
        let tech = tech();
        let net = net();
        assert!(matches!(
            ChainView::new(&net, tech.device(), vec![-1.0]),
            Err(DelayError::PositionOutOfSpan { .. })
        ));
        assert!(matches!(
            ChainView::new(&net, tech.device(), vec![1000.0, 1000.0]),
            Err(DelayError::DuplicatePosition { .. })
        ));
        assert!(matches!(
            ChainView::new(&net, tech.device(), vec![3000.0, 1000.0]),
            Err(DelayError::DuplicatePosition { .. })
        ));
    }

    #[test]
    fn empty_chain_is_just_the_driver_stage() {
        let tech = tech();
        let net = net();
        let view = ChainView::new(&net, tech.device(), vec![]).unwrap();
        assert!(view.is_empty());
        let d = view.total_delay(&[]);
        let asg_delay = evaluate(&net, tech.device(), &RepeaterAssignment::empty()).total_delay;
        assert!((d - asg_delay).abs() < 1e-9);
    }

    #[test]
    fn with_positions_rebuilds_intervals() {
        let tech = tech();
        let net = net();
        let view = ChainView::new(&net, tech.device(), vec![2000.0]).unwrap();
        let moved = view.with_positions(vec![3000.0]).unwrap();
        assert!(
            (moved.upstream_wire_resistance(0) - net.profile().interval(0.0, 3000.0).resistance)
                .abs()
                < 1e-12
        );
    }
}
