//! Error types for delay-model computations.

use std::fmt;

/// Errors produced while constructing or evaluating repeater assignments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DelayError {
    /// A repeater width was not strictly positive and finite.
    InvalidWidth {
        /// Index of the repeater in source-to-sink order.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// A repeater position was outside the open net span `(0, L)`.
    PositionOutOfSpan {
        /// Index of the repeater in source-to-sink order.
        index: usize,
        /// The rejected position, µm.
        position: f64,
        /// Net length, µm.
        net_length: f64,
    },
    /// A repeater position fell strictly inside a forbidden zone.
    PositionInForbiddenZone {
        /// Index of the repeater in source-to-sink order.
        index: usize,
        /// The rejected position, µm.
        position: f64,
    },
    /// Two repeaters were placed at the same position.
    DuplicatePosition {
        /// The duplicated position, µm.
        position: f64,
    },
    /// A tree node referenced a parent that does not exist (or would form
    /// a cycle).
    InvalidTreeParent {
        /// Index of the offending node.
        node: usize,
    },
    /// A tree operation addressed a node outside the tree.
    TreeNodeOutOfRange {
        /// The rejected node index.
        node: usize,
        /// Number of nodes in the tree.
        len: usize,
    },
}

impl fmt::Display for DelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayError::InvalidWidth { index, value } => {
                write!(
                    f,
                    "repeater {index} width must be strictly positive, got {value}"
                )
            }
            DelayError::PositionOutOfSpan {
                index,
                position,
                net_length,
            } => write!(
                f,
                "repeater {index} position {position} lies outside the open span (0, {net_length})"
            ),
            DelayError::PositionInForbiddenZone { index, position } => {
                write!(
                    f,
                    "repeater {index} position {position} lies inside a forbidden zone"
                )
            }
            DelayError::DuplicatePosition { position } => {
                write!(f, "two repeaters share position {position}")
            }
            DelayError::InvalidTreeParent { node } => {
                write!(f, "tree node {node} references an invalid parent")
            }
            DelayError::TreeNodeOutOfRange { node, len } => {
                write!(
                    f,
                    "tree node index {node} out of range for tree of {len} nodes"
                )
            }
        }
    }
}

rip_tech::impl_leaf_error!(DelayError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let msg = DelayError::PositionOutOfSpan {
            index: 2,
            position: 9000.0,
            net_length: 4500.0,
        }
        .to_string();
        assert!(msg.contains("9000"));
        assert!(msg.contains("4500"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<DelayError>();
    }
}
