//! # rip-delay — Elmore delay and power models for the RIP reproduction
//!
//! Implements Section 4.1 of the paper and the analytic machinery of
//! Sections 4.2–4.3:
//!
//! * [`stage_delay`] — the Eq. (1) delay of one repeater stage, with the
//!   incremental pieces ([`wire_added_delay`], [`buffer_added_delay`])
//!   that the DP engines compose;
//! * [`RepeaterAssignment`] / [`evaluate`] — complete solutions and their
//!   Eq. (2) evaluation, the ground truth all algorithms are checked
//!   against;
//! * [`assignment_power`] — conversion back to watts (Eqs. 3–4);
//! * [`ChainView`] — fixed positions, free widths: `τ(w)`, `∂τ/∂wᵢ`
//!   (Eq. 8) and the one-sided `(∂τ/∂xᵢ)±` (Eqs. 17–18) for REFINE;
//! * [`RcTree`] — RC trees with buffered Elmore evaluation, the substrate
//!   for the paper's announced tree extension.
//!
//! # Example
//!
//! ```
//! use rip_delay::{evaluate, Repeater, RepeaterAssignment};
//! use rip_net::{NetBuilder, Segment};
//! use rip_tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::generic_180nm();
//! let net = NetBuilder::new()
//!     .segment(Segment::new(8000.0, 0.08, 0.2))
//!     .build()?;
//! let asg = RepeaterAssignment::new(vec![
//!     Repeater::new(2700.0, 95.0),
//!     Repeater::new(5400.0, 95.0),
//! ])?;
//! let timing = evaluate(&net, tech.device(), &asg);
//! println!("delay = {:.3} ns", rip_tech::units::ns_from_fs(timing.total_delay));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assignment;
mod chain;
mod error;
mod moments;
mod power;
mod rctree;
mod stage;

pub use assignment::{evaluate, NetTiming, Repeater, RepeaterAssignment};
pub use chain::ChainView;
pub use error::DelayError;
pub use moments::{compare_delay_models, stage_moments, DelayModelComparison, StageMoments};
pub use power::{assignment_power, PowerBreakdown};
pub use rctree::{RcTree, TreeTiming};
pub use stage::{buffer_added_delay, stage_delay, wire_added_delay};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Repeater>();
        assert_send_sync::<RepeaterAssignment>();
        assert_send_sync::<NetTiming>();
        assert_send_sync::<RcTree>();
        assert_send_sync::<DelayError>();
        assert_send_sync::<PowerBreakdown>();
    }
}
