//! Higher-order delay metrics: circuit moments and D2M.
//!
//! The paper (Section 4.1) notes that "more accurate analytical delay
//! models can be used by replacing the Elmore delay with the
//! corresponding delay functions". This module provides the standard
//! next step up: the first two circuit moments `m₁` (= Elmore) and `m₂`
//! of each repeater stage, and the **D2M** delay metric
//!
//! ```text
//! D2M = ln 2 · m₁² / √m₂
//! ```
//!
//! which is exact for a single pole and substantially tighter than Elmore
//! for resistance-shielded far nodes. The optimization engines keep using
//! Elmore (as the paper does — Elmore's monotonicity properties are what
//! the DP pruning and the REFINE derivations rely on); D2M serves as an
//! *analysis* model to quantify how conservative a Elmore-optimized
//! solution is.

use crate::assignment::RepeaterAssignment;
use rip_net::{RcProfile, TwoPinNet};
use rip_tech::RepeaterDevice;

/// First two moments of a stage's response at the receiving device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMoments {
    /// First moment (the Elmore delay), fs.
    pub m1: f64,
    /// Second moment, fs².
    pub m2: f64,
}

impl StageMoments {
    /// The D2M delay metric `ln 2 · m₁²/√m₂`, fs.
    ///
    /// Exact for a single-pole response; a (usually tight) underestimate
    /// of the 50 % step delay otherwise.
    pub fn d2m(&self) -> f64 {
        std::f64::consts::LN_2 * self.m1 * self.m1 / self.m2.sqrt()
    }
}

/// Computes `(m₁, m₂)` of one repeater stage: a driver of width
/// `driver_width` through the wire `(a, b)` into `load_cap_ff`.
///
/// The wire is discretized into `sections` π pieces taken from the exact
/// non-uniform [`RcProfile`] (the π ladder is split-invariant, so `m₁`
/// equals the closed-form Elmore stage delay for *any* section count;
/// `m₂` converges with refinement — 64 sections is plenty for global
/// wires).
///
/// # Panics
///
/// Panics if `sections == 0` or the interval is reversed.
pub fn stage_moments(
    device: &RepeaterDevice,
    profile: &RcProfile,
    a: f64,
    b: f64,
    driver_width: f64,
    load_cap_ff: f64,
    sections: usize,
) -> StageMoments {
    assert!(sections > 0, "at least one wire section required");
    assert!(a <= b, "reversed stage interval");
    let rs = device.output_resistance(driver_width);

    // Node k (k = 0..=sections) sits at position a + k·(b−a)/sections.
    // Resistor k (k = 0..sections+1): k = 0 is the driver Rs/w, then the
    // section resistances. cap[k] collects the π half-caps plus device
    // caps at the boundary nodes.
    let n = sections;
    let mut res = Vec::with_capacity(n + 1);
    let mut cap = vec![0.0_f64; n + 1];
    res.push(rs);
    cap[0] += device.output_cap(driver_width);
    for k in 0..n {
        let x0 = a + (b - a) * k as f64 / n as f64;
        let x1 = a + (b - a) * (k + 1) as f64 / n as f64;
        let piece = profile.interval(x0, x1);
        res.push(piece.resistance);
        // Split the piece capacitance so its own internal Elmore term is
        // preserved exactly (far-end share q satisfies R·q = D; a uniform
        // piece gives the classic π split q = C/2). This keeps m1 equal
        // to the closed-form Elmore for ANY section count, even when
        // sections straddle segment boundaries of a non-uniform net.
        let q = if piece.resistance > 1e-300 {
            (piece.elmore / piece.resistance).min(piece.capacitance)
        } else {
            piece.capacitance / 2.0
        };
        cap[k] += piece.capacitance - q;
        cap[k + 1] += q;
    }
    cap[n] += load_cap_ff;

    // First pass: m1 at every node. Walking the ladder, m1[k] =
    // Σ_{j<=k} res[j] · (total cap at or beyond node j).
    let mut suffix_c = vec![0.0_f64; n + 2];
    for k in (0..=n).rev() {
        suffix_c[k] = suffix_c[k + 1] + cap[k];
    }
    let mut m1 = vec![0.0_f64; n + 1];
    let mut acc = 0.0;
    for k in 0..=n {
        acc += res[k] * suffix_c[k];
        m1[k] = acc;
    }

    // Second pass: identical ladder sweep with weights cap[k]·m1[k].
    let mut suffix_cm = vec![0.0_f64; n + 2];
    for k in (0..=n).rev() {
        suffix_cm[k] = suffix_cm[k + 1] + cap[k] * m1[k];
    }
    let mut m2 = 0.0;
    for k in 0..=n {
        m2 += res[k] * suffix_cm[k];
    }

    StageMoments { m1: m1[n], m2 }
}

/// Per-stage and total delay of an assignment under both Elmore (`m₁`)
/// and D2M.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModelComparison {
    /// Per-stage moments (driver stage first).
    pub stages: Vec<StageMoments>,
    /// Total Elmore delay (sum of stage `m₁`), fs.
    pub elmore_fs: f64,
    /// Total D2M delay (sum of stage D2M), fs.
    pub d2m_fs: f64,
}

impl DelayModelComparison {
    /// How conservative Elmore is relative to D2M on this solution:
    /// `(elmore − d2m) / elmore`, in `[0, 1)` in practice.
    pub fn elmore_margin(&self) -> f64 {
        (self.elmore_fs - self.d2m_fs) / self.elmore_fs
    }
}

/// Evaluates an assignment under both delay models (see module docs).
pub fn compare_delay_models(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    assignment: &RepeaterAssignment,
    sections: usize,
) -> DelayModelComparison {
    let profile = net.profile();
    let total_len = net.total_length();
    let n = assignment.len();
    let pos = |i: usize| -> f64 {
        if i == 0 {
            0.0
        } else if i <= n {
            assignment.repeaters()[i - 1].position
        } else {
            total_len
        }
    };
    let width = |i: usize| -> f64 {
        if i == 0 {
            net.driver_width()
        } else if i <= n {
            assignment.repeaters()[i - 1].width
        } else {
            net.receiver_width()
        }
    };
    let mut stages = Vec::with_capacity(n + 1);
    let mut elmore = 0.0;
    let mut d2m = 0.0;
    for i in 0..=n {
        let m = stage_moments(
            device,
            profile,
            pos(i),
            pos(i + 1),
            width(i),
            device.input_cap(width(i + 1)),
            sections,
        );
        elmore += m.m1;
        d2m += m.d2m();
        stages.push(m);
    }
    DelayModelComparison {
        stages,
        elmore_fs: elmore,
        d2m_fs: d2m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{evaluate, Repeater};
    use crate::stage::stage_delay;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn device() -> RepeaterDevice {
        *Technology::generic_180nm().device()
    }

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .segment(Segment::new(4000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn m1_equals_closed_form_elmore_for_any_section_count() {
        // The pi ladder is split-invariant: m1 must match the exact
        // interval-based stage delay no matter how coarsely we slice.
        let dev = device();
        let net = net();
        let p = net.profile();
        let load = dev.input_cap(80.0);
        let exact = stage_delay(&dev, p.interval(500.0, 5500.0), 100.0, load);
        for sections in [1, 3, 16, 100] {
            let m = stage_moments(&dev, p, 500.0, 5500.0, 100.0, load, sections);
            assert!(
                (m.m1 - exact).abs() < 1e-6 * exact,
                "sections {sections}: m1 {} vs exact {exact}",
                m.m1
            );
        }
    }

    #[test]
    fn single_pole_d2m_is_exact_ln2_rc() {
        // Driver resistance into a pure capacitive load: one pole, and
        // D2M must equal ln2 * RC exactly.
        let dev = device();
        let net = NetBuilder::new()
            // A vanishingly short wire to isolate the single pole.
            .segment(Segment::new(1e-6, 1e-9, 1e-9))
            .build()
            .unwrap();
        let load = 200.0;
        let m = stage_moments(&dev, net.profile(), 0.0, 1e-6, 50.0, load, 1);
        let rc = dev.output_resistance(50.0) * (load + dev.output_cap(50.0));
        assert!((m.m1 - rc).abs() < 1e-6 * rc);
        assert!((m.d2m() - std::f64::consts::LN_2 * rc).abs() < 1e-6 * rc);
    }

    #[test]
    fn m2_converges_with_refinement() {
        let dev = device();
        let net = net();
        let p = net.profile();
        let load = dev.input_cap(80.0);
        let coarse = stage_moments(&dev, p, 0.0, 7000.0, 100.0, load, 32);
        let fine = stage_moments(&dev, p, 0.0, 7000.0, 100.0, load, 256);
        assert!(
            (coarse.m2 - fine.m2).abs() < 0.01 * fine.m2,
            "m2 not converged: {} vs {}",
            coarse.m2,
            fine.m2
        );
    }

    #[test]
    fn d2m_is_below_elmore_but_same_scale() {
        let dev = device();
        let net = net();
        let asg = RepeaterAssignment::new(vec![
            Repeater::new(2500.0, 100.0),
            Repeater::new(5000.0, 100.0),
        ])
        .unwrap();
        let cmp = compare_delay_models(&net, &dev, &asg, 64);
        assert!(cmp.d2m_fs < cmp.elmore_fs);
        assert!(cmp.d2m_fs > 0.5 * cmp.elmore_fs, "D2M suspiciously small");
        let margin = cmp.elmore_margin();
        assert!(margin > 0.0 && margin < 0.5, "margin {margin}");
    }

    #[test]
    fn comparison_total_matches_ground_truth_elmore() {
        let dev = device();
        let net = net();
        let asg = RepeaterAssignment::new(vec![Repeater::new(3500.0, 120.0)]).unwrap();
        let cmp = compare_delay_models(&net, &dev, &asg, 16);
        let timing = evaluate(&net, &dev, &asg);
        assert!((cmp.elmore_fs - timing.total_delay).abs() < 1e-6 * timing.total_delay);
        assert_eq!(cmp.stages.len(), 2);
    }

    #[test]
    fn elmore_margin_is_largest_in_the_single_pole_limit() {
        // For a single pole, D2M = ln2·m1 exactly, so the Elmore margin
        // approaches its maximum 1 − ln2 ≈ 0.307; distributed wires pull
        // √m2 below m1 and shrink the margin. Ordering check:
        // wire-dominated < driver-dominated < single-pole bound.
        let dev = device();
        let wire_dominated = NetBuilder::new()
            .segment(Segment::new(12_000.0, 0.08, 0.2))
            .build()
            .unwrap();
        let wd = compare_delay_models(&wire_dominated, &dev, &RepeaterAssignment::empty(), 128);
        let driver_dominated = NetBuilder::new()
            .segment(Segment::new(500.0, 0.08, 0.2))
            .receiver_width(300.0)
            .build()
            .unwrap();
        let dd = compare_delay_models(&driver_dominated, &dev, &RepeaterAssignment::empty(), 128);
        let bound = 1.0 - std::f64::consts::LN_2;
        assert!(
            wd.elmore_margin() < dd.elmore_margin(),
            "wire-dominated {:.4} should have a smaller margin than driver-dominated {:.4}",
            wd.elmore_margin(),
            dd.elmore_margin()
        );
        assert!(dd.elmore_margin() < bound + 1e-9);
    }
}
