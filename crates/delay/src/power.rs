//! Absolute power of a repeatered net (Eqs. 3–4 of the paper).
//!
//! The optimization objective throughout the workspace is the total
//! repeater width `Σwᵢ` (Eq. 4 reduces power minimization to width
//! minimization); this module converts solutions back to watts for
//! reporting.

use crate::assignment::RepeaterAssignment;
use rip_net::TwoPinNet;
use rip_tech::{PowerParams, RepeaterDevice};

/// Power breakdown of a repeatered net, in W.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Width-dependent repeater power `γ·Σw` (dynamic gate switching +
    /// leakage).
    pub repeater: f64,
    /// Constant term: wire capacitance switching (+ receiver gate),
    /// unaffected by the repeater solution.
    pub wire: f64,
}

impl PowerBreakdown {
    /// Total net power, W.
    #[inline]
    pub fn total(&self) -> f64 {
        self.repeater + self.wire
    }
}

/// Computes the absolute power of an assignment on a net.
///
/// The wire term includes the receiver's gate capacitance — like the wire
/// it must be switched regardless of the repeater solution, matching the
/// paper's observation that only `Σwᵢ` is decision-relevant.
///
/// # Examples
///
/// ```
/// use rip_delay::{assignment_power, Repeater, RepeaterAssignment};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(5000.0, 0.08, 0.2))
///     .build()?;
/// let asg = RepeaterAssignment::new(vec![Repeater::new(2500.0, 100.0)])?;
/// let power = assignment_power(&net, tech.device(), tech.power(), &asg);
/// assert!(power.repeater > 0.0 && power.wire > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn assignment_power(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    params: &PowerParams,
    assignment: &RepeaterAssignment,
) -> PowerBreakdown {
    let repeater = params.repeater_power(device, assignment.total_width());
    let fixed_cap = net.total_capacitance() + device.input_cap(net.receiver_width());
    let wire = params.dynamic_power(fixed_cap);
    PowerBreakdown { repeater, wire }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Repeater;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn setup() -> (TwoPinNet, Technology) {
        let net = NetBuilder::new()
            .segment(Segment::new(5000.0, 0.08, 0.2))
            .build()
            .unwrap();
        (net, Technology::generic_180nm())
    }

    #[test]
    fn repeater_power_is_proportional_to_total_width() {
        let (net, tech) = setup();
        let one = RepeaterAssignment::new(vec![Repeater::new(2500.0, 100.0)]).unwrap();
        let two = RepeaterAssignment::new(vec![
            Repeater::new(1500.0, 100.0),
            Repeater::new(3500.0, 100.0),
        ])
        .unwrap();
        let p1 = assignment_power(&net, tech.device(), tech.power(), &one);
        let p2 = assignment_power(&net, tech.device(), tech.power(), &two);
        assert!((p2.repeater - 2.0 * p1.repeater).abs() < 1e-18);
        // The wire term is solution-independent.
        assert_eq!(p1.wire, p2.wire);
    }

    #[test]
    fn empty_assignment_has_zero_repeater_power() {
        let (net, tech) = setup();
        let p = assignment_power(
            &net,
            tech.device(),
            tech.power(),
            &RepeaterAssignment::empty(),
        );
        assert_eq!(p.repeater, 0.0);
        assert!(p.wire > 0.0);
        assert_eq!(p.total(), p.wire);
    }

    #[test]
    fn lower_total_width_means_lower_power() {
        // The equivalence the whole paper rests on: comparing two
        // solutions by power is the same as comparing them by total width.
        let (net, tech) = setup();
        let small = RepeaterAssignment::new(vec![Repeater::new(2500.0, 80.0)]).unwrap();
        let large = RepeaterAssignment::new(vec![Repeater::new(2500.0, 90.0)]).unwrap();
        let ps = assignment_power(&net, tech.device(), tech.power(), &small);
        let pl = assignment_power(&net, tech.device(), tech.power(), &large);
        assert!(ps.total() < pl.total());
    }
}
