//! RC trees and buffered-tree Elmore evaluation.
//!
//! The paper's closing section announces an extension of the hybrid
//! scheme to interconnect *trees*; this module provides the substrate for
//! that extension (used by `rip-dp`'s tree DP): a rooted RC tree whose
//! edges carry exact lumped wire views ([`IntervalRc`]), with Elmore
//! evaluation for arbitrary buffer placements.
//!
//! The chain model is the special case of a path-shaped tree, and the two
//! evaluations are cross-validated in the test suite.

use crate::error::DelayError;
use rip_net::IntervalRc;
use rip_tech::RepeaterDevice;

/// One node of an RC tree.
#[derive(Debug, Clone, PartialEq)]
struct TreeNode {
    /// Parent node index (`None` only for the root).
    parent: Option<usize>,
    /// Lumped wire from the parent to this node (zero for the root).
    wire: IntervalRc,
    /// Physical length of the wire from the parent, µm (0 when unknown;
    /// required for edge subdivision and path-distance queries).
    length_um: f64,
    /// Extra load capacitance tapped at this node, fF; a strictly
    /// positive value marks the node as a sink.
    sink_cap: f64,
    /// Child node indices.
    children: Vec<usize>,
}

/// A rooted RC tree: node 0 is the root (net driver); edges carry exact
/// lumped wire views; sinks are nodes with positive tap capacitance.
///
/// # Examples
///
/// ```
/// use rip_delay::RcTree;
///
/// # fn main() -> Result<(), rip_delay::DelayError> {
/// let mut tree = RcTree::with_root();
/// let a = tree.add_uniform_child(0, 160.0, 400.0)?; // R=160 Ω, C=400 fF
/// let _s1 = tree.add_uniform_child(a, 80.0, 200.0)?;
/// let s2 = tree.add_uniform_child(a, 120.0, 300.0)?;
/// tree.set_sink_cap(s2, 50.0)?;
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.sinks(), vec![s2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    nodes: Vec<TreeNode>,
}

impl RcTree {
    /// Creates a tree containing only the root (node 0).
    pub fn with_root() -> Self {
        Self {
            nodes: vec![TreeNode {
                parent: None,
                wire: IntervalRc::default(),
                length_um: 0.0,
                sink_cap: 0.0,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a child below `parent` connected by the given lumped wire;
    /// returns the new node's index.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::TreeNodeOutOfRange`] for an invalid parent.
    pub fn add_child(
        &mut self,
        parent: usize,
        wire: IntervalRc,
        sink_cap: f64,
    ) -> Result<usize, DelayError> {
        if parent >= self.nodes.len() {
            return Err(DelayError::TreeNodeOutOfRange {
                node: parent,
                len: self.nodes.len(),
            });
        }
        let idx = self.nodes.len();
        self.nodes.push(TreeNode {
            parent: Some(parent),
            wire,
            length_um: 0.0,
            sink_cap,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        Ok(idx)
    }

    /// Adds a child connected by a *uniform* wire with total resistance
    /// `r` (Ω) and capacitance `c` (fF); the internal Elmore term is the
    /// uniform-line value `r·c/2`.
    pub fn add_uniform_child(
        &mut self,
        parent: usize,
        r: f64,
        c: f64,
    ) -> Result<usize, DelayError> {
        self.add_child(
            parent,
            IntervalRc {
                resistance: r,
                capacitance: c,
                elmore: r * c / 2.0,
            },
            0.0,
        )
    }

    /// Adds a child connected by a uniform *physical* wire described by
    /// per-µm parameters and a length — the natural constructor for
    /// routed trees, and the one that enables [`RcTree::subdivided`] and
    /// [`RcTree::path_distance`].
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::TreeNodeOutOfRange`] for an invalid parent.
    pub fn add_line_child(
        &mut self,
        parent: usize,
        r_per_um: f64,
        c_per_um: f64,
        length_um: f64,
    ) -> Result<usize, DelayError> {
        let r = r_per_um * length_um;
        let c = c_per_um * length_um;
        let idx = self.add_child(
            parent,
            IntervalRc {
                resistance: r,
                capacitance: c,
                elmore: r * c / 2.0,
            },
            0.0,
        )?;
        self.nodes[idx].length_um = length_um;
        Ok(idx)
    }

    /// Builds the RC tree of a generated [`rip_net::TreeNet`]: one node
    /// per net node with **indices preserved one-to-one** (so the net's
    /// `allowed_mask` aligns with this tree), uniform physical wires
    /// from the per-µm layer parameters, and sink taps set to the input
    /// capacitance of each sink's receiver width under `device`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rip_delay::RcTree;
    /// use rip_net::{RandomTreeConfig, TreeNetGenerator};
    /// use rip_tech::Technology;
    ///
    /// let tech = Technology::generic_180nm();
    /// let mut gen = TreeNetGenerator::from_seed(RandomTreeConfig::default(), 7).unwrap();
    /// let net = gen.generate();
    /// let tree = RcTree::from_tree_net(&net, tech.device());
    /// assert_eq!(tree.len(), net.len());
    /// assert_eq!(tree.sinks(), net.sinks());
    /// ```
    pub fn from_tree_net(net: &rip_net::TreeNet, device: &RepeaterDevice) -> RcTree {
        let mut tree = RcTree::with_root();
        for (v, node) in net.nodes().iter().enumerate().skip(1) {
            let parent = node.parent.expect("non-root net nodes have parents");
            let idx = tree
                .add_line_child(parent, node.r_per_um, node.c_per_um, node.length_um)
                .expect("net nodes are stored parents-before-children");
            debug_assert_eq!(idx, v, "conversion must preserve node indices");
            if let Some(w) = node.sink_width {
                tree.set_sink_cap(idx, device.input_cap(w))
                    .expect("the node was just created");
            }
        }
        tree
    }

    /// Physical length of the wire from `node`'s parent, µm (0 when the
    /// edge was built from lumped values without a length).
    pub fn wire_length(&self, node: usize) -> f64 {
        self.nodes[node].length_um
    }

    /// Distance from the root along tree edges, µm (edges without a
    /// physical length contribute 0).
    pub fn root_distance(&self, node: usize) -> f64 {
        let mut d = 0.0;
        let mut v = node;
        while let Some(p) = self.nodes[v].parent {
            d += self.nodes[v].length_um;
            v = p;
        }
        d
    }

    /// Path distance between two nodes along tree edges, µm.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn path_distance(&self, a: usize, b: usize) -> f64 {
        // Walk both nodes up to their lowest common ancestor.
        let depth = |mut v: usize| {
            let mut d = 0usize;
            while let Some(p) = self.nodes[v].parent {
                d += 1;
                v = p;
            }
            d
        };
        let (mut u, mut v) = (a, b);
        let (mut du, mut dv) = (depth(u), depth(v));
        let mut dist = 0.0;
        while du > dv {
            dist += self.nodes[u].length_um;
            u = self.nodes[u].parent.expect("depth > 0 has a parent");
            du -= 1;
        }
        while dv > du {
            dist += self.nodes[v].length_um;
            v = self.nodes[v].parent.expect("depth > 0 has a parent");
            dv -= 1;
        }
        while u != v {
            dist += self.nodes[u].length_um + self.nodes[v].length_um;
            u = self.nodes[u].parent.expect("common root exists");
            v = self.nodes[v].parent.expect("common root exists");
        }
        dist
    }

    /// Returns a copy of the tree with every physical edge split into
    /// uniform pieces no longer than `step_um`, plus the mapping from old
    /// node indices to their images in the new tree.
    ///
    /// The intermediate nodes introduced along edges are the **candidate
    /// buffer sites** of tree buffering (the tree analogue of the paper's
    /// uniform candidate grid). Edges without a physical length
    /// (`wire_length == 0`) are copied unsplit. The lumped electrical
    /// view is preserved exactly: piece internal-Elmore terms are chosen
    /// so that the series composition reproduces the original edge's
    /// `(R, C, D)`.
    ///
    /// # Panics
    ///
    /// Panics if `step_um` is not strictly positive and finite.
    pub fn subdivided(&self, step_um: f64) -> (RcTree, Vec<usize>) {
        assert!(
            step_um.is_finite() && step_um > 0.0,
            "subdivision step must be positive"
        );
        let mut out = RcTree::with_root();
        out.nodes[0].sink_cap = self.nodes[0].sink_cap;
        let mut map = vec![0usize; self.nodes.len()];
        // Creation order puts parents before children, so one forward
        // pass suffices.
        for v in 1..self.nodes.len() {
            let node = &self.nodes[v];
            let parent_new = map[node.parent.expect("non-root node")];
            let l = node.length_um;
            let pieces = if l > 0.0 {
                (l / step_um).ceil().max(1.0) as usize
            } else {
                1
            };
            if pieces == 1 {
                let idx = out
                    .add_child(parent_new, node.wire, node.sink_cap)
                    .expect("parent exists by construction");
                out.nodes[idx].length_um = node.length_um;
                map[v] = idx;
                continue;
            }
            let k = pieces as f64;
            let (r, c, d) = (
                node.wire.resistance,
                node.wire.capacitance,
                node.wire.elmore,
            );
            // Series composition of k identical pieces (R/k, C/k, d_p):
            //   D = k·d_p + R·C·(k−1)/(2k)  ⇒  d_p below. Uniform edges
            //   (d = R·C/2) give exactly d_p = R·C/(2k²).
            let d_piece = ((d - r * c * (k - 1.0) / (2.0 * k)) / k).max(0.0);
            let piece = IntervalRc {
                resistance: r / k,
                capacitance: c / k,
                elmore: d_piece,
            };
            let mut cursor = parent_new;
            for i in 0..pieces {
                let sink = if i + 1 == pieces { node.sink_cap } else { 0.0 };
                cursor = out
                    .add_child(cursor, piece, sink)
                    .expect("parent exists by construction");
                out.nodes[cursor].length_um = l / k;
            }
            map[v] = cursor;
        }
        (out, map)
    }

    /// Projects a per-node buffer-legality mask of *this* tree onto one
    /// of its subdivisions.
    ///
    /// `sub` and `map` must come from [`RcTree::subdivided`] on this
    /// tree; `allowed[v]` says whether a buffer may be placed at
    /// original node `v`. In the projection:
    ///
    /// * the image `map[v]` of an original node inherits `allowed[v]`
    ///   verbatim;
    /// * the Steiner points inserted along an original edge inherit the
    ///   legality of their **covering edge**: they are legal exactly
    ///   when *both* endpoints of the original edge are legal (a wire
    ///   entering or leaving a blockage is conservatively treated as
    ///   over the blockage for its whole run);
    /// * the root counts as legal wherever an endpoint is consulted —
    ///   its mask entry is ignored throughout the DP (the root hosts
    ///   the driver, never a buffer) — and the projected root entry is
    ///   always `true`.
    ///
    /// This is the one definition of blocked-node semantics on
    /// subdivided trees; the hybrid tree pipeline
    /// (`rip_core::Engine::solve_tree_masked`) and the masked-tree
    /// conformance suite both use it.
    ///
    /// # Panics
    ///
    /// Panics when `allowed` or `map` is not aligned to this tree, or
    /// when `map` does not point into `sub`.
    pub fn project_allowed(&self, sub: &RcTree, map: &[usize], allowed: &[bool]) -> Vec<bool> {
        assert_eq!(allowed.len(), self.len(), "one mask entry per node");
        assert_eq!(map.len(), self.len(), "one map entry per node");
        let node_ok = |u: usize| u == 0 || allowed[u];
        let mut projected = vec![true; sub.len()];
        for v in 1..self.len() {
            let p = self.nodes[v].parent.expect("non-root nodes have parents");
            let edge_ok = node_ok(p) && node_ok(v);
            // The subdivision chains an edge's pieces from map[p] down
            // to map[v]; walk back up, labelling the image of v with
            // its own flag and every interior Steiner point with the
            // edge's flag.
            let mut w = map[v];
            projected[w] = node_ok(v);
            loop {
                w = sub.parent(w).expect("subdivided chains reach map[parent]");
                if w == map[p] {
                    break;
                }
                projected[w] = edge_ok;
            }
        }
        projected
    }

    /// Sets the tap (sink) capacitance at a node, fF.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::TreeNodeOutOfRange`] for an invalid node.
    pub fn set_sink_cap(&mut self, node: usize, cap_ff: f64) -> Result<(), DelayError> {
        if node >= self.nodes.len() {
            return Err(DelayError::TreeNodeOutOfRange {
                node,
                len: self.nodes.len(),
            });
        }
        self.nodes[node].sink_cap = cap_ff;
        Ok(())
    }

    /// Number of nodes (including the root).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the tree is only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.nodes.get(node).and_then(|n| n.parent)
    }

    /// Children of `node`.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.nodes[node].children
    }

    /// The lumped wire from `node`'s parent to `node`.
    pub fn wire(&self, node: usize) -> IntervalRc {
        self.nodes[node].wire
    }

    /// Tap capacitance at `node`, fF.
    pub fn sink_cap(&self, node: usize) -> f64 {
        self.nodes[node].sink_cap
    }

    /// Indices of all sinks (nodes with positive tap capacitance),
    /// ascending.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].sink_cap > 0.0)
            .collect()
    }

    /// Post-order traversal (children before parents). Node indices are
    /// assigned in creation order with parents before children, so a
    /// simple reverse index scan is a valid post-order.
    fn post_order(&self) -> impl Iterator<Item = usize> {
        (0..self.nodes.len()).rev()
    }

    /// Capacitance seen looking *into* each node within its buffer stage:
    /// `stage_load[v] = tap(v) + buffer_in(v) + Σ_children (wire_cap + stage_load(child))`,
    /// where a buffered node contributes only its tap plus the buffer's
    /// input capacitance (the subtree beyond belongs to the next stage).
    fn stage_loads(&self, device: &RepeaterDevice, buffer_widths: &[Option<f64>]) -> Vec<f64> {
        let mut load = vec![0.0_f64; self.nodes.len()];
        for v in self.post_order() {
            let node = &self.nodes[v];
            load[v] = match buffer_widths[v] {
                Some(w) => node.sink_cap + device.input_cap(w),
                None => {
                    let mut acc = node.sink_cap;
                    for &u in &node.children {
                        acc += self.nodes[u].wire.capacitance + load[u];
                    }
                    acc
                }
            };
        }
        load
    }

    /// Evaluates the Elmore arrival time at every node for a given buffer
    /// placement.
    ///
    /// * `driver_width` — width of the driver at the root, u;
    /// * `buffer_widths[v]` — `Some(w)` places a buffer of width `w` at
    ///   node `v` (the buffer drives `v`'s subtree); must be `None` at
    ///   the root (use `driver_width` instead).
    ///
    /// Each driving device contributes its intrinsic `Rs·Cp` delay plus
    /// `Rs/w` driving the stage capacitance, matching Eq. (1) on chains.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_widths.len() != self.len()`, or a buffer is
    /// placed at the root, or a buffer width is not strictly positive.
    pub fn evaluate_buffered(
        &self,
        device: &RepeaterDevice,
        driver_width: f64,
        buffer_widths: &[Option<f64>],
    ) -> TreeTiming {
        assert_eq!(
            buffer_widths.len(),
            self.nodes.len(),
            "one width slot per node"
        );
        assert!(
            buffer_widths[0].is_none(),
            "place no buffer at the root; size the driver"
        );
        for w in buffer_widths.iter().flatten() {
            assert!(w.is_finite() && *w > 0.0, "buffer widths must be positive");
        }
        let load = self.stage_loads(device, buffer_widths);
        let mut arrival = vec![0.0_f64; self.nodes.len()];

        // Stage capacitance under a driving node s: everything in s's
        // stage below s (children wires + their stage loads) - s's own
        // tap/input cap belongs to the *upstream* stage.
        let stage_cap_below = |s: usize| -> f64 {
            self.nodes[s]
                .children
                .iter()
                .map(|&u| self.nodes[u].wire.capacitance + load[u])
                .sum::<f64>()
        };

        // Root driver stage.
        arrival[0] =
            device.intrinsic_delay() + device.output_resistance(driver_width) * stage_cap_below(0);

        // Pre-order walk (parents first - creation order guarantees it).
        for v in 1..self.nodes.len() {
            let p = self.nodes[v].parent.expect("non-root nodes have parents");
            let wire = self.nodes[v].wire;
            // Arrival at v's input: parent's stage-local arrival plus the
            // edge's wire delay into v's stage load.
            let at_input = arrival[p] + wire.elmore + wire.resistance * load[v];
            arrival[v] = match buffer_widths[v] {
                Some(w) => {
                    // Buffer at v starts a new stage.
                    at_input
                        + device.intrinsic_delay()
                        + device.output_resistance(w) * stage_cap_below(v)
                }
                None => at_input,
            };
        }

        let sinks = self.sinks();
        let max_sink_delay = sinks
            .iter()
            .map(|&s| arrival[s])
            .fold(f64::NEG_INFINITY, f64::max);
        TreeTiming {
            arrival,
            sinks,
            max_sink_delay,
        }
    }

    /// Unbuffered Elmore arrival times (driver at the root only).
    pub fn elmore_delays(&self, device: &RepeaterDevice, driver_width: f64) -> TreeTiming {
        self.evaluate_buffered(device, driver_width, &vec![None; self.nodes.len()])
    }
}

/// Result of a buffered-tree evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeTiming {
    /// Elmore arrival time at each node (at the node's buffer *output*
    /// for buffered nodes), fs.
    pub arrival: Vec<f64>,
    /// Sink node indices (positive tap capacitance), ascending.
    pub sinks: Vec<usize>,
    /// Maximum arrival over all sinks, fs (−∞ when the tree has no
    /// sinks).
    pub max_sink_delay: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{evaluate, Repeater, RepeaterAssignment};
    use rip_net::{NetBuilder, Segment, TwoPinNet};
    use rip_tech::Technology;

    fn device() -> RepeaterDevice {
        *Technology::generic_180nm().device()
    }

    /// Builds the path-tree equivalent of a chain net with repeaters at
    /// the given positions, widths attached, sink = receiver input cap.
    fn path_tree(
        net: &TwoPinNet,
        dev: &RepeaterDevice,
        repeaters: &[(f64, f64)],
    ) -> (RcTree, Vec<Option<f64>>) {
        let mut tree = RcTree::with_root();
        let mut widths = vec![None];
        let mut prev_pos = 0.0;
        let mut prev_node = 0;
        for &(x, w) in repeaters {
            let wire = net.profile().interval(prev_pos, x);
            let node = tree.add_child(prev_node, wire, 0.0).unwrap();
            widths.push(Some(w));
            prev_pos = x;
            prev_node = node;
        }
        let wire = net.profile().interval(prev_pos, net.total_length());
        let sink = tree.add_child(prev_node, wire, 0.0).unwrap();
        widths.push(None);
        tree.set_sink_cap(sink, dev.input_cap(net.receiver_width()))
            .unwrap();
        (tree, widths)
    }

    fn chain_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(2000.0, 0.08, 0.20))
            .segment(Segment::new(2500.0, 0.06, 0.18))
            .segment(Segment::new(1800.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn path_tree_matches_chain_evaluation_unbuffered() {
        let net = chain_net();
        let dev = device();
        let (tree, widths) = path_tree(&net, &dev, &[]);
        let tree_delay = tree.evaluate_buffered(&dev, net.driver_width(), &widths);
        let chain = evaluate(&net, &dev, &RepeaterAssignment::empty());
        assert!(
            (tree_delay.max_sink_delay - chain.total_delay).abs() < 1e-6,
            "tree {} vs chain {}",
            tree_delay.max_sink_delay,
            chain.total_delay
        );
    }

    #[test]
    fn path_tree_matches_chain_evaluation_buffered() {
        let net = chain_net();
        let dev = device();
        let reps = [(1500.0, 90.0), (3600.0, 130.0), (5200.0, 70.0)];
        let (tree, widths) = path_tree(&net, &dev, &reps);
        let tree_delay = tree.evaluate_buffered(&dev, net.driver_width(), &widths);
        let asg = RepeaterAssignment::new(reps.iter().map(|&(x, w)| Repeater::new(x, w)).collect())
            .unwrap();
        let chain = evaluate(&net, &dev, &asg);
        assert!(
            (tree_delay.max_sink_delay - chain.total_delay).abs() < 1e-6,
            "tree {} vs chain {}",
            tree_delay.max_sink_delay,
            chain.total_delay
        );
    }

    #[test]
    fn branching_increases_upstream_load() {
        // Adding a second subtree at the branch point slows the first
        // sink (shared resistance drives more capacitance).
        let dev = device();
        let mut tree = RcTree::with_root();
        let branch = tree.add_uniform_child(0, 100.0, 300.0).unwrap();
        let s1 = tree.add_uniform_child(branch, 80.0, 200.0).unwrap();
        tree.set_sink_cap(s1, 40.0).unwrap();
        let before = tree.elmore_delays(&dev, 100.0).arrival[s1];

        let s2 = tree.add_uniform_child(branch, 90.0, 250.0).unwrap();
        tree.set_sink_cap(s2, 40.0).unwrap();
        let after = tree.elmore_delays(&dev, 100.0).arrival[s1];
        assert!(after > before, "{after} !> {before}");
    }

    #[test]
    fn buffer_isolates_side_branch() {
        // A buffer at the *head* of a heavy side branch hides the branch
        // capacitance from the main path: upstream only sees the buffer's
        // input cap instead of the 5000 fF branch wire.
        let dev = device();
        let mut tree = RcTree::with_root();
        let branch = tree.add_uniform_child(0, 100.0, 300.0).unwrap();
        let main_sink = tree.add_uniform_child(branch, 80.0, 200.0).unwrap();
        tree.set_sink_cap(main_sink, 40.0).unwrap();
        // Short stub to the branch head, then the heavy wire below it.
        let head = tree.add_uniform_child(branch, 1.0, 2.0).unwrap();
        let heavy = tree.add_uniform_child(head, 50.0, 5000.0).unwrap();
        tree.set_sink_cap(heavy, 40.0).unwrap();

        let unbuffered = tree.elmore_delays(&dev, 100.0).arrival[main_sink];
        let mut widths = vec![None; tree.len()];
        widths[head] = Some(30.0);
        let buffered = tree.evaluate_buffered(&dev, 100.0, &widths).arrival[main_sink];
        assert!(buffered < unbuffered, "{buffered} !< {unbuffered}");
    }

    #[test]
    fn sink_list_and_max_delay() {
        let dev = device();
        let mut tree = RcTree::with_root();
        let a = tree.add_uniform_child(0, 100.0, 300.0).unwrap();
        let near = tree.add_uniform_child(a, 10.0, 30.0).unwrap();
        let far = tree.add_uniform_child(a, 400.0, 900.0).unwrap();
        tree.set_sink_cap(near, 20.0).unwrap();
        tree.set_sink_cap(far, 20.0).unwrap();
        let timing = tree.elmore_delays(&dev, 100.0);
        assert_eq!(timing.sinks, vec![near, far]);
        assert_eq!(timing.max_sink_delay, timing.arrival[far]);
        assert!(timing.arrival[far] > timing.arrival[near]);
    }

    #[test]
    fn invalid_parent_is_rejected() {
        let mut tree = RcTree::with_root();
        assert!(matches!(
            tree.add_uniform_child(5, 1.0, 1.0),
            Err(DelayError::TreeNodeOutOfRange { node: 5, .. })
        ));
        assert!(tree.set_sink_cap(9, 1.0).is_err());
    }

    #[test]
    fn line_children_carry_lengths_and_distances() {
        let mut tree = RcTree::with_root();
        let a = tree.add_line_child(0, 0.08, 0.2, 2000.0).unwrap();
        let b = tree.add_line_child(a, 0.06, 0.18, 3000.0).unwrap();
        let c = tree.add_line_child(a, 0.08, 0.2, 1000.0).unwrap();
        assert_eq!(tree.wire_length(b), 3000.0);
        assert_eq!(tree.root_distance(b), 5000.0);
        assert_eq!(tree.root_distance(c), 3000.0);
        // Path b..c goes through their common ancestor a.
        assert_eq!(tree.path_distance(b, c), 4000.0);
        assert_eq!(tree.path_distance(b, b), 0.0);
        assert_eq!(tree.path_distance(0, b), 5000.0);
        // Electrical view matches the per-um parameters.
        assert!((tree.wire(a).resistance - 160.0).abs() < 1e-9);
        assert!((tree.wire(a).capacitance - 400.0).abs() < 1e-9);
    }

    #[test]
    fn subdivision_preserves_elmore_exactly() {
        let dev = device();
        let mut tree = RcTree::with_root();
        let a = tree.add_line_child(0, 0.08, 0.2, 2100.0).unwrap();
        let s1 = tree.add_line_child(a, 0.06, 0.18, 3050.0).unwrap();
        let s2 = tree.add_line_child(a, 0.08, 0.2, 990.0).unwrap();
        tree.set_sink_cap(s1, 40.0).unwrap();
        tree.set_sink_cap(s2, 55.0).unwrap();

        let before = tree.elmore_delays(&dev, 120.0);
        let (fine, map) = tree.subdivided(250.0);
        assert!(fine.len() > tree.len());
        let after = fine.elmore_delays(&dev, 120.0);
        for (&old, &new) in [s1, s2].iter().zip(&[map[s1], map[s2]]) {
            assert!(
                (before.arrival[old] - after.arrival[new]).abs() < 1e-6 * before.arrival[old],
                "subdivision changed sink delay: {} vs {}",
                before.arrival[old],
                after.arrival[new]
            );
        }
        // Sink caps moved with the mapping.
        assert_eq!(fine.sink_cap(map[s1]), 40.0);
        assert_eq!(fine.sink_cap(map[s2]), 55.0);
        // Piece lengths respect the step.
        for v in 1..fine.len() {
            assert!(fine.wire_length(v) <= 250.0 + 1e-9);
        }
    }

    #[test]
    fn subdivision_preserves_buffered_delay() {
        let dev = device();
        let mut tree = RcTree::with_root();
        let a = tree.add_line_child(0, 0.08, 0.2, 2000.0).unwrap();
        let s = tree.add_line_child(a, 0.06, 0.18, 3000.0).unwrap();
        tree.set_sink_cap(s, 60.0).unwrap();
        let mut widths = vec![None; tree.len()];
        widths[a] = Some(90.0);
        let before = tree.evaluate_buffered(&dev, 120.0, &widths);

        let (fine, map) = tree.subdivided(400.0);
        let mut fine_widths = vec![None; fine.len()];
        fine_widths[map[a]] = Some(90.0);
        let after = fine.evaluate_buffered(&dev, 120.0, &fine_widths);
        assert!((before.arrival[s] - after.arrival[map[s]]).abs() < 1e-6 * before.arrival[s]);
    }

    #[test]
    fn subdivision_of_lumped_edges_is_identity() {
        let mut tree = RcTree::with_root();
        let a = tree.add_uniform_child(0, 100.0, 300.0).unwrap();
        tree.set_sink_cap(a, 20.0).unwrap();
        let (fine, map) = tree.subdivided(10.0);
        assert_eq!(fine.len(), tree.len());
        assert_eq!(map[a], a);
        assert_eq!(fine.wire(a), tree.wire(a));
    }

    #[test]
    fn mask_projection_labels_images_and_edge_interiors() {
        let mut tree = RcTree::with_root();
        let a = tree.add_line_child(0, 0.08, 0.2, 900.0).unwrap(); // 3 pieces at 300
        let b = tree.add_line_child(a, 0.06, 0.18, 600.0).unwrap(); // 2 pieces
        let c = tree.add_line_child(a, 0.08, 0.2, 250.0).unwrap(); // 1 piece
        tree.set_sink_cap(b, 40.0).unwrap();
        tree.set_sink_cap(c, 40.0).unwrap();
        let (sub, map) = tree.subdivided(300.0);

        // Block `a`: its image, the interior of the root→a edge (both
        // endpoints legal? no — a is blocked) and the interiors of the
        // a→b / a→c edges are all illegal; images of b and c stay legal.
        let allowed = vec![true, false, true, true];
        let projected = tree.project_allowed(&sub, &map, &allowed);
        assert_eq!(projected.len(), sub.len());
        assert!(projected[0], "the root is always projected legal");
        assert!(!projected[map[a]], "the image of a blocked node is blocked");
        assert!(projected[map[b]] && projected[map[c]]);
        for (v, &ok) in projected.iter().enumerate().skip(1) {
            if v == map[a] || v == map[b] || v == map[c] {
                continue;
            }
            assert!(
                !ok,
                "Steiner point {v} borders the blocked node a and must be blocked"
            );
        }

        // Fully legal original nodes project to a fully legal subdivision.
        let all = tree.project_allowed(&sub, &map, &vec![true; tree.len()]);
        assert!(all.iter().all(|&ok| ok));

        // A blocked *root* entry is ignored: the first edge's interior
        // stays legal when its child endpoint is legal.
        let root_blocked = vec![false, true, true, true];
        let projected = tree.project_allowed(&sub, &map, &root_blocked);
        assert!(projected.iter().all(|&ok| ok));
    }

    #[test]
    fn mask_projection_keeps_unsplit_edges_aligned() {
        // Edges shorter than the step are copied unsplit, so projection
        // must reduce to the identity relabelling through `map`.
        let mut tree = RcTree::with_root();
        let a = tree.add_uniform_child(0, 100.0, 300.0).unwrap();
        let s = tree.add_uniform_child(a, 80.0, 200.0).unwrap();
        tree.set_sink_cap(s, 20.0).unwrap();
        let (sub, map) = tree.subdivided(10.0);
        let allowed = vec![true, false, true];
        let projected = tree.project_allowed(&sub, &map, &allowed);
        assert_eq!(projected, vec![true, false, true]);
        assert_eq!(map[a], a);
    }

    #[test]
    #[should_panic(expected = "one mask entry per node")]
    fn mask_projection_rejects_misaligned_masks() {
        let mut tree = RcTree::with_root();
        let s = tree.add_line_child(0, 0.08, 0.2, 500.0).unwrap();
        tree.set_sink_cap(s, 20.0).unwrap();
        let (sub, map) = tree.subdivided(100.0);
        let _ = tree.project_allowed(&sub, &map, &[true]);
    }

    #[test]
    #[should_panic(expected = "one width slot per node")]
    fn wrong_width_slot_count_panics() {
        let tree = RcTree::with_root();
        let dev = device();
        tree.evaluate_buffered(&dev, 100.0, &[None, None]);
    }
}
