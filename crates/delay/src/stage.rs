//! Elmore delay of a single repeater stage (Eq. 1 of the paper).
//!
//! A stage is a driving device (the net driver or a repeater) of width
//! `w`, the wire interval to the next device, and that device's input
//! capacitance as the load. With the interval's lumped view
//! `(R_ab, C_ab, D_ab)` from [`rip_net::RcProfile::interval`], Eq. (1)
//! becomes
//!
//! ```text
//! τ = Rs·Cp + (Rs/w)·(C_ab + C_load) + R_ab·C_load + D_ab
//! ```
//!
//! where `C_load = Co·w_next`. The two incremental pieces
//! ([`wire_added_delay`], [`buffer_added_delay`]) are what the DP engine
//! composes during its sink-to-source sweep.

use rip_net::IntervalRc;
use rip_tech::RepeaterDevice;

/// Full stage delay of Eq. (1), in fs.
///
/// * `device` — unit-repeater parameters (`Rs`, `Co`, `Cp`);
/// * `interval` — lumped wire view between the two devices;
/// * `driver_width` — width `w` of the driving device, in u;
/// * `load_cap_ff` — input capacitance of the receiving device, fF.
///
/// # Examples
///
/// ```
/// use rip_delay::stage_delay;
/// use rip_net::{RcProfile, Segment};
/// use rip_tech::RepeaterDevice;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let device = RepeaterDevice::new(6000.0, 1.8, 1.4)?;
/// let profile = RcProfile::new(&[Segment::new(1500.0, 0.08, 0.2)])?;
/// let interval = profile.interval(0.0, 1500.0);
/// let tau = stage_delay(&device, interval, 100.0, device.input_cap(100.0));
/// assert!(tau > 0.0);
/// # Ok(())
/// # }
/// ```
#[inline]
pub fn stage_delay(
    device: &RepeaterDevice,
    interval: IntervalRc,
    driver_width: f64,
    load_cap_ff: f64,
) -> f64 {
    device.intrinsic_delay()
        + device.output_resistance(driver_width) * (interval.capacitance + load_cap_ff)
        + interval.resistance * load_cap_ff
        + interval.elmore
}

/// Delay added when a DP option crosses a wire interval moving upstream:
/// the interval's internal Elmore term plus its resistance driving the
/// already-accumulated downstream load. In fs.
#[inline]
pub fn wire_added_delay(interval: IntervalRc, downstream_cap_ff: f64) -> f64 {
    interval.elmore + interval.resistance * downstream_cap_ff
}

/// Delay added when a repeater of width `w` is inserted in front of an
/// accumulated downstream load: the repeater's intrinsic delay plus its
/// output resistance driving that load. In fs.
#[inline]
pub fn buffer_added_delay(device: &RepeaterDevice, width: f64, downstream_cap_ff: f64) -> f64 {
    device.intrinsic_delay() + device.output_resistance(width) * downstream_cap_ff
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{RcProfile, Segment};

    fn device() -> RepeaterDevice {
        RepeaterDevice::new(6000.0, 1.8, 1.4).unwrap()
    }

    fn uniform_interval(l: f64) -> IntervalRc {
        let p = RcProfile::new(&[Segment::new(l, 0.08, 0.2)]).unwrap();
        p.interval(0.0, l)
    }

    #[test]
    fn stage_delay_matches_hand_computation() {
        // Uniform 1000 um wire, w = 100u driving a 50u repeater.
        // R = 80, C = 200, D = 80*200/2 = 8000.
        // tau = Rs*Cp + (Rs/100)*(200 + 1.8*50) + 80*(1.8*50) + 8000
        //     = 8400 + 60*290 + 7200 + 8000 = 41000.
        let d = device();
        let tau = stage_delay(&d, uniform_interval(1000.0), 100.0, d.input_cap(50.0));
        assert!((tau - 41_000.0).abs() < 1e-6, "tau = {tau}");
    }

    #[test]
    fn stage_delay_decomposes_into_dp_increments() {
        // The DP sweep composes wire_added_delay + buffer_added_delay;
        // together they must reproduce the full Eq. (1) stage delay.
        let d = device();
        let interval = uniform_interval(1800.0);
        let load = d.input_cap(80.0);
        let composed = wire_added_delay(interval, load)
            + buffer_added_delay(&d, 120.0, interval.capacitance + load);
        assert!((composed - stage_delay(&d, interval, 120.0, load)).abs() < 1e-9);
    }

    #[test]
    fn wider_driver_is_faster_same_load() {
        let d = device();
        let interval = uniform_interval(1500.0);
        let load = d.input_cap(60.0);
        let slow = stage_delay(&d, interval, 40.0, load);
        let fast = stage_delay(&d, interval, 160.0, load);
        assert!(fast < slow);
    }

    #[test]
    fn heavier_load_is_slower() {
        let d = device();
        let interval = uniform_interval(1500.0);
        let light = stage_delay(&d, interval, 100.0, d.input_cap(20.0));
        let heavy = stage_delay(&d, interval, 100.0, d.input_cap(200.0));
        assert!(heavy > light);
    }

    #[test]
    fn empty_interval_reduces_to_driver_terms() {
        let d = device();
        let interval = IntervalRc::default();
        let load = 100.0;
        let tau = stage_delay(&d, interval, 50.0, load);
        let expected = d.intrinsic_delay() + d.output_resistance(50.0) * load;
        assert!((tau - expected).abs() < 1e-12);
    }

    #[test]
    fn stage_delay_is_monotone_in_wire_length() {
        let d = device();
        let load = d.input_cap(100.0);
        let mut prev = 0.0;
        for l in [500.0, 1000.0, 2000.0, 4000.0] {
            let tau = stage_delay(&d, uniform_interval(l), 100.0, load);
            assert!(tau > prev);
            prev = tau;
        }
    }
}
