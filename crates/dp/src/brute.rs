//! Exhaustive reference solver for tiny instances.
//!
//! Enumerates *every* combination of candidate subset × width assignment
//! and evaluates each with the ground-truth Eq. (2) evaluator. Exponential
//! — usable only for cross-validating the DP engines on small instances
//! (the test suites do exactly that), or for users validating custom
//! setups.

use crate::candidates::CandidateSet;
use crate::chain::{DpSolution, DpStats};
use crate::error::DpError;
use crate::tree::TreeSolution;
use rip_delay::{evaluate, RcTree, Repeater, RepeaterAssignment};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};

/// Hard cap on the number of evaluated combinations
/// (`(library + 1) ^ candidates`).
const MAX_COMBINATIONS: f64 = 5.0e7;

/// Exhaustive minimum-delay search.
///
/// # Panics
///
/// Panics when `(library.len() + 1) ^ candidates.len()` exceeds the
/// internal combination cap — this is a test oracle, not a production
/// solver.
pub fn brute_min_delay(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
) -> DpSolution {
    let mut best: Option<DpSolution> = None;
    for_each_combination(net, device, library, candidates, |sol| {
        let better = match &best {
            None => true,
            Some(b) => {
                sol.delay_fs < b.delay_fs - 1e-12
                    || ((sol.delay_fs - b.delay_fs).abs() <= 1e-12
                        && sol.total_width < b.total_width)
            }
        };
        if better {
            best = Some(sol);
        }
    });
    best.expect("the unbuffered combination always exists")
}

/// Exhaustive minimum-power search under a timing target.
///
/// # Errors
///
/// Returns [`DpError::InfeasibleTarget`] when no combination meets the
/// target.
///
/// # Panics
///
/// Panics when the combination count exceeds the internal cap.
pub fn brute_min_power(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    target_fs: f64,
) -> Result<DpSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    let mut best: Option<DpSolution> = None;
    let mut fastest = f64::INFINITY;
    for_each_combination(net, device, library, candidates, |sol| {
        fastest = fastest.min(sol.delay_fs);
        if sol.delay_fs > target_fs {
            return;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                sol.total_width < b.total_width - 1e-12
                    || ((sol.total_width - b.total_width).abs() <= 1e-12
                        && sol.delay_fs < b.delay_fs)
            }
        };
        if better {
            best = Some(sol);
        }
    });
    best.ok_or(DpError::InfeasibleTarget {
        target_fs,
        achievable_fs: fastest,
    })
}

/// Exhaustive minimum-delay buffering of an RC tree, restricted to the
/// nodes an optional legality mask allows — the tree counterpart of
/// [`brute_min_delay`], and the ground-truth oracle the masked tree DP
/// is cross-validated against.
///
/// * `allowed` — optional per-node mask aligned to `tree` (the root
///   entry is ignored; buffers are never placed at the root).
///
/// # Errors
///
/// Returns [`DpError::BadAllowedMask`] for a mask of the wrong length.
///
/// # Panics
///
/// Panics when `(library.len() + 1) ^ legal_nodes` exceeds the internal
/// combination cap — this is a test oracle, not a production solver.
pub fn brute_tree_min_delay(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
) -> Result<TreeSolution, DpError> {
    let mut best: Option<TreeSolution> = None;
    for_each_tree_combination(tree, device, driver_width, library, allowed, |sol| {
        let better = match &best {
            None => true,
            Some(b) => {
                sol.delay_fs < b.delay_fs - 1e-12
                    || ((sol.delay_fs - b.delay_fs).abs() <= 1e-12
                        && sol.total_width < b.total_width)
            }
        };
        if better {
            best = Some(sol);
        }
    })?;
    Ok(best.expect("the bufferless combination always exists"))
}

/// Exhaustive minimum-power tree buffering under a timing target,
/// restricted to the legal nodes — "optimal power at equal delay"
/// ground truth for masked tree solves.
///
/// # Errors
///
/// * [`DpError::InvalidTarget`] for a bad target;
/// * [`DpError::InfeasibleTarget`] when no legal combination meets it;
/// * [`DpError::BadAllowedMask`] for a mask of the wrong length.
///
/// # Panics
///
/// Panics when the combination count exceeds the internal cap.
pub fn brute_tree_min_power(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    target_fs: f64,
) -> Result<TreeSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    let mut best: Option<TreeSolution> = None;
    let mut fastest = f64::INFINITY;
    for_each_tree_combination(tree, device, driver_width, library, allowed, |sol| {
        fastest = fastest.min(sol.delay_fs);
        if sol.delay_fs > target_fs {
            return;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                sol.total_width < b.total_width - 1e-12
                    || ((sol.total_width - b.total_width).abs() <= 1e-12
                        && sol.delay_fs < b.delay_fs)
            }
        };
        if better {
            best = Some(sol);
        }
    })?;
    best.ok_or(DpError::InfeasibleTarget {
        target_fs,
        achievable_fs: fastest,
    })
}

/// Enumerates every width assignment over the legal non-root nodes;
/// calls `visit` with each evaluated tree solution.
fn for_each_tree_combination(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    mut visit: impl FnMut(TreeSolution),
) -> Result<(), DpError> {
    if let Some(mask) = allowed {
        if mask.len() != tree.len() {
            return Err(DpError::BadAllowedMask {
                got: mask.len(),
                expected: tree.len(),
            });
        }
    }
    let sites: Vec<usize> = (1..tree.len())
        .filter(|&v| allowed.map_or(true, |m| m[v]))
        .collect();
    let base = library.len() + 1; // widths + "no buffer here"
    let combos = (base as f64).powi(sites.len() as i32);
    assert!(
        combos <= MAX_COMBINATIONS,
        "brute force limited to {MAX_COMBINATIONS} combinations, requested {combos}"
    );
    let mut digits = vec![0usize; sites.len()];
    loop {
        let mut buffer_widths: Vec<Option<f64>> = vec![None; tree.len()];
        let mut total_width = 0.0;
        for (&site, &d) in sites.iter().zip(&digits) {
            if d > 0 {
                let w = library.widths()[d - 1];
                buffer_widths[site] = Some(w);
                total_width += w;
            }
        }
        let timing = tree.evaluate_buffered(device, driver_width, &buffer_widths);
        visit(TreeSolution {
            buffer_widths,
            delay_fs: timing.max_sink_delay,
            total_width,
            stats: DpStats::default(),
        });
        let mut i = 0;
        loop {
            if i == sites.len() {
                return Ok(());
            }
            digits[i] += 1;
            if digits[i] < base {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

/// Enumerates all combinations; calls `visit` with each evaluated
/// solution.
fn for_each_combination(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    mut visit: impl FnMut(DpSolution),
) {
    let n = candidates.len();
    let base = library.len() + 1; // widths + "no repeater here"
    let combos = (base as f64).powi(n as i32);
    assert!(
        combos <= MAX_COMBINATIONS,
        "brute force limited to {MAX_COMBINATIONS} combinations, requested {combos}"
    );
    // Mixed-radix counter: digit i selects "none" (0) or library width
    // index+1 for candidate i.
    let mut digits = vec![0usize; n];
    loop {
        let repeaters: Vec<Repeater> = digits
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, &d)| Repeater::new(candidates.positions()[i], library.widths()[d - 1]))
            .collect();
        let assignment =
            RepeaterAssignment::new(repeaters).expect("enumerated repeaters are valid");
        let total_width = assignment.total_width();
        let timing = evaluate(net, device, &assignment);
        visit(DpSolution {
            assignment,
            delay_fs: timing.total_delay,
            total_width,
            stats: DpStats::default(),
        });
        // Increment the counter.
        let mut i = 0;
        loop {
            if i == n {
                return;
            }
            digits[i] += 1;
            if digits[i] < base {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{solve_min_delay, solve_min_power};
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tiny_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .segment(Segment::new(3000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn dp_min_delay_matches_brute_force() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        let cands =
            CandidateSet::from_positions(&net, vec![1000.0, 2500.0, 3500.0, 5000.0]).unwrap();
        let dp = solve_min_delay(&net, tech.device(), &lib, &cands);
        let brute = brute_min_delay(&net, tech.device(), &lib, &cands);
        assert!(
            (dp.delay_fs - brute.delay_fs).abs() < 1e-6,
            "dp {} vs brute {}",
            dp.delay_fs,
            brute.delay_fs
        );
        assert_eq!(dp.assignment, brute.assignment);
    }

    #[test]
    fn dp_min_power_matches_brute_force_across_targets() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        let cands =
            CandidateSet::from_positions(&net, vec![1000.0, 2500.0, 3500.0, 5000.0]).unwrap();
        let fastest = brute_min_delay(&net, tech.device(), &lib, &cands);
        for mult in [1.01, 1.1, 1.3, 1.7, 2.2] {
            let target = fastest.delay_fs * mult;
            let dp = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            let brute = brute_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            assert!(
                (dp.total_width - brute.total_width).abs() < 1e-9,
                "mult {mult}: dp width {} vs brute {}",
                dp.total_width,
                brute.total_width
            );
            assert!(dp.meets(target));
        }
    }

    #[test]
    fn both_report_infeasible_identically() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::from_widths([40.0]).unwrap();
        let cands = CandidateSet::from_positions(&net, vec![2000.0, 4000.0]).unwrap();
        let fastest = brute_min_delay(&net, tech.device(), &lib, &cands);
        let target = fastest.delay_fs * 0.9;
        let dp_err = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap_err();
        let brute_err = brute_min_power(&net, tech.device(), &lib, &cands, target).unwrap_err();
        match (dp_err, brute_err) {
            (
                DpError::InfeasibleTarget {
                    achievable_fs: a, ..
                },
                DpError::InfeasibleTarget {
                    achievable_fs: b, ..
                },
            ) => assert!((a - b).abs() < 1e-6),
            other => panic!("unexpected errors {other:?}"),
        }
    }

    fn tiny_tree(dev: &RepeaterDevice) -> RcTree {
        let mut tree = RcTree::with_root();
        let trunk = tree.add_uniform_child(0, 400.0, 1200.0).unwrap();
        let s1 = tree.add_uniform_child(trunk, 300.0, 800.0).unwrap();
        let s2 = tree.add_uniform_child(trunk, 500.0, 1500.0).unwrap();
        tree.set_sink_cap(s1, dev.input_cap(60.0)).unwrap();
        tree.set_sink_cap(s2, dev.input_cap(40.0)).unwrap();
        tree
    }

    #[test]
    fn masked_tree_dp_matches_brute_force() {
        let tech = Technology::generic_180nm();
        let dev = tech.device();
        let tree = tiny_tree(dev);
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        for mask in [
            vec![true, true, true, true],
            vec![true, false, true, true],
            vec![true, true, false, false],
        ] {
            let fastest = brute_tree_min_delay(&tree, dev, 120.0, &lib, Some(&mask)).unwrap();
            let dp_fastest = crate::tree_min_delay(&tree, dev, 120.0, &lib, Some(&mask)).unwrap();
            assert!(
                (fastest.delay_fs - dp_fastest.delay_fs).abs() < 1e-6,
                "mask {mask:?}: brute {} vs dp {}",
                fastest.delay_fs,
                dp_fastest.delay_fs
            );
            for mult in [1.05, 1.3, 1.8] {
                let target = fastest.delay_fs * mult;
                let brute =
                    brute_tree_min_power(&tree, dev, 120.0, &lib, Some(&mask), target).unwrap();
                let dp =
                    crate::tree_min_power(&tree, dev, 120.0, &lib, Some(&mask), target).unwrap();
                assert!(
                    (brute.total_width - dp.total_width).abs() < 1e-9,
                    "mask {mask:?} mult {mult}: brute width {} vs dp {}",
                    brute.total_width,
                    dp.total_width
                );
                for (v, &ok) in mask.iter().enumerate() {
                    assert!(ok || brute.buffer_widths[v].is_none());
                    assert!(ok || dp.buffer_widths[v].is_none());
                }
            }
        }
    }

    #[test]
    fn all_blocked_tree_is_bufferless() {
        let tech = Technology::generic_180nm();
        let dev = tech.device();
        let tree = tiny_tree(dev);
        let lib = RepeaterLibrary::from_widths([40.0, 120.0]).unwrap();
        let mask = vec![false; tree.len()];
        let sol = brute_tree_min_delay(&tree, dev, 120.0, &lib, Some(&mask)).unwrap();
        assert!(sol.buffer_widths.iter().all(Option::is_none));
        assert_eq!(sol.total_width, 0.0);
        // An unreachable target under the all-blocked mask is a typed
        // infeasibility carrying the bufferless delay.
        let err = brute_tree_min_power(&tree, dev, 120.0, &lib, Some(&mask), sol.delay_fs * 0.5)
            .unwrap_err();
        match err {
            DpError::InfeasibleTarget { achievable_fs, .. } => {
                assert_eq!(achievable_fs.to_bits(), sol.delay_fs.to_bits());
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Misaligned masks are rejected, not mis-indexed.
        assert!(matches!(
            brute_tree_min_delay(&tree, dev, 120.0, &lib, Some(&[true])),
            Err(DpError::BadAllowedMask { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn combination_cap_trips() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);
        brute_min_delay(&net, tech.device(), &lib, &cands);
    }
}
