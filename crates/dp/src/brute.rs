//! Exhaustive reference solver for tiny instances.
//!
//! Enumerates *every* combination of candidate subset × width assignment
//! and evaluates each with the ground-truth Eq. (2) evaluator. Exponential
//! — usable only for cross-validating the DP engines on small instances
//! (the test suites do exactly that), or for users validating custom
//! setups.

use crate::candidates::CandidateSet;
use crate::chain::{DpSolution, DpStats};
use crate::error::DpError;
use rip_delay::{evaluate, Repeater, RepeaterAssignment};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};

/// Hard cap on the number of evaluated combinations
/// (`(library + 1) ^ candidates`).
const MAX_COMBINATIONS: f64 = 5.0e7;

/// Exhaustive minimum-delay search.
///
/// # Panics
///
/// Panics when `(library.len() + 1) ^ candidates.len()` exceeds the
/// internal combination cap — this is a test oracle, not a production
/// solver.
pub fn brute_min_delay(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
) -> DpSolution {
    let mut best: Option<DpSolution> = None;
    for_each_combination(net, device, library, candidates, |sol| {
        let better = match &best {
            None => true,
            Some(b) => {
                sol.delay_fs < b.delay_fs - 1e-12
                    || ((sol.delay_fs - b.delay_fs).abs() <= 1e-12
                        && sol.total_width < b.total_width)
            }
        };
        if better {
            best = Some(sol);
        }
    });
    best.expect("the unbuffered combination always exists")
}

/// Exhaustive minimum-power search under a timing target.
///
/// # Errors
///
/// Returns [`DpError::InfeasibleTarget`] when no combination meets the
/// target.
///
/// # Panics
///
/// Panics when the combination count exceeds the internal cap.
pub fn brute_min_power(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    target_fs: f64,
) -> Result<DpSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    let mut best: Option<DpSolution> = None;
    let mut fastest = f64::INFINITY;
    for_each_combination(net, device, library, candidates, |sol| {
        fastest = fastest.min(sol.delay_fs);
        if sol.delay_fs > target_fs {
            return;
        }
        let better = match &best {
            None => true,
            Some(b) => {
                sol.total_width < b.total_width - 1e-12
                    || ((sol.total_width - b.total_width).abs() <= 1e-12
                        && sol.delay_fs < b.delay_fs)
            }
        };
        if better {
            best = Some(sol);
        }
    });
    best.ok_or(DpError::InfeasibleTarget {
        target_fs,
        achievable_fs: fastest,
    })
}

/// Enumerates all combinations; calls `visit` with each evaluated
/// solution.
fn for_each_combination(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    mut visit: impl FnMut(DpSolution),
) {
    let n = candidates.len();
    let base = library.len() + 1; // widths + "no repeater here"
    let combos = (base as f64).powi(n as i32);
    assert!(
        combos <= MAX_COMBINATIONS,
        "brute force limited to {MAX_COMBINATIONS} combinations, requested {combos}"
    );
    // Mixed-radix counter: digit i selects "none" (0) or library width
    // index+1 for candidate i.
    let mut digits = vec![0usize; n];
    loop {
        let repeaters: Vec<Repeater> = digits
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, &d)| Repeater::new(candidates.positions()[i], library.widths()[d - 1]))
            .collect();
        let assignment =
            RepeaterAssignment::new(repeaters).expect("enumerated repeaters are valid");
        let total_width = assignment.total_width();
        let timing = evaluate(net, device, &assignment);
        visit(DpSolution {
            assignment,
            delay_fs: timing.total_delay,
            total_width,
            stats: DpStats::default(),
        });
        // Increment the counter.
        let mut i = 0;
        loop {
            if i == n {
                return;
            }
            digits[i] += 1;
            if digits[i] < base {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{solve_min_delay, solve_min_power};
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tiny_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .segment(Segment::new(3000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn dp_min_delay_matches_brute_force() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        let cands =
            CandidateSet::from_positions(&net, vec![1000.0, 2500.0, 3500.0, 5000.0]).unwrap();
        let dp = solve_min_delay(&net, tech.device(), &lib, &cands);
        let brute = brute_min_delay(&net, tech.device(), &lib, &cands);
        assert!(
            (dp.delay_fs - brute.delay_fs).abs() < 1e-6,
            "dp {} vs brute {}",
            dp.delay_fs,
            brute.delay_fs
        );
        assert_eq!(dp.assignment, brute.assignment);
    }

    #[test]
    fn dp_min_power_matches_brute_force_across_targets() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        let cands =
            CandidateSet::from_positions(&net, vec![1000.0, 2500.0, 3500.0, 5000.0]).unwrap();
        let fastest = brute_min_delay(&net, tech.device(), &lib, &cands);
        for mult in [1.01, 1.1, 1.3, 1.7, 2.2] {
            let target = fastest.delay_fs * mult;
            let dp = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            let brute = brute_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            assert!(
                (dp.total_width - brute.total_width).abs() < 1e-9,
                "mult {mult}: dp width {} vs brute {}",
                dp.total_width,
                brute.total_width
            );
            assert!(dp.meets(target));
        }
    }

    #[test]
    fn both_report_infeasible_identically() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::from_widths([40.0]).unwrap();
        let cands = CandidateSet::from_positions(&net, vec![2000.0, 4000.0]).unwrap();
        let fastest = brute_min_delay(&net, tech.device(), &lib, &cands);
        let target = fastest.delay_fs * 0.9;
        let dp_err = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap_err();
        let brute_err = brute_min_power(&net, tech.device(), &lib, &cands, target).unwrap_err();
        match (dp_err, brute_err) {
            (
                DpError::InfeasibleTarget {
                    achievable_fs: a, ..
                },
                DpError::InfeasibleTarget {
                    achievable_fs: b, ..
                },
            ) => assert!((a - b).abs() < 1e-6),
            other => panic!("unexpected errors {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn combination_cap_trips() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);
        brute_min_delay(&net, tech.device(), &lib, &cands);
    }
}
