//! Validated candidate-position sets for the DP engines.

use crate::error::DpError;
use rip_net::{sort_dedup_positions, uniform_candidates, window_candidates, TwoPinNet};

/// A validated, strictly ascending set of legal candidate repeater
/// positions on a specific net.
///
/// # Examples
///
/// ```
/// use rip_dp::CandidateSet;
/// use rip_net::{NetBuilder, Segment};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = NetBuilder::new()
///     .segment(Segment::new(4000.0, 0.08, 0.2))
///     .forbidden_zone(1500.0, 2500.0)?
///     .build()?;
/// // The paper's uniform 200 µm grid, zone-aware:
/// let cands = CandidateSet::uniform(&net, 200.0);
/// assert!(cands.positions().iter().all(|&x| net.is_legal_position(x)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    positions: Vec<f64>,
}

impl CandidateSet {
    /// Builds the uniform grid of the paper's DP runs (Section 6):
    /// multiples of `step_um` strictly inside the net, excluding
    /// forbidden-zone interiors.
    pub fn uniform(net: &TwoPinNet, step_um: f64) -> Self {
        Self {
            positions: uniform_candidates(net, step_um),
        }
    }

    /// Builds RIP's windowed candidate set (Fig. 6, Line 3): positions
    /// around each center at the given granularity (paper:
    /// `half_slots = 10`, `step_um = 50`).
    pub fn windows(net: &TwoPinNet, centers: &[f64], half_slots: usize, step_um: f64) -> Self {
        Self {
            positions: window_candidates(net, centers, half_slots, step_um),
        }
    }

    /// Builds a candidate set from explicit positions, validating
    /// legality against the net. Positions are sorted and deduplicated
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::IllegalCandidate`] for positions outside the
    /// open span or strictly inside a forbidden zone.
    pub fn from_positions(net: &TwoPinNet, positions: Vec<f64>) -> Result<Self, DpError> {
        let mut positions = positions;
        sort_dedup_positions(&mut positions);
        for &x in &positions {
            if !net.is_legal_position(x) {
                return Err(DpError::IllegalCandidate { position: x });
            }
        }
        Ok(Self { positions })
    }

    /// The candidate positions, strictly ascending, µm.
    #[inline]
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when no candidate positions exist (the DP then only
    /// considers the unbuffered solution).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment};

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.2))
            .forbidden_zone(1500.0, 2500.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_respects_zones() {
        let net = net();
        let c = CandidateSet::uniform(&net, 200.0);
        assert!(!c.is_empty());
        assert!(c.positions().iter().all(|&x| net.is_legal_position(x)));
        // 1600..2400 are inside the zone.
        assert!(!c.positions().contains(&1600.0));
        assert!(!c.positions().contains(&2400.0));
    }

    #[test]
    fn from_positions_validates() {
        let net = net();
        assert!(CandidateSet::from_positions(&net, vec![100.0, 3900.0]).is_ok());
        assert!(matches!(
            CandidateSet::from_positions(&net, vec![2000.0]),
            Err(DpError::IllegalCandidate { .. })
        ));
        assert!(matches!(
            CandidateSet::from_positions(&net, vec![4000.0]),
            Err(DpError::IllegalCandidate { .. })
        ));
    }

    #[test]
    fn from_positions_sorts_and_dedups() {
        let net = net();
        let c = CandidateSet::from_positions(&net, vec![900.0, 300.0, 900.0]).unwrap();
        assert_eq!(c.positions(), &[300.0, 900.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn windows_delegate_to_net_layer() {
        let net = net();
        let c = CandidateSet::windows(&net, &[1000.0], 2, 50.0);
        assert_eq!(c.positions(), &[900.0, 950.0, 1000.0, 1050.0, 1100.0]);
    }
}
