//! Chain DP engines: van Ginneken \[11\] (min-delay) and Lillis \[14\]
//! (min-power-under-delay), on non-uniform multi-layer two-pin nets with
//! forbidden zones.
//!
//! The sweep runs sink → source over the candidate positions. Each option
//! records the downstream load `cap`, the downstream delay `delay`, and —
//! in power mode — the accumulated repeater width `width` (the paper's
//! power objective, Eq. 4). Crossing a wire interval `(a, b)` updates
//! `delay += D_ab + R_ab·cap; cap += C_ab`; inserting a repeater of width
//! `w` yields `delay += Rs·Cp + (Rs/w)·cap; cap = Co·w; width += w`.
//! Dominated options are pruned after every candidate (2D in delay mode,
//! 3D in power mode — the pseudo-polynomial frontier the paper's
//! Section 2 discusses).
//!
//! Options live in the sorted struct-of-arrays frontier of
//! [`crate::frontier`]: the surviving set stays sorted by capacitance,
//! fresh insertion options arrive pre-bucketed by library width, and
//! each prune is a single linear merge instead of a full re-sort. All
//! working memory comes from a reusable [`DpScratch`], so the `_with`
//! entry points ([`solve_min_power_with`] etc.) allocate nothing after
//! warm-up; the plain free functions draw from a thread-local scratch.
//! The seed implementation survives in [`crate::reference`] and the
//! test suite pins both to byte-identical solutions.

use crate::candidates::CandidateSet;
use crate::error::DpError;
use crate::frontier::{
    merge_prune_2d, merge_prune_3d, reduce_bucket_2d, reduce_bucket_3d, BucketItem, DpScratch,
    OptionBuf,
};
use crate::options::{TraceArena, TRACE_ROOT};
use rip_delay::{buffer_added_delay, wire_added_delay, Repeater, RepeaterAssignment};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};
use std::cell::RefCell;
use std::cmp::Ordering;

/// Optimization objective of a DP run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize source-to-sink Elmore delay (van Ginneken); used to
    /// compute `τ_min` for the paper's timing targets.
    MinDelay,
    /// Minimize total repeater width subject to `delay ≤ target` fs
    /// (Lillis-style power mode; the paper's Problem LPRI).
    MinPowerUnderDelay {
        /// Timing target `τ_t`, fs.
        target_fs: f64,
    },
}

/// Counters describing the work a DP run performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DpStats {
    /// Candidate positions considered.
    pub candidates: usize,
    /// Library widths considered.
    pub library_size: usize,
    /// Total options created across the sweep (before pruning).
    pub options_created: u64,
    /// Largest surviving option set after any prune.
    pub options_peak: usize,
    /// Traceback nodes materialized (options that survived pruning with a
    /// fresh insertion decision).
    pub trace_nodes: usize,
}

/// Result of a DP run.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// The chosen repeater insertion solution.
    pub assignment: RepeaterAssignment,
    /// Its total Elmore delay (Eq. 2), fs.
    pub delay_fs: f64,
    /// Its total repeater width `Σwᵢ` (the power objective of Eq. 4), u.
    pub total_width: f64,
    /// Work counters.
    pub stats: DpStats,
}

impl DpSolution {
    /// Returns `true` when the solution meets a timing target (with a
    /// hair of tolerance for float noise).
    pub fn meets(&self, target_fs: f64) -> bool {
        self.delay_fs <= target_fs * (1.0 + 1e-12)
    }
}

thread_local! {
    /// Scratch backing the free functions: one per thread, reused across
    /// calls so even scratch-unaware callers stop allocating after their
    /// first solve on a thread.
    static SCRATCH: RefCell<DpScratch> = RefCell::new(DpScratch::new());
}

/// Minimum-delay repeater insertion (van Ginneken over the candidate
/// grid). Always succeeds: the unbuffered solution is in the search
/// space.
///
/// Uses a thread-local [`DpScratch`]; batch callers that manage their
/// own scratch (or pool scratches across threads, like
/// `rip_core::Engine`) should prefer [`solve_min_delay_with`].
///
/// # Examples
///
/// ```
/// use rip_dp::{solve_min_delay, CandidateSet};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::{RepeaterLibrary, Technology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(12_000.0, 0.08, 0.2))
///     .build()?;
/// let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0)?;
/// let cands = CandidateSet::uniform(&net, 200.0);
/// let fastest = solve_min_delay(&net, tech.device(), &lib, &cands);
/// assert!(!fastest.assignment.is_empty()); // a 12 mm net wants repeaters
/// # Ok(())
/// # }
/// ```
pub fn solve_min_delay(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
) -> DpSolution {
    SCRATCH.with(|s| solve_min_delay_with(&mut s.borrow_mut(), net, device, library, candidates))
}

/// [`solve_min_delay`] with caller-provided scratch memory.
pub fn solve_min_delay_with(
    scratch: &mut DpScratch,
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
) -> DpSolution {
    let stats = sweep(
        net,
        device,
        library,
        candidates,
        Objective::MinDelay,
        scratch,
    );
    // Smallest delay; break ties towards less width, then towards the
    // earliest record (matching the reference pruner's stable sort).
    let cur = &scratch.cur;
    let mut best = 0usize;
    for i in 1..cur.len() {
        let better = match cur.delay[i]
            .partial_cmp(&cur.delay[best])
            .expect("finite delays")
        {
            Ordering::Less => true,
            Ordering::Equal => cur.width[i] < cur.width[best],
            Ordering::Greater => false,
        };
        if better {
            best = i;
        }
    }
    debug_assert!(cur.len() > 0, "the unbuffered option always exists");
    materialize(cur, best, &scratch.arena, stats)
}

/// Minimum-power repeater insertion under a timing target (Lillis-style
/// power-mode DP; the baseline scheme \[14\] of the paper's experiments).
///
/// Uses a thread-local [`DpScratch`]; batch callers should prefer
/// [`solve_min_power_with`].
///
/// # Errors
///
/// * [`DpError::InvalidTarget`] for a non-positive/non-finite target;
/// * [`DpError::InfeasibleTarget`] when no solution over this library and
///   candidate set meets the target — the error carries the minimum
///   achievable delay so callers can report the paper's `V_DP` timing
///   violations.
pub fn solve_min_power(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    target_fs: f64,
) -> Result<DpSolution, DpError> {
    SCRATCH.with(|s| {
        solve_min_power_with(
            &mut s.borrow_mut(),
            net,
            device,
            library,
            candidates,
            target_fs,
        )
    })
}

/// [`solve_min_power`] with caller-provided scratch memory.
///
/// # Errors
///
/// See [`solve_min_power`].
pub fn solve_min_power_with(
    scratch: &mut DpScratch,
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    target_fs: f64,
) -> Result<DpSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    let objective = Objective::MinPowerUnderDelay { target_fs };
    let stats = sweep(net, device, library, candidates, objective, scratch);
    // Least total width among target-meeting options; break ties towards
    // less delay, then towards the earliest record.
    let cur = &scratch.cur;
    let mut best: Option<usize> = None;
    for i in 0..cur.len() {
        if cur.delay[i] > target_fs {
            continue;
        }
        let Some(b) = best else {
            best = Some(i);
            continue;
        };
        let better = match cur.width[i]
            .partial_cmp(&cur.width[b])
            .expect("finite widths")
        {
            Ordering::Less => true,
            Ordering::Equal => cur.delay[i] < cur.delay[b],
            Ordering::Greater => false,
        };
        if better {
            best = Some(i);
        }
    }
    match best {
        Some(i) => Ok(materialize(cur, i, &scratch.arena, stats)),
        None => {
            let fastest = solve_min_delay_with(scratch, net, device, library, candidates);
            Err(DpError::InfeasibleTarget {
                target_fs,
                achievable_fs: fastest.delay_fs,
            })
        }
    }
}

/// Runs an objective-appropriate DP: delegates to [`solve_min_delay`] or
/// [`solve_min_power`].
///
/// # Errors
///
/// See [`solve_min_power`]; the min-delay objective never fails.
pub fn solve(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    objective: Objective,
) -> Result<DpSolution, DpError> {
    match objective {
        Objective::MinDelay => Ok(solve_min_delay(net, device, library, candidates)),
        Objective::MinPowerUnderDelay { target_fs } => {
            solve_min_power(net, device, library, candidates, target_fs)
        }
    }
}

/// [`solve`] with caller-provided scratch memory.
///
/// # Errors
///
/// See [`solve_min_power`]; the min-delay objective never fails.
pub fn solve_with(
    scratch: &mut DpScratch,
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    objective: Objective,
) -> Result<DpSolution, DpError> {
    match objective {
        Objective::MinDelay => Ok(solve_min_delay_with(
            scratch, net, device, library, candidates,
        )),
        Objective::MinPowerUnderDelay { target_fs } => {
            solve_min_power_with(scratch, net, device, library, candidates, target_fs)
        }
    }
}

fn materialize(cur: &OptionBuf, best: usize, arena: &TraceArena, stats: DpStats) -> DpSolution {
    debug_assert!(
        cur.pending[best].is_nan(),
        "final options never carry pending inserts"
    );
    let repeaters: Vec<Repeater> = arena
        .collect(cur.trace[best])
        .into_iter()
        .map(|(x, w)| Repeater::new(x, w))
        .collect();
    let assignment = RepeaterAssignment::new(repeaters).expect("DP traces are valid assignments");
    DpSolution {
        assignment,
        delay_fs: cur.delay[best],
        total_width: cur.width[best],
        stats,
    }
}

/// The sink→source sweep shared by both objectives. Leaves the final
/// option frontier (with *total* delays, i.e. the driver stage applied)
/// in `scratch.cur` and the traceback in `scratch.arena`; returns the
/// work counters.
fn sweep(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    objective: Objective,
    scratch: &mut DpScratch,
) -> DpStats {
    scratch.reset();
    let profile = net.profile();
    let target = match objective {
        Objective::MinDelay => None,
        Objective::MinPowerUnderDelay { target_fs } => Some(target_fs),
    };
    let mut stats = DpStats {
        candidates: candidates.len(),
        library_size: library.len(),
        ..DpStats::default()
    };
    scratch.cur.push(
        device.input_cap(net.receiver_width()),
        0.0,
        0.0,
        TRACE_ROOT,
        f64::NAN,
    );
    stats.options_created = 1;

    let mut prev_pos = net.total_length();
    for &x in candidates.positions().iter().rev() {
        // Cross the wire from this candidate to the previous stop. The
        // constant capacitance shift and within-equal-cap-uniform delay
        // shift preserve the frontier's sort order.
        let wire = profile.interval(x, prev_pos);
        {
            let cur = &mut scratch.cur;
            for i in 0..cur.len() {
                cur.delay[i] += wire_added_delay(wire, cur.cap[i]);
                cur.cap[i] += wire.capacitance;
            }
        }
        if let Some(t) = target {
            // Upstream delay only grows; over-target options are dead.
            scratch.cur.retain_delay_le(t);
        }

        // Option to insert each library width here, bucketed per width:
        // each bucket shares the load `C_in(w)` and is reduced to its
        // sorted sub-frontier before the global merge.
        scratch.fresh.clear();
        let mut created = scratch.cur.len() as u64;
        for &w in library.widths() {
            let new_cap = device.input_cap(w);
            scratch.bucket.clear();
            let cur = &scratch.cur;
            for i in 0..cur.len() {
                let delay = cur.delay[i] + buffer_added_delay(device, w, cur.cap[i]);
                if target.is_some_and(|t| delay > t) {
                    continue;
                }
                scratch.bucket.push(BucketItem {
                    delay,
                    width: cur.width[i] + w,
                    trace: cur.trace[i],
                    seq: scratch.bucket.len() as u32,
                });
            }
            created += scratch.bucket.len() as u64;
            let (bucket, fresh) = (&mut scratch.bucket, &mut scratch.fresh);
            match objective {
                Objective::MinDelay => reduce_bucket_2d(bucket, |item| {
                    fresh.push(new_cap, item.delay, item.width, item.trace, w);
                }),
                Objective::MinPowerUnderDelay { .. } => reduce_bucket_3d(bucket, |item| {
                    fresh.push(new_cap, item.delay, item.width, item.trace, w);
                }),
            }
        }
        stats.options_created += created;

        match objective {
            Objective::MinDelay => {
                merge_prune_2d(&mut scratch.cur, &scratch.fresh, &mut scratch.merged);
            }
            Objective::MinPowerUnderDelay { .. } => merge_prune_3d(
                &mut scratch.cur,
                &scratch.fresh,
                &mut scratch.merged,
                &mut scratch.stairs,
            ),
        }

        // Materialize traces only for surviving fresh insertions.
        {
            let cur = &mut scratch.cur;
            for i in 0..cur.len() {
                let pending = cur.pending[i];
                if !pending.is_nan() {
                    cur.trace[i] = scratch.arena.push(x, pending, cur.trace[i]);
                    cur.pending[i] = f64::NAN;
                }
            }
            stats.options_peak = stats.options_peak.max(cur.len());
        }
        prev_pos = x;
    }

    // Close the wire back to the source and apply the driver stage.
    let wire = profile.interval(0.0, prev_pos);
    let cur = &mut scratch.cur;
    for i in 0..cur.len() {
        cur.delay[i] += wire_added_delay(wire, cur.cap[i]);
        cur.cap[i] += wire.capacitance;
        cur.delay[i] += buffer_added_delay(device, net.driver_width(), cur.cap[i]);
    }
    stats.trace_nodes = scratch.arena.len() - 1;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_delay::evaluate;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn long_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    fn zoned_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .forbidden_zone(3000.0, 7000.0)
            .unwrap()
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn min_delay_beats_unbuffered_on_long_net() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);
        let sol = solve_min_delay(&net, tech.device(), &lib, &cands);
        let unbuffered = evaluate(&net, tech.device(), &RepeaterAssignment::empty()).total_delay;
        assert!(sol.delay_fs < unbuffered);
        assert!(!sol.assignment.is_empty());
    }

    #[test]
    fn reported_delay_matches_independent_evaluation() {
        // The DP's internal bookkeeping must agree with the ground-truth
        // Eq. (2) evaluator - this pins the wire/buffer increments.
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::paper_coarse();
        let cands = CandidateSet::uniform(&net, 200.0);
        let sol = solve_min_delay(&net, tech.device(), &lib, &cands);
        let timing = evaluate(&net, tech.device(), &sol.assignment);
        assert!(
            (timing.total_delay - sol.delay_fs).abs() < 1e-6,
            "DP {} vs evaluate {}",
            sol.delay_fs,
            timing.total_delay
        );

        let target = sol.delay_fs * 1.4;
        let psol = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
        let ptiming = evaluate(&net, tech.device(), &psol.assignment);
        assert!((ptiming.total_delay - psol.delay_fs).abs() < 1e-6);
        assert!((psol.assignment.total_width() - psol.total_width).abs() < 1e-9);
    }

    #[test]
    fn min_power_meets_target_and_uses_less_width() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);
        let fastest = solve_min_delay(&net, tech.device(), &lib, &cands);
        let target = fastest.delay_fs * 1.5;
        let sol = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
        assert!(sol.meets(target));
        assert!(
            sol.total_width < fastest.total_width,
            "loose target should save width: {} vs {}",
            sol.total_width,
            fastest.total_width
        );
    }

    #[test]
    fn power_is_monotone_in_target() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::uniform(10.0, 40.0, 10).unwrap();
        let cands = CandidateSet::uniform(&net, 400.0);
        let fastest = solve_min_delay(&net, tech.device(), &lib, &cands);
        let mut prev_width = f64::INFINITY;
        for mult in [1.05, 1.2, 1.5, 1.8, 2.05] {
            let sol = solve_min_power(&net, tech.device(), &lib, &cands, fastest.delay_fs * mult)
                .unwrap();
            assert!(
                sol.total_width <= prev_width + 1e-9,
                "width must not grow as the target loosens"
            );
            prev_width = sol.total_width;
        }
    }

    #[test]
    fn infeasible_target_reports_achievable_delay() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::paper_coarse();
        let cands = CandidateSet::uniform(&net, 200.0);
        let fastest = solve_min_delay(&net, tech.device(), &lib, &cands);
        let err =
            solve_min_power(&net, tech.device(), &lib, &cands, fastest.delay_fs * 0.5).unwrap_err();
        match err {
            DpError::InfeasibleTarget { achievable_fs, .. } => {
                assert!((achievable_fs - fastest.delay_fs).abs() < 1e-6);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn solutions_avoid_forbidden_zones() {
        let tech = tech();
        let net = zoned_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);
        let fastest = solve_min_delay(&net, tech.device(), &lib, &cands);
        fastest.assignment.validate_on(&net).unwrap();
        let sol =
            solve_min_power(&net, tech.device(), &lib, &cands, fastest.delay_fs * 1.3).unwrap();
        sol.assignment.validate_on(&net).unwrap();
        assert!(sol
            .assignment
            .positions()
            .iter()
            .all(|&x| !(x > 3000.0 && x < 7000.0)));
    }

    #[test]
    fn empty_candidates_yield_unbuffered_solution() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::paper_coarse();
        let cands = CandidateSet::from_positions(&net, vec![]).unwrap();
        let sol = solve_min_delay(&net, tech.device(), &lib, &cands);
        assert!(sol.assignment.is_empty());
        let unbuffered = evaluate(&net, tech.device(), &RepeaterAssignment::empty()).total_delay;
        assert!((sol.delay_fs - unbuffered).abs() < 1e-6);
    }

    #[test]
    fn richer_library_never_hurts_min_delay() {
        let tech = tech();
        let net = long_net();
        let cands = CandidateSet::uniform(&net, 200.0);
        let coarse = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let fine = RepeaterLibrary::range_step(10.0, 400.0, 10.0).unwrap();
        let d_coarse = solve_min_delay(&net, tech.device(), &coarse, &cands).delay_fs;
        let d_fine = solve_min_delay(&net, tech.device(), &fine, &cands).delay_fs;
        assert!(d_fine <= d_coarse + 1e-6);
    }

    #[test]
    fn finer_candidates_never_hurt_min_delay() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let coarse = CandidateSet::uniform(&net, 400.0);
        let fine = CandidateSet::uniform(&net, 200.0); // superset of coarse
        let d_coarse = solve_min_delay(&net, tech.device(), &lib, &coarse).delay_fs;
        let d_fine = solve_min_delay(&net, tech.device(), &lib, &fine).delay_fs;
        assert!(d_fine <= d_coarse + 1e-6);
    }

    #[test]
    fn invalid_target_is_rejected() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::paper_coarse();
        let cands = CandidateSet::uniform(&net, 200.0);
        assert!(matches!(
            solve_min_power(&net, tech.device(), &lib, &cands, -1.0),
            Err(DpError::InvalidTarget { .. })
        ));
        assert!(matches!(
            solve_min_power(&net, tech.device(), &lib, &cands, f64::NAN),
            Err(DpError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn stats_are_populated() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::paper_coarse();
        let cands = CandidateSet::uniform(&net, 200.0);
        let sol = solve_min_delay(&net, tech.device(), &lib, &cands);
        assert_eq!(sol.stats.library_size, 5);
        assert_eq!(sol.stats.candidates, cands.len());
        assert!(sol.stats.options_created > 0);
        assert!(sol.stats.options_peak > 0);
    }

    #[test]
    fn solve_dispatches_on_objective() {
        let tech = tech();
        let net = long_net();
        let lib = RepeaterLibrary::paper_coarse();
        let cands = CandidateSet::uniform(&net, 200.0);
        let a = solve(&net, tech.device(), &lib, &cands, Objective::MinDelay).unwrap();
        let b = solve_min_delay(&net, tech.device(), &lib, &cands);
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        // A single scratch driven through an interleaving of solves must
        // give exactly what fresh scratches give: scratch is memory, not
        // state.
        let tech = tech();
        let net = long_net();
        let zoned = zoned_net();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);
        let zcands = CandidateSet::uniform(&zoned, 200.0);
        let mut shared = DpScratch::new();

        let fastest = solve_min_delay_with(&mut shared, &net, tech.device(), &lib, &cands);
        for mult in [1.1, 1.6, 0.5, 1.3] {
            let target = fastest.delay_fs * mult;
            let reused =
                solve_min_power_with(&mut shared, &net, tech.device(), &lib, &cands, target);
            let fresh = solve_min_power_with(
                &mut DpScratch::new(),
                &net,
                tech.device(),
                &lib,
                &cands,
                target,
            );
            assert_eq!(format!("{reused:?}"), format!("{fresh:?}"), "mult {mult}");
            // Interleave a different net to try to poison the scratch.
            let _ = solve_min_delay_with(&mut shared, &zoned, tech.device(), &lib, &zcands);
        }
    }
}
