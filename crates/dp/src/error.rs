//! Error types for the DP engines.

use std::fmt;

/// Errors produced by the dynamic-programming repeater insertion engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DpError {
    /// A candidate position was outside the open net span or inside a
    /// forbidden zone.
    IllegalCandidate {
        /// The rejected position, µm.
        position: f64,
    },
    /// Candidate positions were not strictly ascending.
    UnsortedCandidates {
        /// Position at which the order broke.
        position: f64,
    },
    /// The timing target was not strictly positive and finite.
    InvalidTarget {
        /// The rejected target, fs.
        target_fs: f64,
    },
    /// No solution over the given library and candidate set meets the
    /// timing target.
    InfeasibleTarget {
        /// The requested target, fs.
        target_fs: f64,
        /// The minimum delay achievable with this library and candidate
        /// set, fs — useful for diagnosing how far off the target is.
        achievable_fs: f64,
    },
    /// A tree-DP buffer-legality mask had the wrong length.
    BadAllowedMask {
        /// Mask length supplied.
        got: usize,
        /// Tree size expected.
        expected: usize,
    },
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::IllegalCandidate { position } => {
                write!(
                    f,
                    "candidate position {position} is not a legal repeater location"
                )
            }
            DpError::UnsortedCandidates { position } => {
                write!(
                    f,
                    "candidate positions must be strictly ascending (broke at {position})"
                )
            }
            DpError::InvalidTarget { target_fs } => {
                write!(
                    f,
                    "timing target must be strictly positive and finite, got {target_fs} fs"
                )
            }
            DpError::InfeasibleTarget {
                target_fs,
                achievable_fs,
            } => write!(
                f,
                "no solution meets the timing target {target_fs} fs \
                 (minimum achievable with this library/candidates: {achievable_fs} fs)"
            ),
            DpError::BadAllowedMask { got, expected } => {
                write!(
                    f,
                    "buffer-legality mask has {got} entries, tree has {expected} nodes"
                )
            }
        }
    }
}

rip_tech::impl_leaf_error!(DpError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_display_reports_gap() {
        let msg = DpError::InfeasibleTarget {
            target_fs: 1.0e6,
            achievable_fs: 1.4e6,
        }
        .to_string();
        assert!(msg.contains("1000000"));
        assert!(msg.contains("1400000"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<DpError>();
    }
}
