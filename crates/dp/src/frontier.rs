//! Sorted option frontiers in struct-of-arrays layout, with merge-based
//! dominance pruning and reusable scratch buffers.
//!
//! The seed implementation ([`crate::reference`]) re-sorts the *entire*
//! option set after every candidate position: each prune is an
//! `O(n log n)` sort of `n·(1+|B|)` freshly `clone`d records, repeated
//! once per candidate — the allocation and re-sorting of the
//! already-sorted survivor prefix dominates the DP runtime. This module
//! replaces that with an incremental scheme built on two invariants:
//!
//! 1. **The surviving frontier stays sorted** by its lexicographic key
//!    (`cap`, then `delay`, then `width`). Wire crossings preserve the
//!    order (they shift `cap` by a constant and change `delay`
//!    monotonically within equal-`cap` groups), so pruning after a
//!    candidate is a single linear **merge** of the sorted survivors
//!    with the freshly created insertion options — no full sort, ever.
//! 2. **Fresh insertion options are bucketed by library width.** Every
//!    option inserting width `w` has the same capacitance
//!    `C_in(w)`, so the library quantizes the fresh set into `|B|`
//!    equal-`cap` buckets that are trivially `cap`-sorted (libraries
//!    store ascending widths and `C_in` is strictly increasing). Each
//!    bucket is reduced to its own sorted sub-frontier — a single
//!    minimum-delay record in 2D delay mode, a `(delay, width)`
//!    staircase in 3D power mode — before the global merge, so the merge
//!    sees only options that could survive same-`cap` dominance.
//!
//! Dominance queries during the merge use the [`Staircase`] (binary
//! search insertion, amortized `O(log n)`), exactly as the reference
//! pruner does — the survivor *set and order* are byte-identical to the
//! reference (`tests/frontier_equivalence.rs` pins this on a 50-net
//! corpus), only the work to compute them changes.
//!
//! All buffers live in [`DpScratch`] so a warm solver allocates nothing:
//! `rip_core::Engine` pools scratches across batch solves, and the
//! crate's free functions fall back to a thread-local scratch.

use crate::options::{Staircase, TraceArena};
use std::cmp::Ordering;

/// Option records in struct-of-arrays layout: parallel columns indexed
/// by option number. Separating the key columns (`cap`, `delay`,
/// `width`) keeps the wire-crossing update and the merge comparisons on
/// dense `f64` arrays.
#[derive(Debug, Default)]
pub(crate) struct OptionBuf {
    /// Downstream load seen at the current position, fF.
    pub cap: Vec<f64>,
    /// Downstream delay from the current position to the sink, fs.
    pub delay: Vec<f64>,
    /// Accumulated downstream repeater width, u.
    pub width: Vec<f64>,
    /// Traceback handle into the [`TraceArena`].
    pub trace: Vec<u32>,
    /// Pending insertion width not yet materialized into the arena
    /// (`NaN` = none). Lets pruning run before arena allocation.
    pub pending: Vec<f64>,
}

impl OptionBuf {
    pub(crate) fn len(&self) -> usize {
        self.cap.len()
    }

    pub(crate) fn clear(&mut self) {
        self.cap.clear();
        self.delay.clear();
        self.width.clear();
        self.trace.clear();
        self.pending.clear();
    }

    pub(crate) fn push(&mut self, cap: f64, delay: f64, width: f64, trace: u32, pending: f64) {
        self.cap.push(cap);
        self.delay.push(delay);
        self.width.push(width);
        self.trace.push(trace);
        self.pending.push(pending);
    }

    /// Appends every option of `src`, column by column (the tree DP
    /// parks each node's finished frontier in its store arena this way).
    pub(crate) fn append_from(&mut self, src: &OptionBuf) {
        self.cap.extend_from_slice(&src.cap);
        self.delay.extend_from_slice(&src.delay);
        self.width.extend_from_slice(&src.width);
        self.trace.extend_from_slice(&src.trace);
        self.pending.extend_from_slice(&src.pending);
    }

    /// Drops every option whose delay exceeds `target_fs`, preserving
    /// order (in-place compaction across all columns).
    pub(crate) fn retain_delay_le(&mut self, target_fs: f64) {
        let mut w = 0;
        for i in 0..self.len() {
            if self.delay[i] <= target_fs {
                if w != i {
                    self.cap[w] = self.cap[i];
                    self.delay[w] = self.delay[i];
                    self.width[w] = self.width[i];
                    self.trace[w] = self.trace[i];
                    self.pending[w] = self.pending[i];
                }
                w += 1;
            }
        }
        self.cap.truncate(w);
        self.delay.truncate(w);
        self.width.truncate(w);
        self.trace.truncate(w);
        self.pending.truncate(w);
    }
}

/// One fresh insertion option inside a width bucket, before the bucket
/// is reduced to its sub-frontier. `seq` records generation order so an
/// unstable sort on the full `(delay, width, seq)` key reproduces a
/// stable sort without its temporary allocation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BucketItem {
    pub delay: f64,
    pub width: f64,
    pub trace: u32,
    pub seq: u32,
}

/// Reusable scratch for the DP engines: option buffers, the traceback
/// arena, the dominance staircase, and the per-width generation bucket.
///
/// A scratch is plain reusable memory — it carries no configuration and
/// never influences results. Solvers reset it on entry, so a single
/// scratch can serve any interleaving of solves; reusing one across a
/// batch merely skips the per-solve allocations. `rip_core::Engine`
/// keeps a pool of these for its worker threads; the free functions
/// ([`crate::solve_min_power`] etc.) use a thread-local one.
///
/// # Examples
///
/// ```
/// use rip_dp::{solve_min_delay_with, solve_min_power_with, CandidateSet, DpScratch};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::{RepeaterLibrary, Technology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(9000.0, 0.08, 0.2))
///     .build()?;
/// let lib = RepeaterLibrary::paper_coarse();
/// let cands = CandidateSet::uniform(&net, 200.0);
/// let mut scratch = DpScratch::new();
/// // The warm-up solve allocates; subsequent solves reuse the buffers.
/// let tau_min = solve_min_delay_with(&mut scratch, &net, tech.device(), &lib, &cands).delay_fs;
/// for mult in [2.0, 1.5, 1.2] {
///     let target = tau_min * mult;
///     let sol = solve_min_power_with(&mut scratch, &net, tech.device(), &lib, &cands, target)?;
///     assert!(sol.meets(target));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DpScratch {
    pub(crate) cur: OptionBuf,
    pub(crate) fresh: OptionBuf,
    pub(crate) merged: OptionBuf,
    pub(crate) bucket: Vec<BucketItem>,
    pub(crate) stairs: Staircase,
    pub(crate) arena: TraceArena,
}

impl DpScratch {
    /// Creates an empty scratch. Buffers grow on first use and are
    /// retained across solves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets per-solve state, keeping capacity.
    pub(crate) fn reset(&mut self) {
        self.cur.clear();
        self.fresh.clear();
        self.merged.clear();
        self.bucket.clear();
        self.stairs.clear();
        self.arena.reset();
    }
}

#[inline]
pub(crate) fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).expect("finite DP keys")
}

/// Lexicographic `(cap, delay)` comparison between `cur[i]` and
/// `fresh[j]` — the 2D delay-mode sort key (width excluded, exactly as
/// the reference pruner sorts).
#[inline]
fn cmp2(cur: &OptionBuf, i: usize, fresh: &OptionBuf, j: usize) -> Ordering {
    cmp_f64(cur.cap[i], fresh.cap[j]).then_with(|| cmp_f64(cur.delay[i], fresh.delay[j]))
}

/// Lexicographic `(cap, delay, width)` comparison — the 3D power-mode
/// sort key.
#[inline]
fn cmp3(cur: &OptionBuf, i: usize, fresh: &OptionBuf, j: usize) -> Ordering {
    cmp2(cur, i, fresh, j).then_with(|| cmp_f64(cur.width[i], fresh.width[j]))
}

/// Reduces a generation bucket (equal-`cap` fresh options) to its 2D
/// delay-mode survivor and emits it: only the bucket's earliest
/// minimum-delay option can survive same-`cap` dominance. The emit
/// closure owns the storage layout, so the SoA chain engine and the
/// AoS tree engine share one reduction.
pub(crate) fn reduce_bucket_2d(bucket: &[BucketItem], mut emit: impl FnMut(&BucketItem)) {
    let Some(first) = bucket.first() else { return };
    let mut best = first;
    for item in &bucket[1..] {
        if item.delay < best.delay {
            best = item;
        }
    }
    emit(best);
}

/// Reduces a generation bucket to its `(delay, width)` staircase and
/// emits the survivors in order (delay strictly ascending, width
/// strictly descending — the bucket's sorted sub-frontier). Only these
/// can survive same-`cap` dominance in the global merge; exact
/// duplicates collapse to the generation-earliest record, matching the
/// reference pruner's stable sort.
pub(crate) fn reduce_bucket_3d(bucket: &mut [BucketItem], mut emit: impl FnMut(&BucketItem)) {
    // seq breaks ties deterministically, so the unstable sort is
    // allocation-free yet order-equivalent to a stable sort.
    bucket.sort_unstable_by(|a, b| {
        cmp_f64(a.delay, b.delay)
            .then_with(|| cmp_f64(a.width, b.width))
            .then_with(|| a.seq.cmp(&b.seq))
    });
    let mut best_width = f64::INFINITY;
    for item in bucket.iter() {
        if item.width < best_width {
            best_width = item.width;
            emit(item);
        }
    }
}

/// Merges the sorted surviving frontier `cur` with the sorted fresh
/// options into the 2D Pareto frontier, leaving the result (sorted, all
/// columns) in `cur`. Ties on the `(cap, delay)` key prefer `cur`,
/// reproducing the reference pruner's stable sort of
/// `[survivors.., fresh..]`.
pub(crate) fn merge_prune_2d(cur: &mut OptionBuf, fresh: &OptionBuf, merged: &mut OptionBuf) {
    merged.clear();
    let (mut i, mut j) = (0usize, 0usize);
    let mut best_delay = f64::INFINITY;
    while i < cur.len() || j < fresh.len() {
        let take_cur = if i >= cur.len() {
            false
        } else if j >= fresh.len() {
            true
        } else {
            cmp2(cur, i, fresh, j) != Ordering::Greater
        };
        let (buf, k) = if take_cur {
            let k = i;
            i += 1;
            (&*cur, k)
        } else {
            let k = j;
            j += 1;
            (fresh, k)
        };
        if buf.delay[k] < best_delay {
            best_delay = buf.delay[k];
            merged.push(
                buf.cap[k],
                buf.delay[k],
                buf.width[k],
                buf.trace[k],
                buf.pending[k],
            );
        }
    }
    std::mem::swap(cur, merged);
}

/// Merges the sorted surviving frontier `cur` with the sorted fresh
/// options into the 3D Pareto frontier (staircase dominance over
/// `(delay, width)` under the `cap`-sorted sweep), leaving the result in
/// `cur`. Ties on the full key prefer `cur`.
pub(crate) fn merge_prune_3d(
    cur: &mut OptionBuf,
    fresh: &OptionBuf,
    merged: &mut OptionBuf,
    stairs: &mut Staircase,
) {
    merged.clear();
    stairs.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < cur.len() || j < fresh.len() {
        let take_cur = if i >= cur.len() {
            false
        } else if j >= fresh.len() {
            true
        } else {
            cmp3(cur, i, fresh, j) != Ordering::Greater
        };
        let (buf, k) = if take_cur {
            let k = i;
            i += 1;
            (&*cur, k)
        } else {
            let k = j;
            j += 1;
            (fresh, k)
        };
        if !stairs.dominates(buf.delay[k], buf.width[k]) {
            stairs.insert(buf.delay[k], buf.width[k]);
            merged.push(
                buf.cap[k],
                buf.delay[k],
                buf.width[k],
                buf.trace[k],
                buf.pending[k],
            );
        }
    }
    std::mem::swap(cur, merged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{prune_2d, prune_3d};

    /// Deterministic quantized pseudo-random generator: coarse values so
    /// duplicates and dominance chains actually occur.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f64 / (1u64 << 31) as f64 * 8.0).round()
    }

    fn sorted_buf_from(items: &[(f64, f64, f64)]) -> OptionBuf {
        // Build a frontier the way the sweep would: prune an arbitrary
        // set first so it is sorted and non-dominated.
        let mut v: Vec<(f64, f64, f64)> = items.to_vec();
        prune_3d(&mut v, |&x| x);
        let mut buf = OptionBuf::default();
        for (i, &(c, d, w)) in v.iter().enumerate() {
            buf.push(c, d, w, i as u32, f64::NAN);
        }
        buf
    }

    /// The oracle: what the reference pruner produces from the
    /// concatenated survivors + fresh options.
    fn reference_3d(cur: &OptionBuf, fresh: &OptionBuf) -> Vec<(f64, f64, f64)> {
        let mut all: Vec<(f64, f64, f64)> = (0..cur.len())
            .map(|i| (cur.cap[i], cur.delay[i], cur.width[i]))
            .chain((0..fresh.len()).map(|j| (fresh.cap[j], fresh.delay[j], fresh.width[j])))
            .collect();
        prune_3d(&mut all, |&x| x);
        all
    }

    #[test]
    fn merge_prune_3d_matches_reference_pruner_on_fuzz() {
        let mut state = 0xDEADBEEFu64;
        for round in 0..50 {
            let cur_items: Vec<(f64, f64, f64)> = (0..40)
                .map(|_| (lcg(&mut state), lcg(&mut state), lcg(&mut state)))
                .collect();
            let mut cur = sorted_buf_from(&cur_items);
            // Fresh: a few equal-cap buckets with ascending caps, each
            // reduced to its sub-frontier, as the sweep generates them.
            let mut fresh = OptionBuf::default();
            let mut bucket = Vec::new();
            for b in 0..4 {
                let cap = 10.0 + b as f64; // above most cur caps, distinct
                bucket.clear();
                for s in 0..12u32 {
                    bucket.push(BucketItem {
                        delay: lcg(&mut state),
                        width: lcg(&mut state),
                        trace: s,
                        seq: s,
                    });
                }
                reduce_bucket_3d(&mut bucket, |item| {
                    fresh.push(cap, item.delay, item.width, item.trace, f64::NAN);
                });
            }
            let expect = reference_3d(&cur, &fresh);
            let mut merged = OptionBuf::default();
            let mut stairs = Staircase::new();
            merge_prune_3d(&mut cur, &fresh, &mut merged, &mut stairs);
            let got: Vec<(f64, f64, f64)> = (0..cur.len())
                .map(|i| (cur.cap[i], cur.delay[i], cur.width[i]))
                .collect();
            assert_eq!(got, expect, "round {round}");
        }
    }

    #[test]
    fn merge_prune_2d_matches_reference_pruner_on_fuzz() {
        let mut state = 0x1234_5678u64;
        for round in 0..50 {
            let cur_items: Vec<(f64, f64)> = (0..30)
                .map(|_| (lcg(&mut state), lcg(&mut state)))
                .collect();
            let mut v = cur_items.clone();
            prune_2d(&mut v, |&x| x);
            let mut cur = OptionBuf::default();
            for (i, &(c, d)) in v.iter().enumerate() {
                cur.push(c, d, 0.0, i as u32, f64::NAN);
            }
            let mut fresh = OptionBuf::default();
            for b in 0..5 {
                let cap = 9.0 + b as f64;
                let bucket: Vec<BucketItem> = (0..8u32)
                    .map(|s| BucketItem {
                        delay: lcg(&mut state),
                        width: 0.0,
                        trace: s,
                        seq: s,
                    })
                    .collect();
                reduce_bucket_2d(&bucket, |item| {
                    fresh.push(cap, item.delay, item.width, item.trace, f64::NAN);
                });
            }
            let mut all: Vec<(f64, f64)> = (0..cur.len())
                .map(|i| (cur.cap[i], cur.delay[i]))
                .chain((0..fresh.len()).map(|j| (fresh.cap[j], fresh.delay[j])))
                .collect();
            prune_2d(&mut all, |&x| x);
            let mut merged = OptionBuf::default();
            merge_prune_2d(&mut cur, &fresh, &mut merged);
            let got: Vec<(f64, f64)> = (0..cur.len()).map(|i| (cur.cap[i], cur.delay[i])).collect();
            assert_eq!(got, all, "round {round}");
        }
    }

    #[test]
    fn retain_delay_le_compacts_all_columns() {
        let mut buf = OptionBuf::default();
        buf.push(1.0, 5.0, 10.0, 1, f64::NAN);
        buf.push(2.0, 50.0, 20.0, 2, 7.0);
        buf.push(3.0, 6.0, 30.0, 3, f64::NAN);
        buf.retain_delay_le(10.0);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.cap, vec![1.0, 3.0]);
        assert_eq!(buf.delay, vec![5.0, 6.0]);
        assert_eq!(buf.width, vec![10.0, 30.0]);
        assert_eq!(buf.trace, vec![1, 3]);
        assert!(buf.pending.iter().all(|p| p.is_nan()));
    }

    #[test]
    fn bucket_3d_reduction_keeps_earliest_exact_duplicate() {
        let mut bucket = vec![
            BucketItem {
                delay: 2.0,
                width: 3.0,
                trace: 7,
                seq: 0,
            },
            BucketItem {
                delay: 2.0,
                width: 3.0,
                trace: 9,
                seq: 1,
            },
        ];
        let mut fresh = OptionBuf::default();
        reduce_bucket_3d(&mut bucket, |item| {
            fresh.push(1.0, item.delay, item.width, item.trace, 5.0);
        });
        assert_eq!(fresh.len(), 1);
        assert_eq!(
            fresh.trace,
            vec![7],
            "generation-earliest duplicate survives"
        );
    }

    #[test]
    fn scratch_reset_keeps_capacity() {
        let mut s = DpScratch::new();
        for _ in 0..100 {
            s.cur.push(1.0, 2.0, 3.0, 0, f64::NAN);
        }
        let cap_before = s.cur.cap.capacity();
        s.reset();
        assert_eq!(s.cur.len(), 0);
        assert!(s.cur.cap.capacity() >= cap_before);
    }
}
