//! # rip-dp — dynamic-programming repeater insertion engines
//!
//! Implements the discrete half of the paper's hybrid scheme, and the
//! baseline it is evaluated against:
//!
//! * [`solve_min_delay`] — van Ginneken's algorithm \[11\] over a candidate
//!   grid and repeater library (used for `τ_min` and coarse seeding);
//! * [`solve_min_power`] — the Lillis-style power-mode DP \[14\]: minimum
//!   total repeater width subject to a timing target, with the 3D
//!   `(cap, delay, width)` Pareto pruning whose pseudo-polynomial growth
//!   motivates RIP (paper, Section 2);
//! * [`CandidateSet`] — validated candidate positions (uniform grids and
//!   RIP's refined windows);
//! * [`brute_min_delay`] / [`brute_min_power`] (and the tree
//!   counterparts [`brute_tree_min_delay`] / [`brute_tree_min_power`],
//!   which honor the same `allowed` legality masks as the tree DP) —
//!   exhaustive reference oracles for cross-validation on tiny
//!   instances;
//! * [`tree_min_delay`] / [`tree_min_power`] — the tree extension
//!   announced in the paper's conclusion, cross-validated against the
//!   chain engines on path topologies; like the chain sweep it runs on
//!   the sorted struct-of-arrays frontier with a reusable
//!   [`TreeScratch`] (`_with` entry points for batch callers);
//! * [`Solver`] — the object-safe interface unifying all of the above
//!   ([`ChainDpSolver`], [`TreeDpSolver`], [`BruteForceSolver`]), selected
//!   by [`SolverKind`]. `rip_core`'s batch `Engine` and the
//!   cross-validation suites drive engines through this trait;
//! * [`DpScratch`] and the `_with` entry points
//!   ([`solve_min_power_with`] etc.) — caller-managed scratch memory so
//!   batch workloads allocate nothing after warm-up (the plain free
//!   functions fall back to a thread-local scratch);
//! * [`mod@reference`] — the seed chain sweep and the pre-SoA tree
//!   engine ([`mod@reference::tree`]), kept verbatim so the sorted
//!   struct-of-arrays frontiers that now power the production engines
//!   stay pinned to byte-identical solutions and honestly measured
//!   speedups (`BENCH_dp_frontier.json`, `BENCH_tree.json`).
//!
//! # Example
//!
//! ```
//! use rip_dp::{solve_min_delay, solve_min_power, CandidateSet};
//! use rip_net::{NetBuilder, Segment};
//! use rip_tech::{RepeaterLibrary, Technology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::generic_180nm();
//! let net = NetBuilder::new()
//!     .segment(Segment::new(9000.0, 0.08, 0.2))
//!     .build()?;
//! let lib = RepeaterLibrary::uniform(10.0, 10.0, 10)?; // paper baseline
//! let cands = CandidateSet::uniform(&net, 200.0);
//!
//! let tau_min = solve_min_delay(&net, tech.device(), &lib, &cands).delay_fs;
//! let sol = solve_min_power(&net, tech.device(), &lib, &cands, 1.5 * tau_min)?;
//! assert!(sol.delay_fs <= 1.5 * tau_min);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod brute;
mod candidates;
mod chain;
mod error;
mod frontier;
mod options;
pub mod reference;
mod solver;
mod tree;

pub use brute::{brute_min_delay, brute_min_power, brute_tree_min_delay, brute_tree_min_power};
pub use candidates::CandidateSet;
pub use chain::{
    solve, solve_min_delay, solve_min_delay_with, solve_min_power, solve_min_power_with,
    solve_with, DpSolution, DpStats, Objective,
};
pub use error::DpError;
pub use frontier::DpScratch;
pub use solver::{
    solver_panel, BruteForceSolver, ChainDpSolver, SolveRequest, Solver, SolverKind, TreeDpSolver,
};
pub use tree::{
    tree_min_delay, tree_min_delay_with, tree_min_power, tree_min_power_with, TreeScratch,
    TreeSolution,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CandidateSet>();
        assert_send_sync::<DpSolution>();
        assert_send_sync::<DpStats>();
        assert_send_sync::<Objective>();
        assert_send_sync::<TreeSolution>();
        assert_send_sync::<DpError>();
    }
}
