//! DP option records and Pareto-dominance pruning.
//!
//! The DP engines carry sets of *options* through their sweeps. For
//! delay-mode DP (van Ginneken \[11\]) an option is `(cap, delay)`; for
//! power-mode DP (Lillis \[14\]) it is `(cap, delay, width)` — the
//! three-key dominance that makes the power problem pseudo-polynomial
//! (Section 2 of the paper). Pruning keeps exactly the non-dominated
//! frontier.
//!
//! The pruning functions are generic over the stored record type via key
//! extractors so the chain DP, tree DP, and tests share one
//! implementation.

/// Prunes `items` to the 2D Pareto frontier: an item is removed when
/// another item has both keys `≤` (and is not an exact duplicate kept
/// earlier). Smaller is better for both keys.
///
/// O(n log n); the survivors are left sorted by the first key ascending.
pub(crate) fn prune_2d<T>(items: &mut Vec<T>, key: impl Fn(&T) -> (f64, f64)) {
    items.sort_by(|a, b| {
        let (a1, a2) = key(a);
        let (b1, b2) = key(b);
        a1.partial_cmp(&b1)
            .expect("finite DP keys")
            .then(a2.partial_cmp(&b2).expect("finite DP keys"))
    });
    let mut best_second = f64::INFINITY;
    items.retain(|item| {
        let (_, second) = key(item);
        if second < best_second {
            best_second = second;
            true
        } else {
            false
        }
    });
}

/// A monotone staircase over `(d, p)` pairs: `d` ascending, `p` strictly
/// descending. Supports "is (d, p) dominated by any inserted pair?" and
/// insertion, both O(log n) / amortized O(log n).
#[derive(Debug, Default)]
pub(crate) struct Staircase {
    /// Points sorted by `d` ascending with `p` strictly descending.
    pts: Vec<(f64, f64)>,
}

impl Staircase {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Forgets every inserted point, keeping the allocation (scratch
    /// reuse across prunes).
    pub(crate) fn clear(&mut self) {
        self.pts.clear();
    }

    /// Returns `true` when some inserted `(d', p')` has `d' ≤ d` and
    /// `p' ≤ p`.
    pub(crate) fn dominates(&self, d: f64, p: f64) -> bool {
        // Last point with d' <= d; p is minimized there because p
        // decreases along the staircase.
        let idx = self.pts.partition_point(|&(d2, _)| d2 <= d);
        idx > 0 && self.pts[idx - 1].1 <= p
    }

    /// Inserts `(d, p)`; the caller must have checked
    /// [`Staircase::dominates`] first. Points made redundant by the new
    /// one are removed.
    pub(crate) fn insert(&mut self, d: f64, p: f64) {
        debug_assert!(!self.dominates(d, p), "inserting a dominated point");
        let idx = self.pts.partition_point(|&(d2, _)| d2 < d);
        // Remove successors with p' >= p (they are now redundant for
        // dominance queries).
        let mut end = idx;
        while end < self.pts.len() && self.pts[end].1 >= p {
            end += 1;
        }
        self.pts.splice(idx..end, std::iter::once((d, p)));
    }
}

/// Prunes `items` to the 3D Pareto frontier (all three keys minimized).
///
/// Sorts by the first key, then sweeps with a [`Staircase`] over the
/// remaining two keys: an item is dominated iff an already-accepted item
/// (which necessarily has first key `≤`) has both remaining keys `≤`.
/// Exact multi-key duplicates collapse to one survivor.
///
/// O(n log n); survivors end up sorted by the first key ascending.
pub(crate) fn prune_3d<T>(items: &mut Vec<T>, key: impl Fn(&T) -> (f64, f64, f64)) {
    items.sort_by(|a, b| {
        let (a1, a2, a3) = key(a);
        let (b1, b2, b3) = key(b);
        a1.partial_cmp(&b1)
            .expect("finite DP keys")
            .then(a2.partial_cmp(&b2).expect("finite DP keys"))
            .then(a3.partial_cmp(&b3).expect("finite DP keys"))
    });
    let mut stairs = Staircase::new();
    items.retain(|item| {
        let (_, d, p) = key(item);
        if stairs.dominates(d, p) {
            false
        } else {
            stairs.insert(d, p);
            true
        }
    });
}

/// Traceback arena for chain DP: records which repeater insertions
/// produced each surviving option, as a linked structure indexed by
/// `u32` handles. Handle 0 is the shared "no repeaters" root.
#[derive(Debug)]
pub(crate) struct TraceArena {
    nodes: Vec<TraceNode>,
}

#[derive(Debug, Clone, Copy)]
struct TraceNode {
    /// Repeater position, µm (unused for the root).
    position: f64,
    /// Repeater width, u (unused for the root).
    width: f64,
    /// Previous insertion (downstream of this one), or 0 for the root.
    prev: u32,
}

/// The shared empty-trace handle.
pub(crate) const TRACE_ROOT: u32 = 0;

impl Default for TraceArena {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceArena {
    pub(crate) fn new() -> Self {
        Self {
            nodes: vec![TraceNode {
                position: f64::NAN,
                width: f64::NAN,
                prev: 0,
            }],
        }
    }

    /// Forgets every recorded insertion, keeping the allocation and the
    /// shared root (scratch reuse across solves).
    pub(crate) fn reset(&mut self) {
        self.nodes.truncate(1);
    }

    /// Records a repeater insertion on top of `prev`; returns the new
    /// handle.
    pub(crate) fn push(&mut self, position: f64, width: f64, prev: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(TraceNode {
            position,
            width,
            prev,
        });
        idx
    }

    /// Number of recorded nodes (including the root), for statistics.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Walks a trace back to the root, yielding `(position, width)` pairs
    /// in ascending-position order (the DP sweeps sink→source, so the
    /// chain is naturally most-upstream-first).
    pub(crate) fn collect(&self, mut handle: u32) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        while handle != TRACE_ROOT {
            let node = self.nodes[handle as usize];
            out.push((node.position, node.width));
            handle = node.prev;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_pareto_3d(items: &[(f64, f64, f64)]) -> Vec<(f64, f64, f64)> {
        let dominated = |x: &(f64, f64, f64)| {
            items
                .iter()
                .any(|y| y != x && y.0 <= x.0 && y.1 <= x.1 && y.2 <= x.2)
        };
        let mut out: Vec<_> = items.iter().copied().filter(|x| !dominated(x)).collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.dedup();
        out
    }

    #[test]
    fn prune_2d_keeps_frontier() {
        let mut items = vec![(1.0, 5.0), (2.0, 3.0), (2.5, 4.0), (3.0, 1.0), (1.0, 6.0)];
        prune_2d(&mut items, |&x| x);
        assert_eq!(items, vec![(1.0, 5.0), (2.0, 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn prune_2d_collapses_duplicates() {
        let mut items = vec![(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)];
        prune_2d(&mut items, |&x| x);
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn prune_3d_matches_brute_force() {
        // Deterministic pseudo-random triples (LCG) cross-checked against
        // the O(n^2) definition of dominance.
        let mut state = 0x2545F4914F6CDD1D_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as f64 / u32::MAX as f64 * 10.0).round()
        };
        let items: Vec<(f64, f64, f64)> = (0..200).map(|_| (next(), next(), next())).collect();
        let mut pruned = items.clone();
        prune_3d(&mut pruned, |&x| x);
        let mut got = pruned.clone();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.dedup();
        assert_eq!(got, brute_pareto_3d(&items));
    }

    #[test]
    fn prune_3d_keeps_incomparable_options() {
        let mut items = vec![(1.0, 9.0, 9.0), (9.0, 1.0, 9.0), (9.0, 9.0, 1.0)];
        prune_3d(&mut items, |&x| x);
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn staircase_dominance_queries() {
        let mut s = Staircase::new();
        s.insert(2.0, 8.0);
        s.insert(5.0, 3.0);
        assert!(s.dominates(2.0, 8.0)); // equal counts as dominated
        assert!(s.dominates(3.0, 9.0));
        assert!(s.dominates(6.0, 3.5));
        assert!(!s.dominates(1.0, 100.0));
        assert!(!s.dominates(4.0, 5.0));
        s.insert(4.0, 5.0);
        assert!(s.dominates(4.5, 5.0));
    }

    #[test]
    fn staircase_insert_removes_redundant_successors() {
        let mut s = Staircase::new();
        s.insert(5.0, 5.0);
        s.insert(6.0, 4.0);
        // (3, 3) makes both previous points redundant.
        s.insert(3.0, 3.0);
        assert_eq!(s.pts, vec![(3.0, 3.0)]);
    }

    /// Deterministic-seed LCG producing coarse quantized values so
    /// duplicates and dominance chains occur with high probability.
    fn quantized_stream(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 32) as f64 / u32::MAX as f64 * 12.0).round()
        }
    }

    fn naive_pareto_2d(items: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = items
            .iter()
            .copied()
            .filter(|x| !items.iter().any(|y| y != x && y.0 <= x.0 && y.1 <= x.1))
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.dedup();
        out
    }

    #[test]
    fn prune_2d_fuzz_sorted_nondominated_and_set_identical_to_naive() {
        let mut next = quantized_stream(0xA11CE);
        for round in 0..60 {
            let n = 1 + (round * 7) % 120;
            let items: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
            let mut pruned = items.clone();
            prune_2d(&mut pruned, |&x| x);
            // Sorted by the first key ascending.
            assert!(
                pruned.windows(2).all(|w| w[0].0 <= w[1].0),
                "round {round}: survivors not sorted by first key"
            );
            // Mutually non-dominated.
            for (i, a) in pruned.iter().enumerate() {
                for (j, b) in pruned.iter().enumerate() {
                    assert!(
                        i == j || !(a.0 <= b.0 && a.1 <= b.1),
                        "round {round}: {a:?} dominates fellow survivor {b:?}"
                    );
                }
            }
            // Identical, as a set, to the naive O(n^2) reference.
            let mut got = pruned.clone();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            got.dedup();
            assert_eq!(got, naive_pareto_2d(&items), "round {round}");
        }
    }

    #[test]
    fn prune_3d_fuzz_sorted_nondominated_and_set_identical_to_naive() {
        let mut next = quantized_stream(0xB0B);
        for round in 0..60 {
            let n = 1 + (round * 11) % 150;
            let items: Vec<(f64, f64, f64)> = (0..n).map(|_| (next(), next(), next())).collect();
            let mut pruned = items.clone();
            prune_3d(&mut pruned, |&x| x);
            assert!(
                pruned.windows(2).all(|w| w[0].0 <= w[1].0),
                "round {round}: survivors not sorted by first key"
            );
            for (i, a) in pruned.iter().enumerate() {
                for (j, b) in pruned.iter().enumerate() {
                    assert!(
                        i == j || !(a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2),
                        "round {round}: {a:?} dominates fellow survivor {b:?}"
                    );
                }
            }
            let mut got = pruned.clone();
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            got.dedup();
            assert_eq!(got, brute_pareto_3d(&items), "round {round}");
        }
    }

    #[test]
    fn staircase_clear_resets_state() {
        let mut s = Staircase::new();
        s.insert(1.0, 1.0);
        assert!(s.dominates(2.0, 2.0));
        s.clear();
        assert!(!s.dominates(2.0, 2.0));
    }

    #[test]
    fn trace_arena_reset_keeps_only_the_root() {
        let mut arena = TraceArena::new();
        let t = arena.push(1000.0, 80.0, TRACE_ROOT);
        assert_eq!(arena.collect(t).len(), 1);
        arena.reset();
        assert_eq!(arena.len(), 1);
        let t2 = arena.push(2000.0, 40.0, TRACE_ROOT);
        assert_eq!(arena.collect(t2), vec![(2000.0, 40.0)]);
    }

    #[test]
    fn trace_arena_collects_in_position_order() {
        let mut arena = TraceArena::new();
        // Sweep goes sink -> source: downstream repeaters pushed first.
        let t1 = arena.push(3000.0, 120.0, TRACE_ROOT);
        let t2 = arena.push(1000.0, 80.0, t1);
        let collected = arena.collect(t2);
        assert_eq!(collected, vec![(1000.0, 80.0), (3000.0, 120.0)]);
        assert!(arena.collect(TRACE_ROOT).is_empty());
        assert_eq!(arena.len(), 3);
    }
}
