//! The seed chain-DP implementation, preserved verbatim as a reference.
//!
//! The production sweep ([`crate::solve_min_power`]) moved to the sorted
//! struct-of-arrays frontier (the crate-private `frontier` module) with
//! reusable scratch. This module keeps the original array-of-structs
//! sweep — `clone` + full re-sort (`prune_2d`/`prune_3d`) after every
//! candidate — for two jobs:
//!
//! * **equivalence**: `tests/frontier_equivalence.rs` pins the
//!   production solver to byte-identical [`DpSolution`]s (assignments,
//!   delays, widths *and* work counters) against this implementation on
//!   a 50-net corpus;
//! * **benchmarking**: `bench_dp_frontier` measures the production
//!   solver against this one in the same process, so the recorded
//!   speedup in `BENCH_dp_frontier.json` is machine-independent and
//!   reproducible anywhere.
//!
//! The [`tree`] submodule plays the same two roles for the tree DP:
//! it freezes the pre-SoA tree engine (per-node option `Vec`s,
//! clone+sort cross-merges) as the fixed point behind
//! `tests/tree_frontier_equivalence.rs` and `BENCH_tree.json`.
//!
//! Do not "optimize" this module — its value is being the fixed point.

pub mod tree;

use crate::candidates::CandidateSet;
use crate::chain::{DpSolution, DpStats, Objective};
use crate::error::DpError;
use crate::options::{prune_2d, prune_3d, TraceArena, TRACE_ROOT};
use rip_delay::{buffer_added_delay, wire_added_delay, Repeater, RepeaterAssignment};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};

/// An in-flight DP option (internal to the reference sweep).
#[derive(Debug, Clone, Copy)]
struct Opt {
    cap: f64,
    delay: f64,
    width: f64,
    trace: u32,
    pending_pos: f64,
    pending_width: f64,
}

impl Opt {
    fn has_pending(&self) -> bool {
        !self.pending_width.is_nan()
    }
}

/// Minimum-delay repeater insertion with the seed sweep. Semantics are
/// identical to [`crate::solve_min_delay`]; only the pruning mechanics
/// differ (and the test suite pins even those to the same results).
pub fn solve_min_delay(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
) -> DpSolution {
    let (mut options, arena, stats) = sweep(net, device, library, candidates, Objective::MinDelay);
    options.sort_by(|a, b| {
        a.delay
            .partial_cmp(&b.delay)
            .expect("finite delays")
            .then(a.width.partial_cmp(&b.width).expect("finite widths"))
    });
    let best = options
        .first()
        .expect("the unbuffered option always exists");
    materialize(best, &arena, stats)
}

/// Minimum-power repeater insertion with the seed sweep. Semantics are
/// identical to [`crate::solve_min_power`].
///
/// # Errors
///
/// Exactly as [`crate::solve_min_power`]: invalid and infeasible
/// targets.
pub fn solve_min_power(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    target_fs: f64,
) -> Result<DpSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    let objective = Objective::MinPowerUnderDelay { target_fs };
    let (mut options, arena, stats) = sweep(net, device, library, candidates, objective);
    options.retain(|o| o.delay <= target_fs);
    if options.is_empty() {
        let fastest = solve_min_delay(net, device, library, candidates);
        return Err(DpError::InfeasibleTarget {
            target_fs,
            achievable_fs: fastest.delay_fs,
        });
    }
    options.sort_by(|a, b| {
        a.width
            .partial_cmp(&b.width)
            .expect("finite widths")
            .then(a.delay.partial_cmp(&b.delay).expect("finite delays"))
    });
    Ok(materialize(&options[0], &arena, stats))
}

fn materialize(best: &Opt, arena: &TraceArena, stats: DpStats) -> DpSolution {
    debug_assert!(
        !best.has_pending(),
        "final options never carry pending inserts"
    );
    let repeaters: Vec<Repeater> = arena
        .collect(best.trace)
        .into_iter()
        .map(|(x, w)| Repeater::new(x, w))
        .collect();
    let assignment = RepeaterAssignment::new(repeaters).expect("DP traces are valid assignments");
    DpSolution {
        assignment,
        delay_fs: best.delay,
        total_width: best.width,
        stats,
    }
}

/// The seed sink→source sweep: clones the option set at every candidate
/// and prunes with a full sort.
fn sweep(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    library: &RepeaterLibrary,
    candidates: &CandidateSet,
    objective: Objective,
) -> (Vec<Opt>, TraceArena, DpStats) {
    let profile = net.profile();
    let target = match objective {
        Objective::MinDelay => None,
        Objective::MinPowerUnderDelay { target_fs } => Some(target_fs),
    };
    let mut arena = TraceArena::new();
    let mut stats = DpStats {
        candidates: candidates.len(),
        library_size: library.len(),
        ..DpStats::default()
    };
    let mut options = vec![Opt {
        cap: device.input_cap(net.receiver_width()),
        delay: 0.0,
        width: 0.0,
        trace: TRACE_ROOT,
        pending_pos: f64::NAN,
        pending_width: f64::NAN,
    }];
    stats.options_created = 1;

    let mut prev_pos = net.total_length();
    for &x in candidates.positions().iter().rev() {
        let wire = profile.interval(x, prev_pos);
        for o in &mut options {
            o.delay += wire_added_delay(wire, o.cap);
            o.cap += wire.capacitance;
        }
        if let Some(t) = target {
            options.retain(|o| o.delay <= t);
        }

        let mut combined = options.clone();
        for o in &options {
            for &w in library {
                let delay = o.delay + buffer_added_delay(device, w, o.cap);
                if target.is_some_and(|t| delay > t) {
                    continue;
                }
                combined.push(Opt {
                    cap: device.input_cap(w),
                    delay,
                    width: o.width + w,
                    trace: o.trace,
                    pending_pos: x,
                    pending_width: w,
                });
            }
        }
        stats.options_created += combined.len() as u64;

        match objective {
            Objective::MinDelay => prune_2d(&mut combined, |o| (o.cap, o.delay)),
            Objective::MinPowerUnderDelay { .. } => {
                prune_3d(&mut combined, |o| (o.cap, o.delay, o.width))
            }
        }

        for o in &mut combined {
            if o.has_pending() {
                o.trace = arena.push(o.pending_pos, o.pending_width, o.trace);
                o.pending_pos = f64::NAN;
                o.pending_width = f64::NAN;
            }
        }
        stats.options_peak = stats.options_peak.max(combined.len());
        options = combined;
        prev_pos = x;
    }

    let wire = profile.interval(0.0, prev_pos);
    for o in &mut options {
        o.delay += wire_added_delay(wire, o.cap);
        o.cap += wire.capacitance;
        o.delay += buffer_added_delay(device, net.driver_width(), o.cap);
    }
    stats.trace_nodes = arena.len() - 1;
    (options, arena, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    #[test]
    fn reference_solver_agrees_with_production_solver() {
        let tech = Technology::generic_180nm();
        let net = NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let cands = CandidateSet::uniform(&net, 200.0);

        let ref_fast = solve_min_delay(&net, tech.device(), &lib, &cands);
        let new_fast = crate::solve_min_delay(&net, tech.device(), &lib, &cands);
        assert_eq!(
            format!("{ref_fast:?}"),
            format!("{new_fast:?}"),
            "min-delay solutions must be byte-identical"
        );

        for mult in [1.1, 1.4, 2.0] {
            let target = ref_fast.delay_fs * mult;
            let a = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            let b = crate::solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "mult {mult}: min-power solutions must be byte-identical"
            );
        }
    }
}
