//! The pre-SoA tree DP, preserved verbatim as a reference.
//!
//! The production tree engine ([`crate::tree_min_power`]) moved to the
//! sorted struct-of-arrays frontier with a reusable
//! [`TreeScratch`](crate::TreeScratch). This module keeps the previous
//! implementation — per-node option `Vec`s, clone + full re-sort
//! (`prune_2d`/`prune_3d`) cross-merges — for two jobs:
//!
//! * **equivalence**: `tests/tree_frontier_equivalence.rs` pins the
//!   production tree solver to byte-identical
//!   [`TreeSolution`]s (buffer assignments, delays, widths *and* work
//!   counters) against this implementation on a 50-tree corpus;
//! * **benchmarking**: `bench_tree` measures the production solver
//!   against this one in the same process, so the recorded speedup in
//!   `BENCH_tree.json` is machine-independent and reproducible
//!   anywhere.
//!
//! Do not "optimize" this module — its value is being the fixed point.

use crate::chain::DpStats;
use crate::error::DpError;
use crate::frontier::{cmp_f64, reduce_bucket_2d, reduce_bucket_3d, BucketItem};
use crate::options::{prune_2d, prune_3d, Staircase};
use crate::tree::TreeSolution;
use rip_delay::RcTree;
use rip_tech::{RepeaterDevice, RepeaterLibrary};
use std::cmp::Ordering;

/// Tree option (internal): downstream load, worst downstream delay,
/// accumulated width, and a trace handle.
#[derive(Debug, Clone, Copy)]
struct TOpt {
    cap: f64,
    delay: f64,
    width: f64,
    trace: u32,
}

/// Trace arena for trees: buffers chain via `prev`, branch merges join
/// two traces.
#[derive(Debug)]
enum TNode {
    Root,
    Buffer { node: usize, width: f64, prev: u32 },
    Join { a: u32, b: u32 },
}

#[derive(Debug)]
struct TArena {
    nodes: Vec<TNode>,
}

impl TArena {
    fn new() -> Self {
        Self {
            nodes: vec![TNode::Root],
        }
    }

    fn buffer(&mut self, node: usize, width: f64, prev: u32) -> u32 {
        self.nodes.push(TNode::Buffer { node, width, prev });
        (self.nodes.len() - 1) as u32
    }

    fn join(&mut self, a: u32, b: u32) -> u32 {
        // Joining with an empty trace is a no-op; skip the allocation.
        if a == 0 {
            return b;
        }
        if b == 0 {
            return a;
        }
        self.nodes.push(TNode::Join { a, b });
        (self.nodes.len() - 1) as u32
    }

    /// Collects `(node, width)` buffer decisions reachable from `handle`.
    fn collect(&self, handle: u32, out: &mut Vec<(usize, f64)>) {
        let mut stack = vec![handle];
        while let Some(h) = stack.pop() {
            match &self.nodes[h as usize] {
                TNode::Root => {}
                TNode::Buffer { node, width, prev } => {
                    out.push((*node, *width));
                    stack.push(*prev);
                }
                TNode::Join { a, b } => {
                    stack.push(*a);
                    stack.push(*b);
                }
            }
        }
    }
}

/// Tree objective selector (mirrors the chain [`crate::Objective`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum TreeMode {
    MinDelay,
    MinPower { target_fs: f64 },
}

/// Reusable per-solve scratch for the buffer-combine step: the fresh
/// sub-frontiers, the in-flight width bucket (shared
/// [`BucketItem`] records and reductions from the chain engine's
/// frontier module), the dominance staircase, and the child-lift
/// buffer. Allocated once per [`solve_tree`] call instead of once per
/// tree node.
#[derive(Debug, Default)]
struct TreeScratch {
    fresh: Vec<TOpt>,
    bucket: Vec<BucketItem>,
    stairs: Staircase,
    lifted: Vec<TOpt>,
}

/// Lexicographic option key for `mode`: `(cap, delay)` in delay mode,
/// `(cap, delay, width)` in power mode — exactly the reference pruner's
/// sort keys.
fn cmp_opt(a: &TOpt, b: &TOpt, mode: TreeMode) -> Ordering {
    let two = cmp_f64(a.cap, b.cap).then_with(|| cmp_f64(a.delay, b.delay));
    match mode {
        TreeMode::MinDelay => two,
        TreeMode::MinPower { .. } => two.then_with(|| cmp_f64(a.width, b.width)),
    }
}

/// Merges the sorted unbuffered prefix with the sorted bucketed fresh
/// options into the non-dominated frontier (ties prefer the prefix,
/// reproducing the reference pruner's stable sort of
/// `[prefix.., fresh..]`). Returns the surviving options, sorted.
fn merge_combine(
    prefix: &[TOpt],
    fresh: &[TOpt],
    mode: TreeMode,
    stairs: &mut Staircase,
) -> Vec<TOpt> {
    let mut out = Vec::with_capacity(prefix.len() + fresh.len());
    stairs.clear();
    let mut best_delay = f64::INFINITY;
    let (mut i, mut j) = (0usize, 0usize);
    while i < prefix.len() || j < fresh.len() {
        let take_prefix = if i >= prefix.len() {
            false
        } else if j >= fresh.len() {
            true
        } else {
            cmp_opt(&prefix[i], &fresh[j], mode) != Ordering::Greater
        };
        let o = if take_prefix {
            i += 1;
            prefix[i - 1]
        } else {
            j += 1;
            fresh[j - 1]
        };
        let keep = match mode {
            TreeMode::MinDelay => {
                if o.delay < best_delay {
                    best_delay = o.delay;
                    true
                } else {
                    false
                }
            }
            TreeMode::MinPower { .. } => {
                if stairs.dominates(o.delay, o.width) {
                    false
                } else {
                    stairs.insert(o.delay, o.width);
                    true
                }
            }
        };
        if keep {
            out.push(o);
        }
    }
    out
}

/// Reduces a width bucket to its sorted sub-frontier and appends it to
/// `fresh` via the shared reductions in [`crate::frontier`]: only the
/// bucket's minimum-delay record (delay mode) or its `(delay, width)`
/// staircase (power mode) can survive same-`cap` dominance in
/// [`merge_combine`].
fn reduce_bucket(bucket: &mut [BucketItem], cap: f64, mode: TreeMode, fresh: &mut Vec<TOpt>) {
    let emit = |item: &BucketItem| {
        fresh.push(TOpt {
            cap,
            delay: item.delay,
            width: item.width,
            trace: item.trace,
        });
    };
    match mode {
        TreeMode::MinDelay => reduce_bucket_2d(bucket, emit),
        TreeMode::MinPower { .. } => reduce_bucket_3d(bucket, emit),
    }
}

/// Minimum-delay buffering of an RC tree with the pre-SoA sweep.
/// Semantics are identical to [`crate::tree_min_delay`]; only the data
/// structures differ (and the test suite pins even those to the same
/// results).
///
/// # Errors
///
/// Returns [`DpError::BadAllowedMask`] for a mask of the wrong length.
pub fn tree_min_delay(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
) -> Result<TreeSolution, DpError> {
    solve_tree(
        tree,
        device,
        driver_width,
        library,
        allowed,
        TreeMode::MinDelay,
    )
}

/// Minimum-total-width buffering of an RC tree under a timing target
/// with the pre-SoA sweep. Semantics are identical to
/// [`crate::tree_min_power`].
///
/// # Errors
///
/// * [`DpError::InvalidTarget`] for a bad target;
/// * [`DpError::InfeasibleTarget`] when the target cannot be met;
/// * [`DpError::BadAllowedMask`] for a mask of the wrong length.
pub fn tree_min_power(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    target_fs: f64,
) -> Result<TreeSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    solve_tree(
        tree,
        device,
        driver_width,
        library,
        allowed,
        TreeMode::MinPower { target_fs },
    )
}

fn solve_tree(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    mode: TreeMode,
) -> Result<TreeSolution, DpError> {
    if let Some(mask) = allowed {
        if mask.len() != tree.len() {
            return Err(DpError::BadAllowedMask {
                got: mask.len(),
                expected: tree.len(),
            });
        }
    }
    let buffer_ok = |v: usize| v != 0 && allowed.map_or(true, |m| m[v]);
    let target = match mode {
        TreeMode::MinDelay => None,
        TreeMode::MinPower { target_fs } => Some(target_fs),
    };

    let mut arena = TArena::new();
    let mut scratch = TreeScratch::default();
    let mut stats = DpStats {
        candidates: tree.len() - 1,
        library_size: library.len(),
        ..DpStats::default()
    };
    // options[v]: the non-dominated set looking into node v from its
    // parent edge (load the edge would see at v, worst delay from v's
    // input to any sink below, width spent below).
    let mut options: Vec<Vec<TOpt>> = vec![Vec::new(); tree.len()];

    // Creation order guarantees parents before children, so a reverse
    // scan is a post-order.
    for v in (0..tree.len()).rev() {
        // Cross-merge the children (lifted across their edges).
        let mut acc = vec![TOpt {
            cap: 0.0,
            delay: 0.0,
            width: 0.0,
            trace: 0,
        }];
        for &u in tree.children(v) {
            let wire = tree.wire(u);
            scratch.lifted.clear();
            scratch.lifted.extend(options[u].iter().map(|o| TOpt {
                cap: o.cap + wire.capacitance,
                delay: o.delay + wire.elmore + wire.resistance * o.cap,
                width: o.width,
                trace: o.trace,
            }));
            options[u] = Vec::new(); // consumed; release the node storage
            let mut next = Vec::with_capacity(acc.len() * scratch.lifted.len());
            for a in &acc {
                for b in &scratch.lifted {
                    if target.is_some_and(|t| a.delay.max(b.delay) > t) {
                        continue;
                    }
                    next.push(TOpt {
                        cap: a.cap + b.cap,
                        delay: a.delay.max(b.delay),
                        width: a.width + b.width,
                        trace: arena.join(a.trace, b.trace),
                    });
                }
            }
            stats.options_created += next.len() as u64;
            prune(&mut next, mode);
            acc = next;
        }

        if v == 0 {
            // Driver stage at the root (tap at the root loads the driver
            // alongside the subtree).
            let tap = tree.sink_cap(0);
            for o in &mut acc {
                o.delay += device.intrinsic_delay()
                    + device.output_resistance(driver_width) * (o.cap + tap);
            }
            options[0] = acc;
            break;
        }

        // Buffered at v: the buffer drives the merged subtree; upstream
        // sees tap + buffer input cap. Generated per width bucket (each
        // bucket shares its cap and is reduced to its sub-frontier), with
        // the traceback allocated eagerly.
        let tap = tree.sink_cap(v);
        scratch.fresh.clear();
        let mut created = acc.len() as u64;
        if buffer_ok(v) {
            for &w in library.widths() {
                let new_cap = tap + device.input_cap(w);
                scratch.bucket.clear();
                for o in &acc {
                    let delay =
                        o.delay + device.intrinsic_delay() + device.output_resistance(w) * o.cap;
                    if target.is_some_and(|t| delay > t) {
                        continue;
                    }
                    let seq = scratch.bucket.len() as u32;
                    scratch.bucket.push(BucketItem {
                        delay,
                        width: o.width + w,
                        trace: arena.buffer(v, w, o.trace),
                        seq,
                    });
                }
                created += scratch.bucket.len() as u64;
                reduce_bucket(&mut scratch.bucket, new_cap, mode, &mut scratch.fresh);
            }
        }
        stats.options_created += created;
        // Unbuffered at v: the node's tap joins the stage load (a
        // constant shift, so the sorted order survives and the prune is
        // a single linear merge).
        for o in &mut acc {
            o.cap += tap;
        }
        let combined = merge_combine(&acc, &scratch.fresh, mode, &mut scratch.stairs);
        stats.options_peak = stats.options_peak.max(combined.len());
        options[v] = combined;
    }

    let finals = &options[0];
    let best =
        match mode {
            TreeMode::MinDelay => finals.iter().min_by(|a, b| {
                a.delay
                    .partial_cmp(&b.delay)
                    .expect("finite delays")
                    .then(a.width.partial_cmp(&b.width).expect("finite widths"))
            }),
            TreeMode::MinPower { target_fs } => finals
                .iter()
                .filter(|o| o.delay <= target_fs)
                .min_by(|a, b| {
                    a.width
                        .partial_cmp(&b.width)
                        .expect("finite widths")
                        .then(a.delay.partial_cmp(&b.delay).expect("finite delays"))
                }),
        };
    let best = match best {
        Some(b) => *b,
        None => {
            let fastest = solve_tree(
                tree,
                device,
                driver_width,
                library,
                allowed,
                TreeMode::MinDelay,
            )?;
            return Err(DpError::InfeasibleTarget {
                target_fs: target.expect("only the power mode can be infeasible"),
                achievable_fs: fastest.delay_fs,
            });
        }
    };

    let mut buffers = Vec::new();
    arena.collect(best.trace, &mut buffers);
    let mut buffer_widths = vec![None; tree.len()];
    for (node, width) in buffers {
        buffer_widths[node] = Some(width);
    }
    stats.trace_nodes = arena.nodes.len() - 1;
    Ok(TreeSolution {
        buffer_widths,
        delay_fs: best.delay,
        total_width: best.width,
        stats,
    })
}

fn prune(options: &mut Vec<TOpt>, mode: TreeMode) {
    match mode {
        TreeMode::MinDelay => prune_2d(options, |o| (o.cap, o.delay)),
        TreeMode::MinPower { .. } => prune_3d(options, |o| (o.cap, o.delay, o.width)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_tech::Technology;

    /// Y-shaped tree: trunk then two branches with sinks.
    fn y_tree(dev: &RepeaterDevice) -> RcTree {
        let mut tree = RcTree::with_root();
        let trunk = tree.add_uniform_child(0, 400.0, 1200.0).unwrap();
        let s1 = tree.add_uniform_child(trunk, 300.0, 800.0).unwrap();
        let s2 = tree.add_uniform_child(trunk, 500.0, 1500.0).unwrap();
        tree.set_sink_cap(s1, dev.input_cap(60.0)).unwrap();
        tree.set_sink_cap(s2, dev.input_cap(40.0)).unwrap();
        tree
    }

    #[test]
    fn reference_tree_solver_agrees_with_production_solver() {
        let tech = Technology::generic_180nm();
        let tree = y_tree(tech.device());
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();

        let ref_fast = tree_min_delay(&tree, tech.device(), 120.0, &lib, None).unwrap();
        let new_fast = crate::tree_min_delay(&tree, tech.device(), 120.0, &lib, None).unwrap();
        assert_eq!(
            format!("{ref_fast:?}"),
            format!("{new_fast:?}"),
            "min-delay tree solutions must be byte-identical"
        );

        for mult in [1.1, 1.4, 2.0] {
            let target = ref_fast.delay_fs * mult;
            let a = tree_min_power(&tree, tech.device(), 120.0, &lib, None, target).unwrap();
            let b = crate::tree_min_power(&tree, tech.device(), 120.0, &lib, None, target).unwrap();
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "mult {mult}: min-power tree solutions must be byte-identical"
            );
        }
    }
}
