//! The unified [`Solver`] interface over the crate's engine families.
//!
//! The chain DP ([`solve_min_delay`](crate::solve_min_delay) /
//! [`solve_min_power`](crate::solve_min_power)), the tree DP
//! ([`tree_min_delay`](crate::tree_min_delay) /
//! [`tree_min_power`](crate::tree_min_power)) and the exhaustive oracle
//! ([`brute_min_delay`](crate::brute_min_delay) /
//! [`brute_min_power`](crate::brute_min_power)) historically exposed six
//! free functions with three incompatible shapes. [`Solver`] puts one
//! object-safe interface in front of all of them — a [`SolveRequest`]
//! (net + device + [`Objective`]) in, a [`DpSolution`] out — so callers
//! like `rip_core`'s `Engine`, the cross-validation suites and future
//! backends can treat engines as interchangeable `dyn` values and select
//! them by [`SolverKind`].

use crate::candidates::CandidateSet;
use crate::chain::{solve, DpSolution, Objective};
use crate::error::DpError;
use crate::{brute_min_delay, brute_min_power, tree_min_delay, tree_min_power};
use rip_delay::{evaluate, RcTree, Repeater, RepeaterAssignment};
use rip_net::TwoPinNet;
use rip_tech::{RepeaterDevice, RepeaterLibrary};
use std::fmt;

/// A fully-specified single-net solve: the problem every [`Solver`]
/// implementation answers.
#[derive(Debug, Clone, Copy)]
pub struct SolveRequest<'a> {
    /// The routed two-pin net.
    pub net: &'a TwoPinNet,
    /// The repeater device model.
    pub device: &'a RepeaterDevice,
    /// What to optimize.
    pub objective: Objective,
}

impl<'a> SolveRequest<'a> {
    /// Bundles a request.
    pub fn new(net: &'a TwoPinNet, device: &'a RepeaterDevice, objective: Objective) -> Self {
        Self {
            net,
            device,
            objective,
        }
    }

    /// Shorthand for a minimum-delay request.
    pub fn min_delay(net: &'a TwoPinNet, device: &'a RepeaterDevice) -> Self {
        Self::new(net, device, Objective::MinDelay)
    }

    /// Shorthand for a minimum-power request under a timing target (fs).
    pub fn min_power(net: &'a TwoPinNet, device: &'a RepeaterDevice, target_fs: f64) -> Self {
        Self::new(net, device, Objective::MinPowerUnderDelay { target_fs })
    }
}

/// The engine family behind a [`Solver`] — callers select and report
/// solvers by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SolverKind {
    /// Chain sweep DP (van Ginneken / Lillis). The production engine.
    ChainDp,
    /// Bottom-up tree DP run on the net's path topology. Exists for
    /// cross-validation of the tree engines and as the seam where tree
    /// workloads plug in.
    TreeDp,
    /// Exhaustive enumeration. Exponential — a test oracle, not a
    /// production solver.
    BruteForce,
}

impl SolverKind {
    /// Stable human-readable name (`"chain-dp"`, `"tree-dp"`,
    /// `"brute-force"`).
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::ChainDp => "chain-dp",
            SolverKind::TreeDp => "tree-dp",
            SolverKind::BruteForce => "brute-force",
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An object-safe repeater insertion engine: a [`SolveRequest`] in, a
/// [`DpSolution`] out.
///
/// All implementations are `Send + Sync` so a single boxed solver can be
/// shared across the batch engine's worker threads.
///
/// # Examples
///
/// ```
/// use rip_dp::{ChainDpSolver, Solver, SolveRequest, SolverKind};
/// use rip_net::{NetBuilder, Segment};
/// use rip_tech::{RepeaterLibrary, Technology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(9000.0, 0.08, 0.2))
///     .build()?;
/// let solver: Box<dyn Solver> =
///     Box::new(ChainDpSolver::new(RepeaterLibrary::paper_coarse(), 200.0)?);
/// assert_eq!(solver.kind(), SolverKind::ChainDp);
/// let fastest = solver.solve(&SolveRequest::min_delay(&net, tech.device()))?;
/// assert!(fastest.delay_fs > 0.0);
/// # Ok(())
/// # }
/// ```
pub trait Solver: fmt::Debug + Send + Sync {
    /// Which engine family answers the request.
    fn kind(&self) -> SolverKind;

    /// `true` when the solver enumerates the entire search space (safe
    /// only on tiny instances).
    fn is_exhaustive(&self) -> bool {
        matches!(self.kind(), SolverKind::BruteForce)
    }

    /// Solves the request.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidTarget`] / [`DpError::InfeasibleTarget`] exactly
    /// as the underlying engine's free function reports them; the
    /// min-delay objective never fails.
    fn solve(&self, request: &SolveRequest<'_>) -> Result<DpSolution, DpError>;
}

/// Validates a uniform candidate-grid step.
fn validate_step(step_um: f64) -> Result<f64, DpError> {
    if !step_um.is_finite() || step_um <= 0.0 {
        return Err(DpError::IllegalCandidate { position: step_um });
    }
    Ok(step_um)
}

/// The production chain DP behind the [`Solver`] interface: a repeater
/// library plus a uniform candidate-grid step applied to every net.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainDpSolver {
    library: RepeaterLibrary,
    step_um: f64,
}

impl ChainDpSolver {
    /// Creates a chain solver over `library` with a uniform `step_um`
    /// candidate grid (paper: 200 µm).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::IllegalCandidate`] for a non-positive or
    /// non-finite step.
    pub fn new(library: RepeaterLibrary, step_um: f64) -> Result<Self, DpError> {
        Ok(Self {
            library,
            step_um: validate_step(step_um)?,
        })
    }

    /// The solver's library.
    pub fn library(&self) -> &RepeaterLibrary {
        &self.library
    }

    /// The uniform candidate-grid step, µm.
    pub fn step_um(&self) -> f64 {
        self.step_um
    }
}

impl Solver for ChainDpSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::ChainDp
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<DpSolution, DpError> {
        let cands = CandidateSet::uniform(request.net, self.step_um);
        solve(
            request.net,
            request.device,
            &self.library,
            &cands,
            request.objective,
        )
    }
}

/// The exhaustive oracle behind the [`Solver`] interface.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceSolver {
    library: RepeaterLibrary,
    step_um: f64,
}

impl BruteForceSolver {
    /// Creates a brute-force solver (tiny instances only: the underlying
    /// oracle panics past its combination cap).
    ///
    /// # Errors
    ///
    /// Returns [`DpError::IllegalCandidate`] for a non-positive or
    /// non-finite step.
    pub fn new(library: RepeaterLibrary, step_um: f64) -> Result<Self, DpError> {
        Ok(Self {
            library,
            step_um: validate_step(step_um)?,
        })
    }
}

impl Solver for BruteForceSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::BruteForce
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<DpSolution, DpError> {
        let cands = CandidateSet::uniform(request.net, self.step_um);
        match request.objective {
            Objective::MinDelay => Ok(brute_min_delay(
                request.net,
                request.device,
                &self.library,
                &cands,
            )),
            Objective::MinPowerUnderDelay { target_fs } => brute_min_power(
                request.net,
                request.device,
                &self.library,
                &cands,
                target_fs,
            ),
        }
    }
}

/// The tree DP behind the [`Solver`] interface, adapted to two-pin nets
/// via their path topology.
///
/// The net is unrolled into a path-shaped [`RcTree`] with one node per
/// legal candidate position; buffered nodes map back to chain repeaters.
/// On paths the tree DP and the chain DP explore the same space, which is
/// exactly what makes this adapter useful for cross-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDpSolver {
    library: RepeaterLibrary,
    step_um: f64,
}

impl TreeDpSolver {
    /// Creates a tree solver over `library` with a uniform `step_um`
    /// candidate grid along the path.
    ///
    /// # Errors
    ///
    /// Returns [`DpError::IllegalCandidate`] for a non-positive or
    /// non-finite step.
    pub fn new(library: RepeaterLibrary, step_um: f64) -> Result<Self, DpError> {
        Ok(Self {
            library,
            step_um: validate_step(step_um)?,
        })
    }
}

impl Solver for TreeDpSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::TreeDp
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<DpSolution, DpError> {
        let net = request.net;
        let device = request.device;
        let cands = CandidateSet::uniform(net, self.step_um);

        // Unroll the net into a path tree: root = driver, one node per
        // candidate, one sink node carrying the receiver load.
        let mut tree = RcTree::with_root();
        let mut prev_pos = 0.0;
        let mut prev_node = 0;
        for &x in cands.positions() {
            let wire = net.profile().interval(prev_pos, x);
            prev_node = tree
                .add_child(prev_node, wire, 0.0)
                .expect("path construction parents are always in range");
            prev_pos = x;
        }
        let wire = net.profile().interval(prev_pos, net.total_length());
        let sink = tree
            .add_child(prev_node, wire, device.input_cap(net.receiver_width()))
            .expect("path construction parents are always in range");

        // The chain engines never buffer the endpoints; forbid the sink
        // node so both engines search the same space.
        let mut allowed = vec![true; tree.len()];
        allowed[sink] = false;

        let tree_sol = match request.objective {
            Objective::MinDelay => tree_min_delay(
                &tree,
                device,
                net.driver_width(),
                &self.library,
                Some(&allowed),
            )?,
            Objective::MinPowerUnderDelay { target_fs } => tree_min_power(
                &tree,
                device,
                net.driver_width(),
                &self.library,
                Some(&allowed),
                target_fs,
            )?,
        };

        // Node v ∈ 1..=n is candidate v-1; nodes were added source→sink,
        // so positions come out ascending as RepeaterAssignment requires.
        let repeaters: Vec<Repeater> = tree_sol
            .buffer_widths
            .iter()
            .enumerate()
            .filter_map(|(v, w)| w.map(|w| Repeater::new(cands.positions()[v - 1], w)))
            .collect();
        let assignment = RepeaterAssignment::new(repeaters)
            .expect("tree DP buffers sit on validated candidate positions");
        let delay_fs = evaluate(net, device, &assignment).total_delay;
        Ok(DpSolution {
            assignment,
            delay_fs,
            total_width: tree_sol.total_width,
            stats: tree_sol.stats,
        })
    }
}

/// One solver of each kind over the same library and grid — the panel the
/// cross-validation suites iterate.
///
/// # Errors
///
/// Returns [`DpError::IllegalCandidate`] for a non-positive or non-finite
/// step.
pub fn solver_panel(
    library: &RepeaterLibrary,
    step_um: f64,
) -> Result<Vec<Box<dyn Solver>>, DpError> {
    Ok(vec![
        Box::new(ChainDpSolver::new(library.clone(), step_um)?),
        Box::new(TreeDpSolver::new(library.clone(), step_um)?),
        Box::new(BruteForceSolver::new(library.clone(), step_um)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tiny_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .segment(Segment::new(3000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    fn tiny_library() -> RepeaterLibrary {
        RepeaterLibrary::from_widths([60.0, 150.0, 300.0]).unwrap()
    }

    #[test]
    fn kinds_and_names_are_stable() {
        let panel = solver_panel(&tiny_library(), 1200.0).unwrap();
        let kinds: Vec<SolverKind> = panel.iter().map(|s| s.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                SolverKind::ChainDp,
                SolverKind::TreeDp,
                SolverKind::BruteForce
            ]
        );
        assert_eq!(SolverKind::ChainDp.to_string(), "chain-dp");
        assert!(panel.iter().filter(|s| s.is_exhaustive()).count() == 1);
    }

    #[test]
    fn all_solver_kinds_agree_on_small_instances() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let panel = solver_panel(&tiny_library(), 1200.0).unwrap();

        let delays: Vec<f64> = panel
            .iter()
            .map(|s| {
                s.solve(&SolveRequest::min_delay(&net, tech.device()))
                    .unwrap()
                    .delay_fs
            })
            .collect();
        for d in &delays[1..] {
            assert!(
                (d - delays[0]).abs() < 1e-6,
                "min-delay disagreement across solver kinds: {delays:?}"
            );
        }

        let target = delays[0] * 1.4;
        let widths: Vec<f64> = panel
            .iter()
            .map(|s| {
                s.solve(&SolveRequest::min_power(&net, tech.device(), target))
                    .unwrap()
                    .total_width
            })
            .collect();
        for w in &widths[1..] {
            assert!(
                (w - widths[0]).abs() < 1e-9,
                "min-power disagreement across solver kinds: {widths:?}"
            );
        }
    }

    #[test]
    fn solutions_satisfy_their_objective() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        let solver = ChainDpSolver::new(tiny_library(), 600.0).unwrap();
        let fastest = solver
            .solve(&SolveRequest::min_delay(&net, tech.device()))
            .unwrap();
        let sol = solver
            .solve(&SolveRequest::min_power(
                &net,
                tech.device(),
                fastest.delay_fs * 1.5,
            ))
            .unwrap();
        assert!(sol.meets(fastest.delay_fs * 1.5));
        assert!(sol.total_width <= fastest.total_width + 1e-9);
        sol.assignment.validate_on(&net).unwrap();
    }

    #[test]
    fn infeasible_and_invalid_targets_propagate() {
        let tech = Technology::generic_180nm();
        let net = tiny_net();
        for solver in solver_panel(&tiny_library(), 1200.0).unwrap() {
            let err = solver
                .solve(&SolveRequest::min_power(&net, tech.device(), 1.0))
                .unwrap_err();
            assert!(
                matches!(err, DpError::InfeasibleTarget { .. }),
                "{}: unexpected {err:?}",
                solver.kind()
            );
            let err = solver
                .solve(&SolveRequest::min_power(&net, tech.device(), -1.0))
                .unwrap_err();
            assert!(
                matches!(err, DpError::InvalidTarget { .. }),
                "{}",
                solver.kind()
            );
        }
    }

    #[test]
    fn zoned_nets_keep_solver_agreement() {
        let tech = Technology::generic_180nm();
        let net = NetBuilder::new()
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .segment(Segment::new(3000.0, 0.06, 0.18))
            .forbidden_zone(2000.0, 4000.0)
            .unwrap()
            .build()
            .unwrap();
        let panel = solver_panel(&tiny_library(), 1000.0).unwrap();
        let delays: Vec<f64> = panel
            .iter()
            .map(|s| {
                s.solve(&SolveRequest::min_delay(&net, tech.device()))
                    .unwrap()
                    .delay_fs
            })
            .collect();
        for d in &delays[1..] {
            assert!(
                (d - delays[0]).abs() < 1e-6,
                "zoned disagreement: {delays:?}"
            );
        }
        let panel_sol = panel[0]
            .solve(&SolveRequest::min_delay(&net, tech.device()))
            .unwrap();
        panel_sol.assignment.validate_on(&net).unwrap();
    }

    #[test]
    fn invalid_steps_are_rejected() {
        assert!(ChainDpSolver::new(tiny_library(), 0.0).is_err());
        assert!(TreeDpSolver::new(tiny_library(), f64::NAN).is_err());
        assert!(BruteForceSolver::new(tiny_library(), -5.0).is_err());
    }
}
