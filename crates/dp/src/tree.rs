//! Tree DP: van Ginneken / Lillis buffering on RC trees.
//!
//! The paper's final section announces an extension of the hybrid scheme
//! to interconnect trees; this module supplies the DP half of that
//! extension. Options propagate bottom-up: lifted across edges
//! (`delay += D_e + R_e·cap; cap += C_e`), cross-merged at branch points
//! (`cap` adds, `delay` maxes, `width` adds), and optionally cut by a
//! buffer at each legal node. Chains are the special case of path-shaped
//! trees, and the test suite pins tree-DP results to chain-DP results on
//! paths.
//!
//! Like the chain sweep, the engine runs on the sorted struct-of-arrays
//! frontier of [`crate::frontier`]:
//!
//! * per-node option sets are sorted `(cap, delay[, width])` frontiers
//!   parked in one append-only SoA **store arena** inside a reusable
//!   [`TreeScratch`] — no per-node `Vec` allocations;
//! * edge propagation is a linear **in-place** pass over the store's
//!   columns (the child frontier is consumed exactly once, by its
//!   parent, so it can be lifted where it lies);
//! * branch cross-merges stage the products in a reusable buffer and
//!   prune with an in-place unstable sort on the full key plus a
//!   generation sequence number (order-equivalent to the reference's
//!   clone + stable sort, without either allocation) followed by a
//!   single binary-search [`Staircase`] dominance sweep;
//! * the buffer-insert step reuses the chain engine's width buckets
//!   ([`BucketItem`], `reduce_bucket_2d`/`_3d`) and the node combine is
//!   the chain engine's linear `merge_prune_2d`/`_3d`.
//!
//! The previous engine survives verbatim as [`crate::reference::tree`]
//! and `tests/tree_frontier_equivalence.rs` pins both to byte-identical
//! [`TreeSolution`]s (assignments, float bits, work counters): the trace
//! arena is still filled eagerly in generation order and every float
//! expression matches the reference, so only the work to compute the
//! same survivors changes.

use crate::chain::DpStats;
use crate::error::DpError;
use crate::frontier::{
    cmp_f64, merge_prune_2d, merge_prune_3d, reduce_bucket_2d, reduce_bucket_3d, BucketItem,
    OptionBuf,
};
use crate::options::Staircase;
use rip_delay::RcTree;
use rip_tech::{RepeaterDevice, RepeaterLibrary};
use std::cell::RefCell;

/// A buffered-tree solution.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSolution {
    /// Per-node buffer widths (`None` = no buffer), indexed by tree node.
    pub buffer_widths: Vec<Option<f64>>,
    /// Maximum source-to-sink Elmore delay, fs.
    pub delay_fs: f64,
    /// Total buffer width, u.
    pub total_width: f64,
    /// Work counters.
    pub stats: DpStats,
}

/// Trace arena for trees: buffers chain via `prev`, branch merges join
/// two traces.
#[derive(Debug)]
enum TNode {
    Root,
    Buffer { node: usize, width: f64, prev: u32 },
    Join { a: u32, b: u32 },
}

#[derive(Debug)]
struct TArena {
    nodes: Vec<TNode>,
}

impl Default for TArena {
    fn default() -> Self {
        Self {
            nodes: vec![TNode::Root],
        }
    }
}

impl TArena {
    /// Forgets every recorded decision, keeping the allocation and the
    /// shared root (scratch reuse across solves).
    fn reset(&mut self) {
        self.nodes.truncate(1);
    }

    fn buffer(&mut self, node: usize, width: f64, prev: u32) -> u32 {
        self.nodes.push(TNode::Buffer { node, width, prev });
        (self.nodes.len() - 1) as u32
    }

    fn join(&mut self, a: u32, b: u32) -> u32 {
        // Joining with an empty trace is a no-op; skip the allocation.
        if a == 0 {
            return b;
        }
        if b == 0 {
            return a;
        }
        self.nodes.push(TNode::Join { a, b });
        (self.nodes.len() - 1) as u32
    }

    /// Collects `(node, width)` buffer decisions reachable from `handle`.
    fn collect(&self, handle: u32, out: &mut Vec<(usize, f64)>) {
        let mut stack = vec![handle];
        while let Some(h) = stack.pop() {
            match &self.nodes[h as usize] {
                TNode::Root => {}
                TNode::Buffer { node, width, prev } => {
                    out.push((*node, *width));
                    stack.push(*prev);
                }
                TNode::Join { a, b } => {
                    stack.push(*a);
                    stack.push(*b);
                }
            }
        }
    }
}

/// Tree objective selector (mirrors the chain [`crate::Objective`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum TreeMode {
    MinDelay,
    MinPower { target_fs: f64 },
}

/// One staged cross-merge product before pruning. `seq` records
/// generation order so an in-place unstable sort on the full
/// `(cap, delay[, width], seq)` key reproduces the reference pruner's
/// stable sort without its clone or temporary allocation.
#[derive(Debug, Clone, Copy)]
struct CrossItem {
    cap: f64,
    delay: f64,
    width: f64,
    trace: u32,
    seq: u32,
}

/// Reusable working memory for the tree DP: the per-node frontier store
/// (one append-only SoA arena plus `(start, len)` ranges), the running
/// cross-merge accumulator, the staged cross-merge products, the fresh
/// insertion buffer, the width bucket, the dominance staircase, and the
/// trace arena.
///
/// A scratch is plain reusable memory — it carries no configuration and
/// never influences results. Solvers reset it on entry, so a single
/// scratch can serve any interleaving of solves; reusing one across a
/// batch merely skips the per-solve allocations. `rip_core::Engine`
/// keeps a pool of these for its tree workloads; the free functions
/// ([`crate::tree_min_power`] etc.) use a thread-local one.
///
/// # Examples
///
/// ```
/// use rip_delay::RcTree;
/// use rip_dp::{tree_min_delay_with, tree_min_power_with, TreeScratch};
/// use rip_tech::{RepeaterLibrary, Technology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let mut tree = RcTree::with_root();
/// let a = tree.add_uniform_child(0, 400.0, 1200.0)?;
/// let s = tree.add_uniform_child(a, 300.0, 800.0)?;
/// tree.set_sink_cap(s, 60.0)?;
/// let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0)?;
/// let mut scratch = TreeScratch::new();
/// // The warm-up solve allocates; subsequent solves reuse the buffers.
/// let fastest = tree_min_delay_with(&mut scratch, &tree, tech.device(), 120.0, &lib, None)?;
/// for mult in [2.0, 1.5] {
///     let target = fastest.delay_fs * mult;
///     let sol = tree_min_power_with(&mut scratch, &tree, tech.device(), 120.0, &lib, None, target)?;
///     assert!(sol.delay_fs <= target);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TreeScratch {
    /// Append-only SoA store: every finished per-node frontier lives
    /// here, addressed by `ranges`.
    store: OptionBuf,
    /// `ranges[v]` = `(start, len)` of node `v`'s frontier in `store`.
    ranges: Vec<(u32, u32)>,
    /// Running cross-merge accumulator (a sorted frontier).
    acc: OptionBuf,
    /// Staged cross-merge products, pruned in place.
    products: Vec<CrossItem>,
    /// Fresh buffer-insertion options (bucketed, sorted).
    fresh: OptionBuf,
    /// Merge output buffer for `merge_prune_2d`/`_3d`.
    merged: OptionBuf,
    /// Per-width generation bucket.
    bucket: Vec<BucketItem>,
    /// Binary-search dominance staircase.
    stairs: Staircase,
    /// Trace arena (buffer/join decisions).
    arena: TArena,
}

impl TreeScratch {
    /// Creates an empty scratch. Buffers grow on first use and are
    /// retained across solves.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets per-solve state for a tree of `nodes` nodes, keeping
    /// capacity.
    fn reset(&mut self, nodes: usize) {
        self.store.clear();
        self.ranges.clear();
        self.ranges.resize(nodes, (0, 0));
        self.acc.clear();
        self.products.clear();
        self.fresh.clear();
        self.merged.clear();
        self.bucket.clear();
        self.stairs.clear();
        self.arena.reset();
    }
}

thread_local! {
    /// Scratch backing the free functions: one per thread, reused across
    /// calls so even scratch-unaware callers stop allocating after their
    /// first solve on a thread.
    static TREE_SCRATCH: RefCell<TreeScratch> = RefCell::new(TreeScratch::new());
}

/// Prunes the staged cross-merge products to their non-dominated
/// frontier and writes the survivors (sorted, reference order) into
/// `acc`: an in-place unstable sort on `(cap, delay[, width], seq)` —
/// order-equivalent to the reference's stable `prune_2d`/`prune_3d`
/// sort — followed by one linear dominance sweep (min-delay record in
/// 2D, binary-search [`Staircase`] in 3D).
fn cross_merge_prune(
    products: &mut [CrossItem],
    acc: &mut OptionBuf,
    mode: TreeMode,
    stairs: &mut Staircase,
) {
    acc.clear();
    match mode {
        TreeMode::MinDelay => {
            products.sort_unstable_by(|a, b| {
                cmp_f64(a.cap, b.cap)
                    .then_with(|| cmp_f64(a.delay, b.delay))
                    .then_with(|| a.seq.cmp(&b.seq))
            });
            let mut best_delay = f64::INFINITY;
            for p in products.iter() {
                if p.delay < best_delay {
                    best_delay = p.delay;
                    acc.push(p.cap, p.delay, p.width, p.trace, f64::NAN);
                }
            }
        }
        TreeMode::MinPower { .. } => {
            products.sort_unstable_by(|a, b| {
                cmp_f64(a.cap, b.cap)
                    .then_with(|| cmp_f64(a.delay, b.delay))
                    .then_with(|| cmp_f64(a.width, b.width))
                    .then_with(|| a.seq.cmp(&b.seq))
            });
            stairs.clear();
            for p in products.iter() {
                if !stairs.dominates(p.delay, p.width) {
                    stairs.insert(p.delay, p.width);
                    acc.push(p.cap, p.delay, p.width, p.trace, f64::NAN);
                }
            }
        }
    }
}

/// Minimum-delay buffering of an RC tree.
///
/// * `allowed` — optional per-node buffer-legality mask (e.g. forbidden
///   zones mapped onto tree nodes); the root entry is ignored (the root
///   is the driver). Default: buffers allowed everywhere but the root.
///
/// Uses a thread-local [`TreeScratch`]; batch callers that manage their
/// own scratch (or pool scratches across threads, like
/// `rip_core::Engine`) should prefer [`tree_min_delay_with`].
///
/// # Errors
///
/// Returns [`DpError::BadAllowedMask`] for a mask of the wrong length.
///
/// # Examples
///
/// ```
/// use rip_delay::RcTree;
/// use rip_dp::tree_min_delay;
/// use rip_tech::{RepeaterLibrary, Technology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let mut tree = RcTree::with_root();
/// let a = tree.add_uniform_child(0, 400.0, 1200.0)?;
/// let s1 = tree.add_uniform_child(a, 300.0, 800.0)?;
/// let s2 = tree.add_uniform_child(a, 250.0, 700.0)?;
/// tree.set_sink_cap(s1, 60.0)?;
/// tree.set_sink_cap(s2, 60.0)?;
/// let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0)?;
/// let sol = tree_min_delay(&tree, tech.device(), 120.0, &lib, None)?;
/// assert!(sol.delay_fs > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn tree_min_delay(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
) -> Result<TreeSolution, DpError> {
    TREE_SCRATCH.with(|s| {
        tree_min_delay_with(
            &mut s.borrow_mut(),
            tree,
            device,
            driver_width,
            library,
            allowed,
        )
    })
}

/// [`tree_min_delay`] with caller-provided scratch memory.
///
/// # Errors
///
/// See [`tree_min_delay`].
pub fn tree_min_delay_with(
    scratch: &mut TreeScratch,
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
) -> Result<TreeSolution, DpError> {
    solve_tree(
        scratch,
        tree,
        device,
        driver_width,
        library,
        allowed,
        TreeMode::MinDelay,
    )
}

/// Minimum-total-width buffering of an RC tree under a timing target
/// (max over sinks).
///
/// Uses a thread-local [`TreeScratch`]; batch callers should prefer
/// [`tree_min_power_with`].
///
/// # Errors
///
/// * [`DpError::InvalidTarget`] for a bad target;
/// * [`DpError::InfeasibleTarget`] when the target cannot be met;
/// * [`DpError::BadAllowedMask`] for a mask of the wrong length.
pub fn tree_min_power(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    target_fs: f64,
) -> Result<TreeSolution, DpError> {
    TREE_SCRATCH.with(|s| {
        tree_min_power_with(
            &mut s.borrow_mut(),
            tree,
            device,
            driver_width,
            library,
            allowed,
            target_fs,
        )
    })
}

/// [`tree_min_power`] with caller-provided scratch memory.
///
/// # Errors
///
/// See [`tree_min_power`].
pub fn tree_min_power_with(
    scratch: &mut TreeScratch,
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    target_fs: f64,
) -> Result<TreeSolution, DpError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(DpError::InvalidTarget { target_fs });
    }
    solve_tree(
        scratch,
        tree,
        device,
        driver_width,
        library,
        allowed,
        TreeMode::MinPower { target_fs },
    )
}

fn solve_tree(
    scratch: &mut TreeScratch,
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    library: &RepeaterLibrary,
    allowed: Option<&[bool]>,
    mode: TreeMode,
) -> Result<TreeSolution, DpError> {
    if let Some(mask) = allowed {
        if mask.len() != tree.len() {
            return Err(DpError::BadAllowedMask {
                got: mask.len(),
                expected: tree.len(),
            });
        }
    }
    let buffer_ok = |v: usize| v != 0 && allowed.map_or(true, |m| m[v]);
    let target = match mode {
        TreeMode::MinDelay => None,
        TreeMode::MinPower { target_fs } => Some(target_fs),
    };

    scratch.reset(tree.len());
    let mut stats = DpStats {
        candidates: tree.len() - 1,
        library_size: library.len(),
        ..DpStats::default()
    };

    // Sweep state is destructured so the store, the accumulator and the
    // arena can be borrowed side by side.
    let best = {
        let TreeScratch {
            store,
            ranges,
            acc,
            products,
            fresh,
            merged,
            bucket,
            stairs,
            arena,
        } = scratch;

        // Creation order guarantees parents before children, so a
        // reverse scan is a post-order. `store[ranges[v]]` holds the
        // non-dominated set looking into node v from its parent edge
        // (load the edge would see at v, worst delay from v's input to
        // any sink below, width spent below).
        for v in (0..tree.len()).rev() {
            // Cross-merge the children (lifted across their edges).
            acc.clear();
            acc.push(0.0, 0.0, 0.0, 0, f64::NAN);
            for &u in tree.children(v) {
                let wire = tree.wire(u);
                // Lift the child frontier across its edge, in place: it
                // is consumed exactly once, right here. The constant cap
                // shift and within-equal-cap-uniform delay shift
                // preserve the sort order.
                let (start, len) = ranges[u];
                let (start, end) = (start as usize, (start + len) as usize);
                for i in start..end {
                    let c = store.cap[i];
                    store.delay[i] = store.delay[i] + wire.elmore + wire.resistance * c;
                    store.cap[i] = c + wire.capacitance;
                }
                // Stage the cross products in generation order (acc
                // outer, child inner — identical to the reference, so
                // the eager trace arena fills identically too).
                products.clear();
                for a in 0..acc.len() {
                    for b in start..end {
                        let delay = acc.delay[a].max(store.delay[b]);
                        if target.is_some_and(|t| delay > t) {
                            continue;
                        }
                        let seq = products.len() as u32;
                        products.push(CrossItem {
                            cap: acc.cap[a] + store.cap[b],
                            delay,
                            width: acc.width[a] + store.width[b],
                            trace: arena.join(acc.trace[a], store.trace[b]),
                            seq,
                        });
                    }
                }
                stats.options_created += products.len() as u64;
                cross_merge_prune(products, acc, mode, stairs);
            }

            if v == 0 {
                // Driver stage at the root (tap at the root loads the
                // driver alongside the subtree).
                let tap = tree.sink_cap(0);
                for i in 0..acc.len() {
                    acc.delay[i] += device.intrinsic_delay()
                        + device.output_resistance(driver_width) * (acc.cap[i] + tap);
                }
                break;
            }

            // Buffered at v: the buffer drives the merged subtree;
            // upstream sees tap + buffer input cap. Generated per width
            // bucket (each bucket shares its cap and is reduced to its
            // sub-frontier), with the traceback allocated eagerly as the
            // reference engine does.
            let tap = tree.sink_cap(v);
            fresh.clear();
            let mut created = acc.len() as u64;
            if buffer_ok(v) {
                for &w in library.widths() {
                    let new_cap = tap + device.input_cap(w);
                    bucket.clear();
                    for i in 0..acc.len() {
                        let delay = acc.delay[i]
                            + device.intrinsic_delay()
                            + device.output_resistance(w) * acc.cap[i];
                        if target.is_some_and(|t| delay > t) {
                            continue;
                        }
                        let seq = bucket.len() as u32;
                        bucket.push(BucketItem {
                            delay,
                            width: acc.width[i] + w,
                            trace: arena.buffer(v, w, acc.trace[i]),
                            seq,
                        });
                    }
                    created += bucket.len() as u64;
                    match mode {
                        TreeMode::MinDelay => reduce_bucket_2d(bucket, |item| {
                            fresh.push(new_cap, item.delay, item.width, item.trace, f64::NAN);
                        }),
                        TreeMode::MinPower { .. } => reduce_bucket_3d(bucket, |item| {
                            fresh.push(new_cap, item.delay, item.width, item.trace, f64::NAN);
                        }),
                    }
                }
            }
            stats.options_created += created;
            // Unbuffered at v: the node's tap joins the stage load (a
            // constant shift, so the sorted order survives and the prune
            // is a single linear merge).
            for i in 0..acc.len() {
                acc.cap[i] += tap;
            }
            match mode {
                TreeMode::MinDelay => merge_prune_2d(acc, fresh, merged),
                TreeMode::MinPower { .. } => merge_prune_3d(acc, fresh, merged, stairs),
            }
            stats.options_peak = stats.options_peak.max(acc.len());
            // Park the finished frontier in the store arena.
            ranges[v] = (store.len() as u32, acc.len() as u32);
            store.append_from(acc);
        }

        // Final selection over the root frontier, with the reference's
        // exact comparator and `min_by` tie semantics.
        let finals = acc;
        match mode {
            TreeMode::MinDelay => (0..finals.len()).min_by(|&a, &b| {
                finals.delay[a]
                    .partial_cmp(&finals.delay[b])
                    .expect("finite delays")
                    .then(
                        finals.width[a]
                            .partial_cmp(&finals.width[b])
                            .expect("finite widths"),
                    )
            }),
            TreeMode::MinPower { target_fs } => (0..finals.len())
                .filter(|&i| finals.delay[i] <= target_fs)
                .min_by(|&a, &b| {
                    finals.width[a]
                        .partial_cmp(&finals.width[b])
                        .expect("finite widths")
                        .then(
                            finals.delay[a]
                                .partial_cmp(&finals.delay[b])
                                .expect("finite delays"),
                        )
                }),
        }
        .map(|i| (finals.delay[i], finals.width[i], finals.trace[i]))
    };

    let (delay_fs, total_width, trace) = match best {
        Some(parts) => parts,
        None => {
            let fastest = solve_tree(
                scratch,
                tree,
                device,
                driver_width,
                library,
                allowed,
                TreeMode::MinDelay,
            )?;
            return Err(DpError::InfeasibleTarget {
                target_fs: target.expect("only the power mode can be infeasible"),
                achievable_fs: fastest.delay_fs,
            });
        }
    };

    let mut buffers = Vec::new();
    scratch.arena.collect(trace, &mut buffers);
    let mut buffer_widths = vec![None; tree.len()];
    for (node, width) in buffers {
        buffer_widths[node] = Some(width);
    }
    stats.trace_nodes = scratch.arena.nodes.len() - 1;
    Ok(TreeSolution {
        buffer_widths,
        delay_fs,
        total_width,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::chain::{solve_min_delay, solve_min_power};
    use rip_net::{NetBuilder, Segment, TwoPinNet};
    use rip_tech::Technology;

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    /// Y-shaped tree: trunk then two branches with sinks.
    fn y_tree(dev: &RepeaterDevice) -> RcTree {
        let mut tree = RcTree::with_root();
        let trunk = tree.add_uniform_child(0, 400.0, 1200.0).unwrap();
        let s1 = tree.add_uniform_child(trunk, 300.0, 800.0).unwrap();
        let s2 = tree.add_uniform_child(trunk, 500.0, 1500.0).unwrap();
        tree.set_sink_cap(s1, dev.input_cap(60.0)).unwrap();
        tree.set_sink_cap(s2, dev.input_cap(40.0)).unwrap();
        tree
    }

    /// Maps a chain net + candidate set onto the equivalent path tree.
    fn chain_as_tree(net: &TwoPinNet, dev: &RepeaterDevice, cands: &CandidateSet) -> RcTree {
        let mut tree = RcTree::with_root();
        let mut prev_pos = 0.0;
        let mut prev_node = 0;
        for &x in cands.positions() {
            let wire = net.profile().interval(prev_pos, x);
            prev_node = tree.add_child(prev_node, wire, 0.0).unwrap();
            prev_pos = x;
        }
        let wire = net.profile().interval(prev_pos, net.total_length());
        let sink = tree.add_child(prev_node, wire, 0.0).unwrap();
        tree.set_sink_cap(sink, dev.input_cap(net.receiver_width()))
            .unwrap();
        tree
    }

    fn chain_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn tree_dp_matches_chain_dp_on_paths_min_delay() {
        let tech = tech();
        let net = chain_net();
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        let cands = CandidateSet::uniform(&net, 600.0);
        let chain_sol = solve_min_delay(&net, tech.device(), &lib, &cands);
        let tree = chain_as_tree(&net, tech.device(), &cands);
        let tree_sol =
            tree_min_delay(&tree, tech.device(), net.driver_width(), &lib, None).unwrap();
        assert!(
            (chain_sol.delay_fs - tree_sol.delay_fs).abs() < 1e-6,
            "chain {} vs tree {}",
            chain_sol.delay_fs,
            tree_sol.delay_fs
        );
        assert!((chain_sol.total_width - tree_sol.total_width).abs() < 1e-9);
    }

    #[test]
    fn tree_dp_matches_chain_dp_on_paths_min_power() {
        let tech = tech();
        let net = chain_net();
        let lib = RepeaterLibrary::from_widths([40.0, 120.0, 280.0]).unwrap();
        let cands = CandidateSet::uniform(&net, 600.0);
        let fastest = solve_min_delay(&net, tech.device(), &lib, &cands);
        let tree = chain_as_tree(&net, tech.device(), &cands);
        for mult in [1.1, 1.4, 1.9] {
            let target = fastest.delay_fs * mult;
            let chain_sol = solve_min_power(&net, tech.device(), &lib, &cands, target).unwrap();
            let tree_sol =
                tree_min_power(&tree, tech.device(), net.driver_width(), &lib, None, target)
                    .unwrap();
            assert!(
                (chain_sol.total_width - tree_sol.total_width).abs() < 1e-9,
                "mult {mult}: chain {} vs tree {}",
                chain_sol.total_width,
                tree_sol.total_width
            );
        }
    }

    #[test]
    fn solution_delay_matches_tree_evaluation() {
        let tech = tech();
        let tree = y_tree(tech.device());
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let sol = tree_min_delay(&tree, tech.device(), 120.0, &lib, None).unwrap();
        let timing = tree.evaluate_buffered(tech.device(), 120.0, &sol.buffer_widths);
        assert!(
            (timing.max_sink_delay - sol.delay_fs).abs() < 1e-6,
            "DP {} vs evaluate {}",
            sol.delay_fs,
            timing.max_sink_delay
        );
    }

    #[test]
    fn tree_min_power_meets_target_with_less_width() {
        let tech = tech();
        let tree = y_tree(tech.device());
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let fastest = tree_min_delay(&tree, tech.device(), 120.0, &lib, None).unwrap();
        let target = fastest.delay_fs * 1.5;
        let sol = tree_min_power(&tree, tech.device(), 120.0, &lib, None, target).unwrap();
        assert!(sol.delay_fs <= target * (1.0 + 1e-12));
        assert!(sol.total_width <= fastest.total_width);
        let timing = tree.evaluate_buffered(tech.device(), 120.0, &sol.buffer_widths);
        assert!((timing.max_sink_delay - sol.delay_fs).abs() < 1e-6);
    }

    #[test]
    fn infeasible_tree_target_reports_achievable() {
        let tech = tech();
        let tree = y_tree(tech.device());
        let lib = RepeaterLibrary::from_widths([20.0]).unwrap();
        let fastest = tree_min_delay(&tree, tech.device(), 120.0, &lib, None).unwrap();
        let err = tree_min_power(
            &tree,
            tech.device(),
            120.0,
            &lib,
            None,
            fastest.delay_fs * 0.5,
        )
        .unwrap_err();
        assert!(matches!(err, DpError::InfeasibleTarget { .. }));
    }

    #[test]
    fn allowed_mask_restricts_buffer_sites() {
        let tech = tech();
        let tree = y_tree(tech.device());
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        // Forbid everywhere: solution must be bufferless.
        let mask = vec![false; tree.len()];
        let sol = tree_min_delay(&tree, tech.device(), 120.0, &lib, Some(&mask)).unwrap();
        assert!(sol.buffer_widths.iter().all(Option::is_none));
        assert_eq!(sol.total_width, 0.0);
        // And matches the unbuffered evaluation.
        let unbuffered = tree.elmore_delays(tech.device(), 120.0).max_sink_delay;
        assert!((sol.delay_fs - unbuffered).abs() < 1e-6);
    }

    #[test]
    fn wrong_mask_length_is_rejected() {
        let tech = tech();
        let tree = y_tree(tech.device());
        let lib = RepeaterLibrary::paper_coarse();
        let err = tree_min_delay(&tree, tech.device(), 120.0, &lib, Some(&[true])).unwrap_err();
        assert!(matches!(
            err,
            DpError::BadAllowedMask {
                got: 1,
                expected: 4
            }
        ));
    }

    #[test]
    fn buffering_helps_an_unbalanced_tree() {
        let tech = tech();
        let dev = tech.device();
        let mut tree = RcTree::with_root();
        let trunk = tree.add_uniform_child(0, 800.0, 2500.0).unwrap();
        let near = tree.add_uniform_child(trunk, 50.0, 120.0).unwrap();
        let far1 = tree.add_uniform_child(trunk, 600.0, 1800.0).unwrap();
        let far2 = tree.add_uniform_child(far1, 600.0, 1800.0).unwrap();
        tree.set_sink_cap(near, dev.input_cap(50.0)).unwrap();
        tree.set_sink_cap(far2, dev.input_cap(50.0)).unwrap();
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let sol = tree_min_delay(&tree, dev, 120.0, &lib, None).unwrap();
        let unbuffered = tree.elmore_delays(dev, 120.0).max_sink_delay;
        assert!(sol.delay_fs < unbuffered);
        assert!(sol.buffer_widths.iter().any(Option::is_some));
    }

    #[test]
    fn reused_tree_scratch_matches_fresh_scratch() {
        // A single scratch driven through an interleaving of solves must
        // give exactly what fresh scratches give: scratch is memory, not
        // state.
        let tech = tech();
        let tree = y_tree(tech.device());
        let net = chain_net();
        let cands = CandidateSet::uniform(&net, 600.0);
        let path = chain_as_tree(&net, tech.device(), &cands);
        let lib = RepeaterLibrary::range_step(10.0, 400.0, 40.0).unwrap();
        let mut shared = TreeScratch::new();

        let fastest =
            tree_min_delay_with(&mut shared, &tree, tech.device(), 120.0, &lib, None).unwrap();
        for mult in [1.1, 1.6, 0.5, 1.3] {
            let target = fastest.delay_fs * mult;
            let reused =
                tree_min_power_with(&mut shared, &tree, tech.device(), 120.0, &lib, None, target);
            let fresh = tree_min_power_with(
                &mut TreeScratch::new(),
                &tree,
                tech.device(),
                120.0,
                &lib,
                None,
                target,
            );
            assert_eq!(format!("{reused:?}"), format!("{fresh:?}"), "mult {mult}");
            // Interleave a different topology to try to poison the
            // scratch.
            let _ = tree_min_delay_with(&mut shared, &path, tech.device(), 120.0, &lib, None);
        }
    }

    /// Deterministic quantized pseudo-random generator: coarse values so
    /// duplicates and dominance chains actually occur.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f64 / (1u64 << 31) as f64 * 8.0).round()
    }

    fn naive_pareto_2d(items: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = items
            .iter()
            .copied()
            .filter(|x| !items.iter().any(|y| y != x && y.0 <= x.0 && y.1 <= x.1))
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.dedup();
        out
    }

    fn naive_pareto_3d(items: &[(f64, f64, f64)]) -> Vec<(f64, f64, f64)> {
        let mut out: Vec<(f64, f64, f64)> = items
            .iter()
            .copied()
            .filter(|x| {
                !items
                    .iter()
                    .any(|y| y != x && y.0 <= x.0 && y.1 <= x.1 && y.2 <= x.2)
            })
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.dedup();
        out
    }

    #[test]
    fn cross_merge_fuzz_matches_naive_oracle_min_delay() {
        // The staged-product pruner vs the O(n²) dominance definition:
        // survivors must be sorted, mutually non-dominated, and
        // set-identical to the naive oracle — mirroring the chain
        // engine's prune_2d/prune_3d fuzz suites.
        let mut state = 0xC0FFEEu64;
        let mut acc = OptionBuf::default();
        let mut stairs = Staircase::new();
        for round in 0..50 {
            let n = 1 + (round * 5) % 80;
            let mut products: Vec<CrossItem> = (0..n)
                .map(|s| CrossItem {
                    cap: lcg(&mut state),
                    delay: lcg(&mut state),
                    width: 0.0,
                    trace: s,
                    seq: s,
                })
                .collect();
            let items: Vec<(f64, f64)> = products.iter().map(|p| (p.cap, p.delay)).collect();
            cross_merge_prune(&mut products, &mut acc, TreeMode::MinDelay, &mut stairs);
            let got: Vec<(f64, f64)> = (0..acc.len()).map(|i| (acc.cap[i], acc.delay[i])).collect();
            assert!(
                got.windows(2).all(|w| w[0] <= w[1]),
                "round {round}: survivors not sorted"
            );
            for (i, a) in got.iter().enumerate() {
                for (j, b) in got.iter().enumerate() {
                    assert!(
                        i == j || !(a.0 <= b.0 && a.1 <= b.1),
                        "round {round}: {a:?} dominates fellow survivor {b:?}"
                    );
                }
            }
            let mut sorted = got.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted.dedup();
            assert_eq!(sorted, naive_pareto_2d(&items), "round {round}");
        }
    }

    #[test]
    fn cross_merge_fuzz_matches_naive_oracle_min_power() {
        let mut state = 0xBEEFu64;
        let mut acc = OptionBuf::default();
        let mut stairs = Staircase::new();
        for round in 0..50 {
            let n = 1 + (round * 7) % 100;
            let mut products: Vec<CrossItem> = (0..n)
                .map(|s| CrossItem {
                    cap: lcg(&mut state),
                    delay: lcg(&mut state),
                    width: lcg(&mut state),
                    trace: s,
                    seq: s,
                })
                .collect();
            let items: Vec<(f64, f64, f64)> =
                products.iter().map(|p| (p.cap, p.delay, p.width)).collect();
            let mode = TreeMode::MinPower { target_fs: 1.0 };
            cross_merge_prune(&mut products, &mut acc, mode, &mut stairs);
            let got: Vec<(f64, f64, f64)> = (0..acc.len())
                .map(|i| (acc.cap[i], acc.delay[i], acc.width[i]))
                .collect();
            assert!(
                got.windows(2).all(|w| w[0] <= w[1]),
                "round {round}: survivors not sorted"
            );
            for (i, a) in got.iter().enumerate() {
                for (j, b) in got.iter().enumerate() {
                    assert!(
                        i == j || !(a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2),
                        "round {round}: {a:?} dominates fellow survivor {b:?}"
                    );
                }
            }
            let mut sorted = got.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted.dedup();
            assert_eq!(sorted, naive_pareto_3d(&items), "round {round}");
        }
    }

    #[test]
    fn cross_merge_collapses_duplicates_to_the_earliest_record() {
        let mut acc = OptionBuf::default();
        let mut stairs = Staircase::new();
        let mut products = vec![
            CrossItem {
                cap: 1.0,
                delay: 2.0,
                width: 3.0,
                trace: 7,
                seq: 0,
            },
            CrossItem {
                cap: 1.0,
                delay: 2.0,
                width: 3.0,
                trace: 9,
                seq: 1,
            },
        ];
        let mode = TreeMode::MinPower { target_fs: 1.0 };
        cross_merge_prune(&mut products, &mut acc, mode, &mut stairs);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc.trace, vec![7], "generation-earliest duplicate survives");
    }
}
