//! Incremental construction of two-pin nets.

use crate::error::NetError;
use crate::net::TwoPinNet;
use crate::segment::Segment;
use crate::zone::ForbiddenZone;
use rip_tech::WireLayer;

/// Default driver width when none is specified, in u.
///
/// A strong-but-not-huge driver, consistent with a global net leaving a
/// sizeable functional block.
pub const DEFAULT_DRIVER_WIDTH: f64 = 120.0;

/// Default receiver width when none is specified, in u.
pub const DEFAULT_RECEIVER_WIDTH: f64 = 60.0;

/// Builder for [`TwoPinNet`] (C-BUILDER).
///
/// Segments are appended in source-to-sink order; forbidden zones may be
/// added in any order and are normalized at build time.
///
/// # Examples
///
/// ```
/// use rip_net::NetBuilder;
/// use rip_tech::WireLayer;
///
/// # fn main() -> Result<(), rip_net::NetError> {
/// let m4 = WireLayer::metal4_180nm();
/// let m5 = WireLayer::metal5_180nm();
/// let net = NetBuilder::new()
///     .segment_on(&m4, 1800.0)
///     .segment_on(&m5, 2200.0)
///     .segment_on(&m4, 1400.0)
///     .forbidden_zone(2000.0, 3300.0)?
///     .build()?;
/// assert_eq!(net.segments().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    segments: Vec<Segment>,
    zones: Vec<ForbiddenZone>,
    driver_width: Option<f64>,
    receiver_width: Option<f64>,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a wire segment at the sink end of the chain.
    #[must_use]
    pub fn segment(mut self, segment: Segment) -> Self {
        self.segments.push(segment);
        self
    }

    /// Appends a segment of the given length on a routing layer.
    #[must_use]
    pub fn segment_on(self, layer: &WireLayer, length_um: f64) -> Self {
        self.segment(Segment::on_layer(layer, length_um))
    }

    /// Adds a forbidden zone spanning `[start, end]` µm from the source.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ZoneInverted`] for `end <= start`. Range
    /// checking against the (not yet known) net length happens at
    /// [`NetBuilder::build`].
    pub fn forbidden_zone(mut self, start: f64, end: f64) -> Result<Self, NetError> {
        self.zones.push(ForbiddenZone::new(start, end)?);
        Ok(self)
    }

    /// Sets the driver width `w_d`, in u (default
    /// [`DEFAULT_DRIVER_WIDTH`]).
    #[must_use]
    pub fn driver_width(mut self, width: f64) -> Self {
        self.driver_width = Some(width);
        self
    }

    /// Sets the receiver width `w_r`, in u (default
    /// [`DEFAULT_RECEIVER_WIDTH`]).
    #[must_use]
    pub fn receiver_width(mut self, width: f64) -> Self {
        self.receiver_width = Some(width);
        self
    }

    /// Builds the net, validating all parts.
    ///
    /// # Errors
    ///
    /// Propagates every [`TwoPinNet::new`] validation error.
    pub fn build(self) -> Result<TwoPinNet, NetError> {
        TwoPinNet::new(
            self.segments,
            self.zones,
            self.driver_width.unwrap_or(DEFAULT_DRIVER_WIDTH),
            self.receiver_width.unwrap_or(DEFAULT_RECEIVER_WIDTH),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_defaults() {
        let net = NetBuilder::new()
            .segment(Segment::new(1000.0, 0.08, 0.2))
            .build()
            .unwrap();
        assert_eq!(net.driver_width(), DEFAULT_DRIVER_WIDTH);
        assert_eq!(net.receiver_width(), DEFAULT_RECEIVER_WIDTH);
    }

    #[test]
    fn builds_with_explicit_widths() {
        let net = NetBuilder::new()
            .segment(Segment::new(1000.0, 0.08, 0.2))
            .driver_width(200.0)
            .receiver_width(30.0)
            .build()
            .unwrap();
        assert_eq!(net.driver_width(), 200.0);
        assert_eq!(net.receiver_width(), 30.0);
    }

    #[test]
    fn zone_errors_surface_at_the_right_time() {
        // Inverted zone: immediately.
        assert!(NetBuilder::new().forbidden_zone(10.0, 5.0).is_err());
        // Out-of-range zone: at build, when the length is known.
        let result = NetBuilder::new()
            .segment(Segment::new(1000.0, 0.08, 0.2))
            .forbidden_zone(500.0, 5000.0)
            .unwrap()
            .build();
        assert!(matches!(result, Err(NetError::ZoneOutOfRange { .. })));
    }

    #[test]
    fn empty_builder_fails() {
        assert!(matches!(
            NetBuilder::new().build(),
            Err(NetError::NoSegments)
        ));
    }

    #[test]
    fn segments_keep_insertion_order() {
        let net = NetBuilder::new()
            .segment(Segment::new(1000.0, 0.08, 0.2))
            .segment(Segment::new(2000.0, 0.06, 0.18))
            .build()
            .unwrap();
        assert_eq!(net.segments()[0].length_um(), 1000.0);
        assert_eq!(net.segments()[1].length_um(), 2000.0);
    }
}
