//! Error types for the interconnect substrate.

use std::fmt;

/// Errors produced while constructing or querying interconnect nets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A net must contain at least one wire segment.
    NoSegments,
    /// A segment length or electrical parameter was invalid.
    InvalidSegment {
        /// Index of the offending segment.
        index: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A forbidden zone was inverted (`end <= start`).
    ZoneInverted {
        /// Zone start, µm from the source.
        start: f64,
        /// Zone end, µm from the source.
        end: f64,
    },
    /// A forbidden zone extended outside the net span `[0, L]`.
    ZoneOutOfRange {
        /// Zone start, µm from the source.
        start: f64,
        /// Zone end, µm from the source.
        end: f64,
        /// Net length, µm.
        net_length: f64,
    },
    /// A driver or receiver width was not strictly positive and finite.
    InvalidWidth {
        /// Which terminal the width belonged to.
        terminal: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A queried position lies outside the net span `[0, L]`.
    PositionOutOfRange {
        /// The rejected position, µm.
        position: f64,
        /// Net length, µm.
        net_length: f64,
    },
    /// The forbidden zones cover the entire net, leaving no legal repeater
    /// position.
    NoLegalPosition,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoSegments => write!(f, "net must contain at least one segment"),
            NetError::InvalidSegment { index, reason } => {
                write!(f, "segment {index} is invalid: {reason}")
            }
            NetError::ZoneInverted { start, end } => {
                write!(f, "forbidden zone is inverted: start {start} >= end {end}")
            }
            NetError::ZoneOutOfRange {
                start,
                end,
                net_length,
            } => write!(
                f,
                "forbidden zone [{start}, {end}] extends outside the net span [0, {net_length}]"
            ),
            NetError::InvalidWidth { terminal, value } => {
                write!(f, "{terminal} width must be strictly positive, got {value}")
            }
            NetError::PositionOutOfRange {
                position,
                net_length,
            } => {
                write!(
                    f,
                    "position {position} lies outside the net span [0, {net_length}]"
                )
            }
            NetError::NoLegalPosition => {
                write!(
                    f,
                    "forbidden zones cover the entire net; no legal repeater position"
                )
            }
        }
    }
}

rip_tech::impl_leaf_error!(NetError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_values() {
        let msg = NetError::ZoneOutOfRange {
            start: -5.0,
            end: 100.0,
            net_length: 50.0,
        }
        .to_string();
        assert!(msg.contains("-5"));
        assert!(msg.contains("50"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<NetError>();
    }
}
