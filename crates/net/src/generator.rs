//! Random net generation matching the paper's experimental setup.
//!
//! Section 6 of the paper: nets routed on metal4/metal5 of a 0.18 µm
//! process, 4–10 segments of 1000–2500 µm each, one forbidden zone
//! covering 20–40 % of the net length, uniformly located along the net.
//! The original 20 evaluation nets are not published, so experiments
//! regenerate statistically identical suites from a fixed seed
//! (see DESIGN.md §2).

use crate::error::NetError;
use crate::net::TwoPinNet;
use crate::rng::SplitMix64;
use crate::segment::Segment;
use crate::zone::ForbiddenZone;
use rip_tech::WireLayer;

/// Distribution parameters for random two-pin nets.
///
/// The [`Default`] instance reproduces the paper's Section 6 setup.
///
/// # Examples
///
/// ```
/// use rip_net::{NetGenerator, RandomNetConfig};
///
/// let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 42).unwrap();
/// let net = gen.generate();
/// assert!(net.segments().len() >= 4 && net.segments().len() <= 10);
/// assert_eq!(net.zones().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomNetConfig {
    /// Inclusive range of segment counts (paper: 4–10).
    pub segment_count: (usize, usize),
    /// Inclusive range of per-segment lengths, µm (paper: 1000–2500).
    pub segment_length_um: (f64, f64),
    /// Number of forbidden zones per net (paper: 1).
    pub zone_count: usize,
    /// Inclusive range of the zone-length fraction of the total net
    /// length (paper: 0.2–0.4).
    pub zone_fraction: (f64, f64),
    /// Inclusive range of driver widths, u.
    pub driver_width: (f64, f64),
    /// Inclusive range of receiver widths, u.
    pub receiver_width: (f64, f64),
    /// Routing layers segments are drawn from, uniformly (paper: metal4
    /// and metal5).
    pub layers: Vec<WireLayer>,
}

impl Default for RandomNetConfig {
    fn default() -> Self {
        Self {
            segment_count: (4, 10),
            segment_length_um: (1000.0, 2500.0),
            zone_count: 1,
            zone_fraction: (0.2, 0.4),
            driver_width: (100.0, 160.0),
            receiver_width: (40.0, 80.0),
            layers: vec![WireLayer::metal4_180nm(), WireLayer::metal5_180nm()],
        }
    }
}

impl RandomNetConfig {
    /// Validates the configuration ranges.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSegment`] (index 0) when any range is
    /// inverted, non-finite, or the layer list is empty — the generator
    /// cannot produce a valid net from such a configuration.
    pub fn validate(&self) -> Result<(), NetError> {
        let ok_range = |(lo, hi): (f64, f64)| lo.is_finite() && hi.is_finite() && lo <= hi;
        let valid = self.segment_count.0 >= 1
            && self.segment_count.0 <= self.segment_count.1
            && ok_range(self.segment_length_um)
            && self.segment_length_um.0 > 0.0
            && ok_range(self.zone_fraction)
            && self.zone_fraction.0 >= 0.0
            && self.zone_fraction.1 < 1.0
            && ok_range(self.driver_width)
            && self.driver_width.0 > 0.0
            && ok_range(self.receiver_width)
            && self.receiver_width.0 > 0.0
            && !self.layers.is_empty();
        if valid {
            Ok(())
        } else {
            Err(NetError::InvalidSegment {
                index: 0,
                reason: "random net configuration has inverted or invalid ranges",
            })
        }
    }
}

/// Deterministic random net generator (seeded [`SplitMix64`]).
#[derive(Debug, Clone)]
pub struct NetGenerator {
    config: RandomNetConfig,
    rng: SplitMix64,
}

impl NetGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid (see
    /// [`RandomNetConfig::validate`]).
    pub fn from_seed(config: RandomNetConfig, seed: u64) -> Result<Self, NetError> {
        config.validate()?;
        Ok(Self {
            config,
            rng: SplitMix64::new(seed),
        })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &RandomNetConfig {
        &self.config
    }

    /// Generates the next random net.
    ///
    /// Generation cannot fail for a validated configuration: segment
    /// lengths are positive, zones are derived from the realized length,
    /// and widths are positive.
    pub fn generate(&mut self) -> TwoPinNet {
        let cfg = &self.config;
        let n_segs = self
            .rng
            .range_usize(cfg.segment_count.0, cfg.segment_count.1);
        let mut segments = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            let layer = &cfg.layers[self.rng.index(cfg.layers.len())];
            let len = self
                .rng
                .range_f64(cfg.segment_length_um.0, cfg.segment_length_um.1);
            segments.push(Segment::on_layer(layer, len));
        }
        let total: f64 = segments.iter().map(Segment::length_um).sum();
        let mut zones = Vec::with_capacity(cfg.zone_count);
        for _ in 0..cfg.zone_count {
            let frac = self.rng.range_f64(cfg.zone_fraction.0, cfg.zone_fraction.1);
            let len = frac * total;
            if len <= 0.0 {
                continue;
            }
            let start = self.rng.range_f64(0.0, total - len);
            zones.push(
                ForbiddenZone::new(start, start + len).expect("generated zone has positive length"),
            );
        }
        let wd = self.rng.range_f64(cfg.driver_width.0, cfg.driver_width.1);
        let wr = self
            .rng
            .range_f64(cfg.receiver_width.0, cfg.receiver_width.1);
        TwoPinNet::new(segments, zones, wd, wr)
            .expect("validated configuration generates valid nets")
    }

    /// Generates a reproducible suite of `count` nets from a fresh
    /// generator with the given seed.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn suite(
        config: RandomNetConfig,
        seed: u64,
        count: usize,
    ) -> Result<Vec<TwoPinNet>, NetError> {
        let mut gen = Self::from_seed(config, seed)?;
        Ok((0..count).map(|_| gen.generate()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_nets_match_paper_distribution() {
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 7).unwrap();
        for _ in 0..50 {
            let net = gen.generate();
            let n = net.segments().len();
            assert!((4..=10).contains(&n), "segment count {n}");
            for seg in net.segments() {
                assert!(seg.length_um() >= 1000.0 && seg.length_um() <= 2500.0);
            }
            assert_eq!(net.zones().len(), 1);
            let frac = net.forbidden_fraction();
            assert!(
                (0.2 - 1e-9..=0.4 + 1e-9).contains(&frac),
                "zone fraction {frac}"
            );
            assert!(net.driver_width() >= 100.0 && net.driver_width() <= 160.0);
            assert!(net.receiver_width() >= 40.0 && net.receiver_width() <= 80.0);
        }
    }

    #[test]
    fn same_seed_same_nets() {
        let a = NetGenerator::suite(RandomNetConfig::default(), 99, 5).unwrap();
        let b = NetGenerator::suite(RandomNetConfig::default(), 99, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = NetGenerator::suite(RandomNetConfig::default(), 1, 3).unwrap();
        let b = NetGenerator::suite(RandomNetConfig::default(), 2, 3).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zone_lies_within_net() {
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 5).unwrap();
        for _ in 0..20 {
            let net = gen.generate();
            let z = &net.zones()[0];
            assert!(z.start() >= 0.0);
            assert!(z.end() <= net.total_length() + 1e-9);
        }
    }

    #[test]
    fn zero_zone_configuration() {
        let config = RandomNetConfig {
            zone_count: 0,
            ..RandomNetConfig::default()
        };
        let mut gen = NetGenerator::from_seed(config, 3).unwrap();
        let net = gen.generate();
        assert!(net.zones().is_empty());
    }

    #[test]
    fn layers_are_actually_mixed() {
        let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 11).unwrap();
        let mut seen_m4 = false;
        let mut seen_m5 = false;
        for _ in 0..20 {
            let net = gen.generate();
            for seg in net.segments() {
                if (seg.r_per_um() - 0.08).abs() < 1e-12 {
                    seen_m4 = true;
                }
                if (seg.r_per_um() - 0.06).abs() < 1e-12 {
                    seen_m5 = true;
                }
            }
        }
        assert!(seen_m4 && seen_m5);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = RandomNetConfig {
            segment_count: (5, 3),
            ..RandomNetConfig::default()
        };
        assert!(NetGenerator::from_seed(bad, 0).is_err());
        let bad = RandomNetConfig {
            zone_fraction: (0.5, 1.2),
            ..RandomNetConfig::default()
        };
        assert!(NetGenerator::from_seed(bad, 0).is_err());
        let bad = RandomNetConfig {
            layers: vec![],
            ..RandomNetConfig::default()
        };
        assert!(NetGenerator::from_seed(bad, 0).is_err());
    }
}
