//! # rip-net — interconnect substrate for the RIP reproduction
//!
//! Models the paper's Problem LPRI inputs (Section 3): routed multi-layer
//! two-pin nets made of wire segments with distinct RC characteristics,
//! plus forbidden zones where macro-blocks preclude repeater placement.
//!
//! * [`Segment`], [`TwoPinNet`], [`NetBuilder`] — net construction;
//! * [`ForbiddenZone`] — open-interval placement blockages;
//! * [`RcProfile`], [`IntervalRc`], [`Side`] — exact piecewise RC prefix
//!   integrals, the numerical backbone of every delay computation in the
//!   workspace (split-invariant, O(log m) interval queries);
//! * [`uniform_candidates`], [`window_candidates`], [`snap_legal`] —
//!   candidate repeater positions for the DP engines;
//! * [`NetGenerator`], [`RandomNetConfig`] — seeded random nets matching
//!   the paper's Section 6 distribution;
//! * [`TreeNetGenerator`], [`RandomTreeConfig`], [`TreeNet`] — seeded
//!   random multi-sink tree nets for the tree extension's batch
//!   workloads.
//!
//! # Example
//!
//! ```
//! use rip_net::{uniform_candidates, NetBuilder, Segment};
//!
//! # fn main() -> Result<(), rip_net::NetError> {
//! let net = NetBuilder::new()
//!     .segment(Segment::new(2500.0, 0.08, 0.20))
//!     .segment(Segment::new(2000.0, 0.06, 0.18))
//!     .forbidden_zone(1500.0, 2600.0)?
//!     .build()?;
//!
//! // Everything Eq. (1) needs about the wire between two positions:
//! let span = net.profile().interval(500.0, 3000.0);
//! assert!(span.resistance > 0.0 && span.capacitance > 0.0);
//!
//! // The paper's 200 µm DP candidate grid, zone-aware:
//! let grid = uniform_candidates(&net, 200.0);
//! assert!(grid.iter().all(|&x| !net.is_forbidden(x)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod generator;
mod net;
mod position;
mod profile;
mod rng;
mod segment;
mod tree_gen;
mod zone;

pub use builder::{NetBuilder, DEFAULT_DRIVER_WIDTH, DEFAULT_RECEIVER_WIDTH};
pub use error::NetError;
pub use generator::{NetGenerator, RandomNetConfig};
pub use net::TwoPinNet;
pub use position::{snap_legal, sort_dedup_positions, uniform_candidates, window_candidates};
pub use profile::{IntervalRc, RcProfile, Side};
pub use rng::SplitMix64;
pub use segment::Segment;
pub use tree_gen::{RandomTreeConfig, TreeNet, TreeNetGenerator, TreeNetNode};
pub use zone::ForbiddenZone;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Segment>();
        assert_send_sync::<ForbiddenZone>();
        assert_send_sync::<TwoPinNet>();
        assert_send_sync::<RcProfile>();
        assert_send_sync::<NetGenerator>();
        assert_send_sync::<NetError>();
    }
}
