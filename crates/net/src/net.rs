//! Multi-layer two-pin interconnects (Problem LPRI, Section 3 of the
//! paper).

use crate::error::NetError;
use crate::profile::RcProfile;
use crate::segment::Segment;
use crate::zone::{normalize_zones, ForbiddenZone};

/// A routed multi-layer two-pin net: an ordered chain of wire segments
/// with distinct RC characteristics, driver/receiver widths, and forbidden
/// zones (Figure 1 of the paper).
///
/// Construction validates every segment, normalizes (sorts/merges) the
/// zones, checks that they lie within the net span, and precomputes the
/// exact RC prefix profile used by all delay computations.
///
/// # Examples
///
/// ```
/// use rip_net::{NetBuilder, Segment};
///
/// # fn main() -> Result<(), rip_net::NetError> {
/// let net = NetBuilder::new()
///     .segment(Segment::new(2000.0, 0.08, 0.2))
///     .segment(Segment::new(3000.0, 0.06, 0.18))
///     .forbidden_zone(2500.0, 3500.0)?
///     .driver_width(120.0)
///     .receiver_width(60.0)
///     .build()?;
/// assert_eq!(net.total_length(), 5000.0);
/// assert!(net.is_forbidden(3000.0));
/// assert!(!net.is_forbidden(1000.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPinNet {
    segments: Vec<Segment>,
    zones: Vec<ForbiddenZone>,
    driver_width: f64,
    receiver_width: f64,
    profile: RcProfile,
}

impl TwoPinNet {
    /// Creates a net from parts. Prefer [`crate::NetBuilder`] for
    /// incremental construction.
    ///
    /// # Errors
    ///
    /// * [`NetError::NoSegments`] / [`NetError::InvalidSegment`] for an
    ///   invalid chain;
    /// * [`NetError::InvalidWidth`] for non-positive driver/receiver
    ///   widths;
    /// * [`NetError::ZoneOutOfRange`] for zones escaping `[0, L]`.
    pub fn new(
        segments: Vec<Segment>,
        zones: Vec<ForbiddenZone>,
        driver_width: f64,
        receiver_width: f64,
    ) -> Result<Self, NetError> {
        let profile = RcProfile::new(&segments)?;
        if !driver_width.is_finite() || driver_width <= 0.0 {
            return Err(NetError::InvalidWidth {
                terminal: "driver",
                value: driver_width,
            });
        }
        if !receiver_width.is_finite() || receiver_width <= 0.0 {
            return Err(NetError::InvalidWidth {
                terminal: "receiver",
                value: receiver_width,
            });
        }
        let total = profile.total_length();
        let zones = normalize_zones(zones);
        for z in &zones {
            if z.start() < -1e-9 || z.end() > total + 1e-9 {
                return Err(NetError::ZoneOutOfRange {
                    start: z.start(),
                    end: z.end(),
                    net_length: total,
                });
            }
        }
        Ok(Self {
            segments,
            zones,
            driver_width,
            receiver_width,
            profile,
        })
    }

    /// The wire segments, in source-to-sink order.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The forbidden zones, normalized: disjoint and ascending.
    #[inline]
    pub fn zones(&self) -> &[ForbiddenZone] {
        &self.zones
    }

    /// Driver width `w_d`, in u.
    #[inline]
    pub fn driver_width(&self) -> f64 {
        self.driver_width
    }

    /// Receiver width `w_r`, in u.
    #[inline]
    pub fn receiver_width(&self) -> f64 {
        self.receiver_width
    }

    /// The precomputed RC prefix profile.
    #[inline]
    pub fn profile(&self) -> &RcProfile {
        &self.profile
    }

    /// Total routed length `L`, µm.
    #[inline]
    pub fn total_length(&self) -> f64 {
        self.profile.total_length()
    }

    /// Total wire resistance, Ω.
    #[inline]
    pub fn total_resistance(&self) -> f64 {
        self.profile.total_resistance()
    }

    /// Total wire capacitance, fF.
    #[inline]
    pub fn total_capacitance(&self) -> f64 {
        self.profile.total_capacitance()
    }

    /// Returns `true` when `x` lies strictly inside a forbidden zone
    /// (zone boundaries are legal).
    pub fn is_forbidden(&self, x: f64) -> bool {
        // Zones are sorted and disjoint: binary search by start.
        let idx = self.zones.partition_point(|z| z.start() < x);
        // Only the zone starting at or before x can contain it.
        idx > 0 && self.zones[idx - 1].contains(x)
    }

    /// Returns `true` when `x` is a legal repeater position: inside the
    /// open span `(0, L)` and not strictly inside a forbidden zone.
    pub fn is_legal_position(&self, x: f64) -> bool {
        x > 0.0 && x < self.total_length() && !self.is_forbidden(x)
    }

    /// Fraction of the net length covered by forbidden zones, in `[0, 1]`.
    pub fn forbidden_fraction(&self) -> f64 {
        let covered: f64 = self.zones.iter().map(|z| z.length_um()).sum();
        covered / self.total_length()
    }

    /// The forbidden zone containing `x`, if any.
    pub fn zone_at(&self, x: f64) -> Option<&ForbiddenZone> {
        let idx = self.zones.partition_point(|z| z.start() < x);
        if idx > 0 && self.zones[idx - 1].contains(x) {
            Some(&self.zones[idx - 1])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segments() -> Vec<Segment> {
        vec![
            Segment::new(1000.0, 0.08, 0.20),
            Segment::new(2000.0, 0.06, 0.18),
            Segment::new(1500.0, 0.08, 0.20),
        ]
    }

    fn zone(a: f64, b: f64) -> ForbiddenZone {
        ForbiddenZone::new(a, b).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let net = TwoPinNet::new(segments(), vec![zone(1200.0, 2400.0)], 120.0, 60.0).unwrap();
        assert_eq!(net.segments().len(), 3);
        assert_eq!(net.total_length(), 4500.0);
        assert_eq!(net.driver_width(), 120.0);
        assert_eq!(net.receiver_width(), 60.0);
        assert_eq!(net.zones().len(), 1);
    }

    #[test]
    fn forbidden_queries() {
        let net = TwoPinNet::new(
            segments(),
            vec![zone(1200.0, 2400.0), zone(3000.0, 3500.0)],
            120.0,
            60.0,
        )
        .unwrap();
        assert!(net.is_forbidden(1500.0));
        assert!(net.is_forbidden(3200.0));
        assert!(!net.is_forbidden(1200.0)); // boundary legal
        assert!(!net.is_forbidden(2700.0));
        assert!(net.zone_at(1500.0).is_some());
        assert!(net.zone_at(2700.0).is_none());
    }

    #[test]
    fn legal_positions_exclude_endpoints_and_zones() {
        let net = TwoPinNet::new(segments(), vec![zone(1200.0, 2400.0)], 120.0, 60.0).unwrap();
        assert!(!net.is_legal_position(0.0));
        assert!(!net.is_legal_position(4500.0));
        assert!(!net.is_legal_position(2000.0)); // inside zone
        assert!(net.is_legal_position(1000.0));
        assert!(net.is_legal_position(2400.0)); // zone end boundary
    }

    #[test]
    fn forbidden_fraction() {
        let net = TwoPinNet::new(segments(), vec![zone(1000.0, 2350.0)], 120.0, 60.0).unwrap();
        assert!((net.forbidden_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zones_are_normalized_on_construction() {
        let net = TwoPinNet::new(
            segments(),
            vec![zone(2000.0, 3000.0), zone(1000.0, 2200.0)],
            120.0,
            60.0,
        )
        .unwrap();
        assert_eq!(net.zones().len(), 1);
        assert_eq!(net.zones()[0].start(), 1000.0);
        assert_eq!(net.zones()[0].end(), 3000.0);
    }

    #[test]
    fn rejects_zone_outside_span() {
        let err = TwoPinNet::new(segments(), vec![zone(4000.0, 5000.0)], 120.0, 60.0).unwrap_err();
        assert!(matches!(err, NetError::ZoneOutOfRange { .. }));
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(matches!(
            TwoPinNet::new(segments(), vec![], 0.0, 60.0),
            Err(NetError::InvalidWidth {
                terminal: "driver",
                ..
            })
        ));
        assert!(matches!(
            TwoPinNet::new(segments(), vec![], 120.0, -3.0),
            Err(NetError::InvalidWidth {
                terminal: "receiver",
                ..
            })
        ));
    }

    #[test]
    fn rejects_empty_segments() {
        assert!(matches!(
            TwoPinNet::new(vec![], vec![], 120.0, 60.0),
            Err(NetError::NoSegments)
        ));
    }

    #[test]
    fn no_zones_means_nothing_forbidden() {
        let net = TwoPinNet::new(segments(), vec![], 120.0, 60.0).unwrap();
        assert!(!net.is_forbidden(2000.0));
        assert_eq!(net.forbidden_fraction(), 0.0);
        for x in [1.0, 100.0, 4499.0] {
            assert!(net.is_legal_position(x));
        }
    }
}
