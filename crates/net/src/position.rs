//! Candidate repeater positions.
//!
//! The DP engines choose repeater locations from a finite candidate set.
//! Two constructions appear in the paper's Section 6:
//!
//! * a **uniform grid** along the net (200 µm granularity for both the
//!   baseline DP and RIP's coarse pass), excluding forbidden zones;
//! * RIP's **windows around refined locations** (each REFINE location plus
//!   10 slots before and after at 50 µm granularity), which is what gives
//!   the final DP its fine *local* resolution at tiny global cost.

use crate::net::TwoPinNet;

/// Absolute tolerance (µm) for deduplicating candidate positions.
const POS_DEDUP_TOL: f64 = 1.0e-6;

/// Generates the uniform candidate grid of the paper's DP runs: positions
/// `step, 2·step, …` strictly inside `(0, L)`, excluding forbidden-zone
/// interiors.
///
/// # Panics
///
/// Panics if `step` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use rip_net::{uniform_candidates, NetBuilder, Segment};
///
/// # fn main() -> Result<(), rip_net::NetError> {
/// let net = NetBuilder::new()
///     .segment(Segment::new(1000.0, 0.08, 0.2))
///     .forbidden_zone(350.0, 450.0)?
///     .build()?;
/// let grid = uniform_candidates(&net, 100.0);
/// // 100..900 by 100, minus the forbidden 400.
/// assert_eq!(grid.len(), 8);
/// assert!(!grid.contains(&400.0));
/// # Ok(())
/// # }
/// ```
pub fn uniform_candidates(net: &TwoPinNet, step: f64) -> Vec<f64> {
    assert!(
        step.is_finite() && step > 0.0,
        "candidate step must be positive"
    );
    let total = net.total_length();
    let mut out = Vec::new();
    let mut k = 1usize;
    loop {
        let x = step * k as f64;
        if x >= total {
            break;
        }
        if !net.is_forbidden(x) {
            out.push(x);
        }
        k += 1;
    }
    out
}

/// Generates RIP's refined candidate set (Fig. 6, Line 3): for each center
/// `c` (a REFINE repeater location), the positions
/// `c + j·step, j ∈ [−half_slots, +half_slots]`, clamped to the open net
/// span, excluding forbidden-zone interiors, merged, sorted, and
/// deduplicated.
///
/// The paper uses `half_slots = 10`, `step = 50 µm`.
///
/// # Panics
///
/// Panics if `step` is not strictly positive and finite.
pub fn window_candidates(
    net: &TwoPinNet,
    centers: &[f64],
    half_slots: usize,
    step: f64,
) -> Vec<f64> {
    assert!(
        step.is_finite() && step > 0.0,
        "candidate step must be positive"
    );
    let mut out = Vec::with_capacity(centers.len() * (2 * half_slots + 1));
    for &c in centers {
        for j in -(half_slots as i64)..=(half_slots as i64) {
            let x = c + j as f64 * step;
            if net.is_legal_position(x) {
                out.push(x);
            }
        }
    }
    sort_dedup_positions(&mut out);
    out
}

/// Sorts positions ascending and removes near-duplicates (within
/// 10⁻⁶ µm).
pub fn sort_dedup_positions(positions: &mut Vec<f64>) {
    positions.sort_by(|a, b| a.partial_cmp(b).expect("finite positions"));
    positions.dedup_by(|a, b| (*a - *b).abs() <= POS_DEDUP_TOL);
}

/// Snaps `x` to the nearest legal repeater position: zone interiors snap
/// to the nearer zone boundary, and positions outside `(0, L)` snap just
/// inside. Returns `None` when the net has no legal position at all
/// (zones covering everything).
pub fn snap_legal(net: &TwoPinNet, x: f64) -> Option<f64> {
    let total = net.total_length();
    // Nudge endpoint positions inside the open interval by a hair.
    let inset = (total * 1e-9).max(1e-9);
    let clamped = x.clamp(inset, total - inset);
    if net.is_legal_position(clamped) {
        return Some(clamped);
    }
    let zone = net.zone_at(clamped)?;
    let to_start = clamped - zone.start();
    let to_end = zone.end() - clamped;
    let (near, far) = if to_start <= to_end {
        (zone.start(), zone.end())
    } else {
        (zone.end(), zone.start())
    };
    for candidate in [near, far] {
        let snapped = candidate.clamp(inset, total - inset);
        if net.is_legal_position(snapped) {
            return Some(snapped);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::segment::Segment;

    fn net_with_zone(zone: Option<(f64, f64)>) -> TwoPinNet {
        let b = NetBuilder::new()
            .segment(Segment::new(2000.0, 0.08, 0.2))
            .segment(Segment::new(2000.0, 0.06, 0.18));
        let b = match zone {
            Some((s, e)) => b.forbidden_zone(s, e).unwrap(),
            None => b,
        };
        b.build().unwrap()
    }

    #[test]
    fn uniform_grid_without_zone() {
        let net = net_with_zone(None);
        let grid = uniform_candidates(&net, 500.0);
        assert_eq!(
            grid,
            vec![500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0]
        );
    }

    #[test]
    fn uniform_grid_excludes_zone_interior() {
        let net = net_with_zone(Some((900.0, 2100.0)));
        let grid = uniform_candidates(&net, 500.0);
        // 1000, 1500, 2000 fall strictly inside the zone.
        assert_eq!(grid, vec![500.0, 2500.0, 3000.0, 3500.0]);
    }

    #[test]
    fn uniform_grid_keeps_zone_boundary_points() {
        let net = net_with_zone(Some((1000.0, 2000.0)));
        let grid = uniform_candidates(&net, 500.0);
        assert!(grid.contains(&1000.0));
        assert!(grid.contains(&2000.0));
        assert!(!grid.contains(&1500.0));
    }

    #[test]
    fn window_candidates_build_local_grids() {
        let net = net_with_zone(None);
        let set = window_candidates(&net, &[1000.0], 2, 50.0);
        assert_eq!(set, vec![900.0, 950.0, 1000.0, 1050.0, 1100.0]);
    }

    #[test]
    fn window_candidates_merge_overlapping_windows() {
        let net = net_with_zone(None);
        let set = window_candidates(&net, &[1000.0, 1050.0], 1, 50.0);
        // Windows {950,1000,1050} and {1000,1050,1100} merge.
        assert_eq!(set, vec![950.0, 1000.0, 1050.0, 1100.0]);
    }

    #[test]
    fn window_candidates_respect_span_and_zones() {
        let net = net_with_zone(Some((1100.0, 1300.0)));
        let set = window_candidates(&net, &[50.0, 1200.0], 2, 50.0);
        // Around 50: negative and zero positions dropped.
        assert!(set.iter().all(|&x| x > 0.0));
        // Around 1200: zone interior dropped, boundary 1100/1300 kept.
        assert!(set.contains(&1100.0));
        assert!(set.contains(&1300.0));
        assert!(!set.contains(&1150.0));
        assert!(!set.contains(&1200.0));
        assert!(!set.contains(&1250.0));
    }

    #[test]
    fn snap_legal_zone_interior_goes_to_nearer_boundary() {
        let net = net_with_zone(Some((1000.0, 2000.0)));
        assert_eq!(snap_legal(&net, 1200.0), Some(1000.0));
        assert_eq!(snap_legal(&net, 1800.0), Some(2000.0));
    }

    #[test]
    fn snap_legal_clamps_to_open_span() {
        let net = net_with_zone(None);
        let snapped = snap_legal(&net, -100.0).unwrap();
        assert!(snapped > 0.0 && snapped < 1.0);
        let snapped = snap_legal(&net, 1.0e9).unwrap();
        assert!(snapped < 4000.0 && snapped > 3999.0);
    }

    #[test]
    fn snap_legal_handles_legal_input_as_identity() {
        let net = net_with_zone(Some((1000.0, 2000.0)));
        assert_eq!(snap_legal(&net, 500.0), Some(500.0));
    }

    #[test]
    fn sort_dedup_collapses_float_noise() {
        let mut v = vec![100.0, 99.9999999, 100.0000001, 50.0];
        sort_dedup_positions(&mut v);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 50.0);
    }
}
