//! Exact piecewise RC prefix profile of a segmented net.
//!
//! The paper models each segment between adjacent repeaters as a lumped-RC
//! π section (Figure 2). A chain of π sections is *split-invariant*: a
//! segment split at any interior point into two π sections has exactly the
//! same Elmore behaviour as the unsplit segment, and both equal the
//! continuous distributed-RC integral. We therefore precompute three
//! piecewise-analytic prefix functions over the chain
//!
//! * `R(x) = ∫₀ˣ r(y) dy` — cumulative resistance,
//! * `C(x) = ∫₀ˣ c(y) dy` — cumulative capacitance,
//! * `E(x) = ∫₀ˣ r(y)·C(y) dy` — a mixed moment,
//!
//! from which every interval quantity needed by Eq. (1) follows in closed
//! form (see [`RcProfile::interval`]), for **arbitrary** repeater
//! positions, including positions strictly inside a segment.

use crate::error::NetError;
use crate::segment::Segment;

/// Which side of a position to inspect when the per-unit-length RC is
/// discontinuous there (positions on a segment boundary).
///
/// The one-sided location derivatives of the paper (Eqs. 17–18) need the
/// wire parameters immediately downstream (`(r_{i1}, c_{i1})`) and
/// immediately upstream (`(r_{(i−1)k}, c_{(i−1)k})`) of a repeater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Towards the source (smaller `x`).
    Upstream,
    /// Towards the sink (larger `x`).
    Downstream,
}

/// Lumped view of a wire interval `(a, b)`: everything Eq. (1) needs to
/// account for the wire between two adjacent repeaters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalRc {
    /// Total interval resistance `R_ab`, Ω.
    pub resistance: f64,
    /// Total interval capacitance `C_ab`, fF.
    pub capacitance: f64,
    /// Wire-internal Elmore term `D_ab`, fs: the delay through the
    /// interval's own distributed RC, excluding any load beyond `b`
    /// (the double sum of Eq. 1).
    pub elmore: f64,
}

/// Precomputed piecewise-analytic prefix integrals over a segment chain.
///
/// Constructed once per net (O(m)); every interval query is O(log m).
///
/// # Examples
///
/// ```
/// use rip_net::{RcProfile, Segment};
///
/// # fn main() -> Result<(), rip_net::NetError> {
/// let profile = RcProfile::new(&[
///     Segment::new(1000.0, 0.08, 0.2),
///     Segment::new(2000.0, 0.06, 0.18),
/// ])?;
/// let whole = profile.interval(0.0, profile.total_length());
/// assert!((whole.resistance - (80.0 + 120.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcProfile {
    /// Segment boundary positions `x₀ = 0 < x₁ < … < x_m = L`, µm.
    bounds: Vec<f64>,
    /// Per-segment resistance per µm (length m).
    r: Vec<f64>,
    /// Per-segment capacitance per µm (length m).
    c: Vec<f64>,
    /// `R(xᵢ)` at each boundary (length m+1), Ω.
    pref_r: Vec<f64>,
    /// `C(xᵢ)` at each boundary (length m+1), fF.
    pref_c: Vec<f64>,
    /// `E(xᵢ)` at each boundary (length m+1), Ω·fF = fs.
    pref_e: Vec<f64>,
}

impl RcProfile {
    /// Builds the profile for a segment chain.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoSegments`] for an empty chain and
    /// [`NetError::InvalidSegment`] for a segment with non-positive or
    /// non-finite parameters.
    pub fn new(segments: &[Segment]) -> Result<Self, NetError> {
        if segments.is_empty() {
            return Err(NetError::NoSegments);
        }
        let m = segments.len();
        let mut bounds = Vec::with_capacity(m + 1);
        let mut r = Vec::with_capacity(m);
        let mut c = Vec::with_capacity(m);
        let mut pref_r = Vec::with_capacity(m + 1);
        let mut pref_c = Vec::with_capacity(m + 1);
        let mut pref_e = Vec::with_capacity(m + 1);
        bounds.push(0.0);
        pref_r.push(0.0);
        pref_c.push(0.0);
        pref_e.push(0.0);
        for (i, seg) in segments.iter().enumerate() {
            if !seg.is_valid() {
                return Err(NetError::InvalidSegment {
                    index: i,
                    reason: "length, r and c must be strictly positive and finite",
                });
            }
            let l = seg.length_um();
            let x0 = bounds[i];
            let r0 = pref_r[i];
            let c0 = pref_c[i];
            let e0 = pref_e[i];
            bounds.push(x0 + l);
            r.push(seg.r_per_um());
            c.push(seg.c_per_um());
            pref_r.push(r0 + seg.resistance());
            pref_c.push(c0 + seg.capacitance());
            // E over the segment: ∫ r·(C(x₀) + c·(y−x₀)) dy
            //                   = r·C(x₀)·l + r·c·l²/2.
            pref_e.push(e0 + seg.r_per_um() * (c0 * l + seg.c_per_um() * l * l / 2.0));
        }
        Ok(Self {
            bounds,
            r,
            c,
            pref_r,
            pref_c,
            pref_e,
        })
    }

    /// Total net length `L`, µm.
    #[inline]
    pub fn total_length(&self) -> f64 {
        *self.bounds.last().expect("profile always has bounds")
    }

    /// Total net resistance `R(L)`, Ω.
    #[inline]
    pub fn total_resistance(&self) -> f64 {
        *self.pref_r.last().expect("profile always has bounds")
    }

    /// Total net capacitance `C(L)`, fF.
    #[inline]
    pub fn total_capacitance(&self) -> f64 {
        *self.pref_c.last().expect("profile always has bounds")
    }

    /// Number of segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.r.len()
    }

    /// Segment boundary positions `x₀ = 0 < … < x_m = L`, µm.
    #[inline]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Index of the segment containing `x`, counting a boundary position
    /// as belonging to the segment on the requested side.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `0 ≤ x ≤ L`; in release builds out-of-range
    /// positions clamp to the first/last segment.
    pub fn segment_index(&self, x: f64, side: Side) -> usize {
        debug_assert!(
            (-1e-9..=self.total_length() + 1e-9).contains(&x),
            "position {x} outside [0, {}]",
            self.total_length()
        );
        let m = self.r.len();
        // partition_point: first boundary index with bounds[idx] >= x
        // (strictly > for Downstream so that a boundary belongs to the
        // right segment).
        let idx = match side {
            Side::Downstream => self.bounds.partition_point(|&b| b <= x),
            Side::Upstream => self.bounds.partition_point(|&b| b < x),
        };
        // idx is in 0..=m+1; boundary index i means segment i-1 on the
        // upstream side and segment i on the downstream side; the
        // partition above already selects that, so just clamp to [1, m]
        // and shift.
        idx.clamp(1, m) - 1
    }

    /// Per-unit-length resistance immediately on `side` of `x`, Ω/µm.
    #[inline]
    pub fn r_at(&self, x: f64, side: Side) -> f64 {
        self.r[self.segment_index(x, side)]
    }

    /// Per-unit-length capacitance immediately on `side` of `x`, fF/µm.
    #[inline]
    pub fn c_at(&self, x: f64, side: Side) -> f64 {
        self.c[self.segment_index(x, side)]
    }

    /// Cumulative resistance `R(x)`, Ω.
    pub fn resistance_to(&self, x: f64) -> f64 {
        let i = self.segment_index(x, Side::Upstream);
        self.pref_r[i] + self.r[i] * (x - self.bounds[i])
    }

    /// Cumulative capacitance `C(x)`, fF.
    pub fn capacitance_to(&self, x: f64) -> f64 {
        let i = self.segment_index(x, Side::Upstream);
        self.pref_c[i] + self.c[i] * (x - self.bounds[i])
    }

    /// Mixed moment `E(x) = ∫₀ˣ r(y)·C(y) dy`, fs.
    fn e_to(&self, x: f64) -> f64 {
        let i = self.segment_index(x, Side::Upstream);
        let dx = x - self.bounds[i];
        self.pref_e[i] + self.r[i] * (self.pref_c[i] * dx + self.c[i] * dx * dx / 2.0)
    }

    /// Lumped view of the interval `(a, b)` (requires `a ≤ b`).
    ///
    /// The wire-internal Elmore term is computed from the prefix integrals
    /// as `D_ab = C(b)·(R(b) − R(a)) − (E(b) − E(a))`, which equals the
    /// π-ladder double sum of Eq. (1) exactly, for any split points.
    ///
    /// # Panics
    ///
    /// Debug-asserts `a ≤ b`; in release builds a reversed interval yields
    /// a negative-length result.
    pub fn interval(&self, a: f64, b: f64) -> IntervalRc {
        debug_assert!(a <= b + 1e-9, "reversed interval ({a}, {b})");
        let ra = self.resistance_to(a);
        let rb = self.resistance_to(b);
        let ca = self.capacitance_to(a);
        let cb = self.capacitance_to(b);
        let resistance = rb - ra;
        let capacitance = cb - ca;
        let elmore = cb * resistance - (self.e_to(b) - self.e_to(a));
        IntervalRc {
            resistance,
            capacitance,
            elmore,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_profile(r: f64, c: f64, l: f64) -> RcProfile {
        RcProfile::new(&[Segment::new(l, r, c)]).unwrap()
    }

    fn two_layer_profile() -> RcProfile {
        RcProfile::new(&[
            Segment::new(1000.0, 0.08, 0.20),
            Segment::new(2000.0, 0.06, 0.18),
            Segment::new(1500.0, 0.08, 0.20),
        ])
        .unwrap()
    }

    #[test]
    fn uniform_wire_matches_closed_forms() {
        let (r, c, l) = (0.08, 0.2, 2000.0);
        let p = uniform_profile(r, c, l);
        let iv = p.interval(0.0, l);
        assert!((iv.resistance - r * l).abs() < 1e-9);
        assert!((iv.capacitance - c * l).abs() < 1e-9);
        // Distributed-RC Elmore of a uniform line: r·c·l²/2.
        assert!((iv.elmore - r * c * l * l / 2.0).abs() < 1e-6);
    }

    #[test]
    fn interval_elmore_matches_pi_ladder_sum() {
        // Eq. (1)'s double sum over full segments:
        // Σ_j r_j·l_j·(c_j·l_j/2 + Σ_{h>j} c_h·l_h).
        let p = two_layer_profile();
        let segs = [
            (1000.0, 0.08, 0.20),
            (2000.0, 0.06, 0.18),
            (1500.0, 0.08, 0.20),
        ];
        let mut expected = 0.0;
        for j in 0..segs.len() {
            let (lj, rj, cj) = segs[j];
            let mut downstream: f64 = cj * lj / 2.0;
            for &(lh, _, ch) in &segs[j + 1..] {
                downstream += ch * lh;
            }
            expected += rj * lj * downstream;
        }
        let iv = p.interval(0.0, p.total_length());
        assert!(
            (iv.elmore - expected).abs() < 1e-6 * expected,
            "profile {} vs ladder {expected}",
            iv.elmore
        );
    }

    #[test]
    fn interval_composition_law() {
        // D(a,c) = D(a,b) + D(b,c) + R(a,b)·C(b,c): the Elmore composition
        // rule that makes sink-to-source DP sweeps correct.
        let p = two_layer_profile();
        let (a, b, c) = (250.0, 1700.0, 4100.0);
        let ab = p.interval(a, b);
        let bc = p.interval(b, c);
        let ac = p.interval(a, c);
        let composed = ab.elmore + bc.elmore + ab.resistance * bc.capacitance;
        assert!((ac.elmore - composed).abs() < 1e-6);
        assert!((ac.resistance - (ab.resistance + bc.resistance)).abs() < 1e-9);
        assert!((ac.capacitance - (ab.capacitance + bc.capacitance)).abs() < 1e-9);
    }

    #[test]
    fn split_invariance_within_segment() {
        // Splitting an interval anywhere inside a segment leaves the
        // composed Elmore term unchanged - the property that lets
        // repeaters sit at arbitrary intra-segment positions.
        let p = uniform_profile(0.1, 0.25, 1000.0);
        let whole = p.interval(0.0, 1000.0);
        for split in [1.0, 123.456, 500.0, 999.0] {
            let left = p.interval(0.0, split);
            let right = p.interval(split, 1000.0);
            let composed = left.elmore + right.elmore + left.resistance * right.capacitance;
            assert!((whole.elmore - composed).abs() < 1e-6, "split at {split}");
        }
    }

    #[test]
    fn empty_interval_is_zero() {
        let p = two_layer_profile();
        let iv = p.interval(1234.0, 1234.0);
        assert_eq!(iv.resistance, 0.0);
        assert_eq!(iv.capacitance, 0.0);
        assert_eq!(iv.elmore, 0.0);
    }

    #[test]
    fn one_sided_rc_at_boundaries() {
        let p = two_layer_profile();
        // x = 1000 is the boundary between segment 0 (0.08/0.20) and
        // segment 1 (0.06/0.18).
        assert_eq!(p.r_at(1000.0, Side::Upstream), 0.08);
        assert_eq!(p.r_at(1000.0, Side::Downstream), 0.06);
        assert_eq!(p.c_at(1000.0, Side::Upstream), 0.20);
        assert_eq!(p.c_at(1000.0, Side::Downstream), 0.18);
        // Strictly inside a segment both sides agree.
        assert_eq!(
            p.r_at(500.0, Side::Upstream),
            p.r_at(500.0, Side::Downstream)
        );
    }

    #[test]
    fn one_sided_rc_at_ends_clamps() {
        let p = two_layer_profile();
        assert_eq!(p.r_at(0.0, Side::Upstream), 0.08);
        assert_eq!(p.r_at(0.0, Side::Downstream), 0.08);
        let l = p.total_length();
        assert_eq!(p.r_at(l, Side::Upstream), 0.08);
        assert_eq!(p.r_at(l, Side::Downstream), 0.08);
    }

    #[test]
    fn prefix_functions_are_monotone() {
        let p = two_layer_profile();
        let mut prev_r = -1.0;
        let mut prev_c = -1.0;
        let l = p.total_length();
        let steps = 97;
        for k in 0..=steps {
            let x = l * k as f64 / steps as f64;
            let r = p.resistance_to(x);
            let c = p.capacitance_to(x);
            assert!(r >= prev_r);
            assert!(c >= prev_c);
            prev_r = r;
            prev_c = c;
        }
    }

    #[test]
    fn rejects_invalid_segments() {
        assert!(matches!(RcProfile::new(&[]), Err(NetError::NoSegments)));
        let bad = RcProfile::new(&[
            Segment::new(1000.0, 0.08, 0.2),
            Segment::new(-1.0, 0.08, 0.2),
        ]);
        assert!(matches!(
            bad,
            Err(NetError::InvalidSegment { index: 1, .. })
        ));
    }

    #[test]
    fn totals_accumulate_over_segments() {
        let p = two_layer_profile();
        assert_eq!(p.segment_count(), 3);
        assert_eq!(p.total_length(), 4500.0);
        assert!((p.total_resistance() - (80.0 + 120.0 + 120.0)).abs() < 1e-9);
        assert!((p.total_capacitance() - (200.0 + 360.0 + 300.0)).abs() < 1e-9);
    }
}
