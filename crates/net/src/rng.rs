//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds offline with no external dependencies, so the
//! seeded generation that `rand::StdRng` would normally provide is
//! implemented here with SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) —
//! a 64-bit state mixer with good statistical quality, more than enough
//! for sampling the paper's Section 6 net distribution. Determinism is
//! part of the contract: the same seed yields the same stream on every
//! platform, which the experiment suites and the batch-determinism tests
//! rely on.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use rip_net::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_f64(1.0, 2.0);
/// assert!((1.0..=2.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of entropy).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in the half-open interval `[lo, hi)` (`lo <= hi`;
    /// `lo == hi` returns `lo`).
    ///
    /// The exact upper endpoint is never produced. For the continuous
    /// distributions this generator samples that differs from an
    /// inclusive range by a measure-zero set, so documented inclusive
    /// parameter ranges (e.g. [`crate::RandomNetConfig`]) are honoured in
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi}]"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive bounds, `lo <= hi`).
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        // Multiply-shift bounded sampling (Lemire); the modulo bias of a
        // 64-bit state over tiny spans is far below anything the net
        // distribution could observe, but the multiply avoids it anyway.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128 as usize
    }

    /// A uniform index in `[0, len)` for container indexing.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty range");
        self.range_usize(0, len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_inclusive_bounds() {
        let mut rng = SplitMix64::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.range_usize(2, 4);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(
            seen_lo && seen_hi,
            "inclusive bounds must both be reachable"
        );
    }

    #[test]
    fn f64_range_is_roughly_uniform() {
        let mut rng = SplitMix64::new(5);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.range_f64(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn index_panics_on_empty() {
        let result = std::panic::catch_unwind(|| SplitMix64::new(0).index(0));
        assert!(result.is_err());
    }
}
