//! Wire segments: the building blocks of routed multi-layer nets.

use rip_tech::WireLayer;

/// One wire segment of a routed net (Figure 1 of the paper): a fixed
/// length with distinct per-unit-length RC characteristics, as produced by
/// a routing tool that may change layers along the net.
///
/// # Examples
///
/// ```
/// use rip_net::Segment;
/// use rip_tech::WireLayer;
///
/// let m4 = WireLayer::metal4_180nm();
/// let seg = Segment::on_layer(&m4, 1500.0);
/// assert_eq!(seg.length_um(), 1500.0);
/// assert_eq!(seg.r_per_um(), m4.r_per_um());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    length_um: f64,
    r_per_um: f64,
    c_per_um: f64,
}

impl Segment {
    /// Creates a segment from raw electrical parameters.
    ///
    /// * `length_um` — segment length, µm.
    /// * `r_per_um` — resistance per µm, Ω/µm.
    /// * `c_per_um` — capacitance per µm, fF/µm.
    ///
    /// Validation happens when the segment is assembled into a net (the
    /// net constructor reports the segment index with the error), so this
    /// constructor is infallible.
    pub fn new(length_um: f64, r_per_um: f64, c_per_um: f64) -> Self {
        Self {
            length_um,
            r_per_um,
            c_per_um,
        }
    }

    /// Creates a segment of the given length on a routing layer.
    pub fn on_layer(layer: &WireLayer, length_um: f64) -> Self {
        Self::new(length_um, layer.r_per_um(), layer.c_per_um())
    }

    /// Segment length, µm.
    #[inline]
    pub fn length_um(&self) -> f64 {
        self.length_um
    }

    /// Resistance per µm, Ω/µm.
    #[inline]
    pub fn r_per_um(&self) -> f64 {
        self.r_per_um
    }

    /// Capacitance per µm, fF/µm.
    #[inline]
    pub fn c_per_um(&self) -> f64 {
        self.c_per_um
    }

    /// Total lumped resistance of the segment, Ω.
    #[inline]
    pub fn resistance(&self) -> f64 {
        self.r_per_um * self.length_um
    }

    /// Total lumped capacitance of the segment, fF.
    #[inline]
    pub fn capacitance(&self) -> f64 {
        self.c_per_um * self.length_um
    }

    /// Returns `true` when all parameters are finite and strictly
    /// positive; used by net constructors for indexed validation.
    pub(crate) fn is_valid(&self) -> bool {
        self.length_um.is_finite()
            && self.length_um > 0.0
            && self.r_per_um.is_finite()
            && self.r_per_um > 0.0
            && self.c_per_um.is_finite()
            && self.c_per_um > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lumped_values() {
        let s = Segment::new(2000.0, 0.08, 0.2);
        assert!((s.resistance() - 160.0).abs() < 1e-12);
        assert!((s.capacitance() - 400.0).abs() < 1e-12);
    }

    #[test]
    fn on_layer_copies_layer_rc() {
        let m5 = WireLayer::metal5_180nm();
        let s = Segment::on_layer(&m5, 1000.0);
        assert_eq!(s.r_per_um(), 0.060);
        assert_eq!(s.c_per_um(), 0.180);
    }

    #[test]
    fn validity_check() {
        assert!(Segment::new(1.0, 1.0, 1.0).is_valid());
        assert!(!Segment::new(0.0, 1.0, 1.0).is_valid());
        assert!(!Segment::new(1.0, -1.0, 1.0).is_valid());
        assert!(!Segment::new(1.0, 1.0, f64::NAN).is_valid());
        assert!(!Segment::new(f64::INFINITY, 1.0, 1.0).is_valid());
    }
}
