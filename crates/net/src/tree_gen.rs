//! Random multi-sink tree-net generation.
//!
//! The paper closes by announcing an extension of the hybrid scheme to
//! interconnect *trees*; this module supplies the workload for it: a
//! seeded random-topology generator whose output mirrors the two-pin
//! [`crate::NetGenerator`] in spirit — routed on metal4/metal5 of the
//! 0.18 µm process, segment lengths in the paper's 1000–2500 µm range,
//! deterministic from a `u64` seed.
//!
//! A [`TreeNet`] is topology plus electrical intent: per-edge layer RC
//! and physical length, per-leaf receiver widths, a driver width, and a
//! per-node buffer-legality flag (the tree analogue of forbidden
//! zones, as a contiguous run of blocked nodes). It deliberately knows
//! nothing about delay models; `rip_delay::RcTree::from_tree_net`
//! converts it into a solvable RC tree with node indices preserved
//! one-to-one, so [`TreeNet::allowed_mask`] aligns with the tree DP's
//! `allowed` parameter.

use crate::error::NetError;
use crate::rng::SplitMix64;
use rip_tech::WireLayer;

/// One node of a [`TreeNet`]. Node 0 is the root (the net driver); every
/// other node hangs below its parent on a uniform wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNetNode {
    /// Parent node index (`None` only for the root).
    pub parent: Option<usize>,
    /// Wire resistance per µm from the parent, Ω/µm (0 for the root).
    pub r_per_um: f64,
    /// Wire capacitance per µm from the parent, fF/µm (0 for the root).
    pub c_per_um: f64,
    /// Physical wire length from the parent, µm (0 for the root).
    pub length_um: f64,
    /// Receiver width at this node, u (`Some` exactly for sinks; sinks
    /// are always leaves).
    pub sink_width: Option<f64>,
    /// Whether a repeater may legally be placed at this node (`false`
    /// inside the generated forbidden run; the root's entry is ignored
    /// by the DP).
    pub buffer_ok: bool,
}

/// A routed multi-sink tree net: topology, per-edge RC, sink loads and
/// placement legality — the tree analogue of [`crate::TwoPinNet`].
///
/// Nodes are stored parents-before-children (node 0 is the root), the
/// same creation-order convention `rip_delay`'s `RcTree` uses, so
/// conversions preserve indices.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNet {
    nodes: Vec<TreeNetNode>,
    driver_width: f64,
}

impl TreeNet {
    /// Builds a tree net from explicit nodes — the constructor behind
    /// user-supplied `.tree` files (the generator builds its nets
    /// internally).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSegment`] (carrying the offending node
    /// index) when the node list violates the [`TreeNet`] invariants:
    /// node 0 must be the parentless root with zero-length wire, every
    /// other node must name an earlier parent and carry a positive
    /// finite length with positive finite RC, sinks must be leaves with
    /// positive widths, at least one sink must exist, and the driver
    /// width must be positive and finite.
    pub fn from_nodes(nodes: Vec<TreeNetNode>, driver_width: f64) -> Result<Self, NetError> {
        let fail = |index: usize, reason: &'static str| NetError::InvalidSegment { index, reason };
        if !(driver_width.is_finite() && driver_width > 0.0) {
            return Err(fail(0, "driver width must be positive and finite"));
        }
        let root = nodes
            .first()
            .ok_or(fail(0, "a tree net needs a root node"))?;
        if root.parent.is_some() {
            return Err(fail(0, "node 0 is the root and cannot have a parent"));
        }
        if root.length_um != 0.0 || root.r_per_um != 0.0 || root.c_per_um != 0.0 {
            return Err(fail(0, "the root carries no wire (zero length and RC)"));
        }
        if root.sink_width.is_some() {
            return Err(fail(0, "the root drives the net and cannot be a sink"));
        }
        let mut has_sink = false;
        for (v, node) in nodes.iter().enumerate().skip(1) {
            match node.parent {
                Some(p) if p < v => {}
                Some(_) => return Err(fail(v, "parents must precede children")),
                None => return Err(fail(v, "only node 0 may omit a parent")),
            }
            let wire_ok = node.length_um.is_finite()
                && node.length_um > 0.0
                && node.r_per_um.is_finite()
                && node.r_per_um > 0.0
                && node.c_per_um.is_finite()
                && node.c_per_um > 0.0;
            if !wire_ok {
                return Err(fail(v, "edges need positive finite length and RC"));
            }
            if let Some(w) = node.sink_width {
                if !(w.is_finite() && w > 0.0) {
                    return Err(fail(v, "sink widths must be positive and finite"));
                }
                has_sink = true;
            }
        }
        // Sinks must be leaves: no node may name a sink as its parent.
        for (v, node) in nodes.iter().enumerate().skip(1) {
            let p = node.parent.expect("validated above");
            if nodes[p].sink_width.is_some() {
                return Err(fail(v, "sinks are leaves and cannot have children"));
            }
        }
        if !has_sink {
            return Err(fail(0, "a tree net needs at least one sink"));
        }
        Ok(Self {
            nodes,
            driver_width,
        })
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the net is only the root (no edges, no sinks).
    ///
    /// The root always exists, so [`TreeNet::len`] is never 0 and this
    /// — not `len() == 0` — is the natural emptiness notion, mirroring
    /// `rip_delay::RcTree::is_empty`.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The nodes, parents before children; index 0 is the root.
    pub fn nodes(&self) -> &[TreeNetNode] {
        &self.nodes
    }

    /// Driver width at the root, u.
    pub fn driver_width(&self) -> f64 {
        self.driver_width
    }

    /// Indices of all sink nodes, ascending.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&v| self.nodes[v].sink_width.is_some())
            .collect()
    }

    /// Total routed wire length, µm.
    pub fn total_length(&self) -> f64 {
        self.nodes.iter().map(|n| n.length_um).sum()
    }

    /// The per-node buffer-legality mask, aligned to [`TreeNet::len`] —
    /// pass it straight to the tree DP's `allowed` parameter after
    /// converting to an `RcTree` (indices are preserved).
    pub fn allowed_mask(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.buffer_ok).collect()
    }
}

/// Distribution parameters for random tree nets.
///
/// The [`Default`] instance transplants the paper's Section 6 two-pin
/// setup onto trees: metal4/metal5 segments of 1000–2500 µm, drivers of
/// 100–160 u, receivers of 40–80 u, and a forbidden run covering
/// 10–25 % of the nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomTreeConfig {
    /// Inclusive range of sink counts (one branch path per sink).
    pub sink_count: (usize, usize),
    /// Inclusive range of edges per branch path (the depth added by each
    /// new sink below its attachment point).
    pub branch_depth: (usize, usize),
    /// Inclusive range of per-edge lengths, µm (paper: 1000–2500).
    pub segment_length_um: (f64, f64),
    /// Inclusive range of the blocked-node fraction of the non-root
    /// nodes (a contiguous index run is marked buffer-illegal).
    pub forbidden_fraction: (f64, f64),
    /// Inclusive range of driver widths, u.
    pub driver_width: (f64, f64),
    /// Inclusive range of sink receiver widths, u.
    pub sink_width: (f64, f64),
    /// Routing layers edges are drawn from, uniformly (paper: metal4 and
    /// metal5).
    pub layers: Vec<WireLayer>,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        Self {
            sink_count: (2, 5),
            branch_depth: (1, 4),
            segment_length_um: (1000.0, 2500.0),
            forbidden_fraction: (0.10, 0.25),
            driver_width: (100.0, 160.0),
            sink_width: (40.0, 80.0),
            layers: vec![WireLayer::metal4_180nm(), WireLayer::metal5_180nm()],
        }
    }
}

impl RandomTreeConfig {
    /// A deliberately small distribution — two or three short branch
    /// paths with an aggressive blocked-node fraction — for
    /// latency-sensitive consumers: the service load generator, smoke
    /// scripts and the masked-tree conformance corpus, where the full
    /// hybrid pipeline must stay fast per solve while still exercising
    /// forbidden runs on every topology.
    pub fn compact() -> Self {
        Self {
            sink_count: (2, 3),
            branch_depth: (1, 2),
            segment_length_um: (800.0, 1600.0),
            forbidden_fraction: (0.2, 0.5),
            ..Self::default()
        }
    }

    /// Validates the configuration ranges.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSegment`] (index 0) when any range is
    /// inverted, non-finite, or the layer list is empty — the generator
    /// cannot produce a valid net from such a configuration.
    pub fn validate(&self) -> Result<(), NetError> {
        let ok_range = |(lo, hi): (f64, f64)| lo.is_finite() && hi.is_finite() && lo <= hi;
        let valid = self.sink_count.0 >= 1
            && self.sink_count.0 <= self.sink_count.1
            && self.branch_depth.0 >= 1
            && self.branch_depth.0 <= self.branch_depth.1
            && ok_range(self.segment_length_um)
            && self.segment_length_um.0 > 0.0
            && ok_range(self.forbidden_fraction)
            && self.forbidden_fraction.0 >= 0.0
            && self.forbidden_fraction.1 < 1.0
            && ok_range(self.driver_width)
            && self.driver_width.0 > 0.0
            && ok_range(self.sink_width)
            && self.sink_width.0 > 0.0
            && !self.layers.is_empty();
        if valid {
            Ok(())
        } else {
            Err(NetError::InvalidSegment {
                index: 0,
                reason: "random tree configuration has inverted or invalid ranges",
            })
        }
    }
}

/// Deterministic random tree-net generator (seeded [`SplitMix64`]).
///
/// # Examples
///
/// ```
/// use rip_net::{RandomTreeConfig, TreeNetGenerator};
///
/// let mut gen = TreeNetGenerator::from_seed(RandomTreeConfig::default(), 42).unwrap();
/// let net = gen.generate();
/// assert!(net.sinks().len() >= 2);
/// assert_eq!(net.allowed_mask().len(), net.len());
/// ```
#[derive(Debug, Clone)]
pub struct TreeNetGenerator {
    config: RandomTreeConfig,
    rng: SplitMix64,
}

impl TreeNetGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid (see
    /// [`RandomTreeConfig::validate`]).
    pub fn from_seed(config: RandomTreeConfig, seed: u64) -> Result<Self, NetError> {
        config.validate()?;
        Ok(Self {
            config,
            rng: SplitMix64::new(seed),
        })
    }

    /// The generator's configuration.
    pub fn config(&self) -> &RandomTreeConfig {
        &self.config
    }

    /// Generates the next random tree net.
    ///
    /// The topology grows one branch path per sink: each path starts at
    /// a uniformly chosen *internal* node (root or a previous path's
    /// interior — sinks stay leaves), descends a random number of edges,
    /// and ends in a sink. Generation cannot fail for a validated
    /// configuration.
    pub fn generate(&mut self) -> TreeNet {
        let cfg = self.config.clone();
        let driver_width = self.rng.range_f64(cfg.driver_width.0, cfg.driver_width.1);
        let mut nodes = vec![TreeNetNode {
            parent: None,
            r_per_um: 0.0,
            c_per_um: 0.0,
            length_um: 0.0,
            sink_width: None,
            buffer_ok: true,
        }];
        // Nodes a future branch may attach to: the root plus every
        // non-sink node created so far.
        let mut attach = vec![0usize];
        let sinks = self.rng.range_usize(cfg.sink_count.0, cfg.sink_count.1);
        for _ in 0..sinks {
            let mut cur = attach[self.rng.index(attach.len())];
            let depth = self.rng.range_usize(cfg.branch_depth.0, cfg.branch_depth.1);
            for d in 0..depth {
                let layer = &cfg.layers[self.rng.index(cfg.layers.len())];
                let len = self
                    .rng
                    .range_f64(cfg.segment_length_um.0, cfg.segment_length_um.1);
                let idx = nodes.len();
                nodes.push(TreeNetNode {
                    parent: Some(cur),
                    r_per_um: layer.r_per_um(),
                    c_per_um: layer.c_per_um(),
                    length_um: len,
                    sink_width: None,
                    buffer_ok: true,
                });
                // The path's last node becomes a sink (a leaf forever);
                // interior nodes are future attachment points.
                if d + 1 < depth {
                    attach.push(idx);
                }
                cur = idx;
            }
            nodes[cur].sink_width = Some(self.rng.range_f64(cfg.sink_width.0, cfg.sink_width.1));
        }
        // Forbidden run: a contiguous index window of non-root nodes is
        // marked buffer-illegal — the tree analogue of the two-pin
        // generator's single forbidden zone.
        let frac = self
            .rng
            .range_f64(cfg.forbidden_fraction.0, cfg.forbidden_fraction.1);
        let blocked = (frac * (nodes.len() - 1) as f64).floor() as usize;
        if blocked > 0 {
            let start = 1 + self.rng.range_usize(0, nodes.len() - 1 - blocked);
            for node in &mut nodes[start..start + blocked] {
                node.buffer_ok = false;
            }
        }
        TreeNet {
            nodes,
            driver_width,
        }
    }

    /// Generates a reproducible suite of `count` tree nets from a fresh
    /// generator with the given seed.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn suite(
        config: RandomTreeConfig,
        seed: u64,
        count: usize,
    ) -> Result<Vec<TreeNet>, NetError> {
        let mut gen = Self::from_seed(config, seed)?;
        Ok((0..count).map(|_| gen.generate()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trees() {
        let a = TreeNetGenerator::suite(RandomTreeConfig::default(), 99, 5).unwrap();
        let b = TreeNetGenerator::suite(RandomTreeConfig::default(), 99, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TreeNetGenerator::suite(RandomTreeConfig::default(), 1, 3).unwrap();
        let b = TreeNetGenerator::suite(RandomTreeConfig::default(), 2, 3).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generated_trees_match_the_configured_distribution() {
        let cfg = RandomTreeConfig::default();
        let mut gen = TreeNetGenerator::from_seed(cfg.clone(), 7).unwrap();
        for _ in 0..50 {
            let net = gen.generate();
            let sinks = net.sinks();
            assert!(
                (cfg.sink_count.0..=cfg.sink_count.1).contains(&sinks.len()),
                "sink count {}",
                sinks.len()
            );
            for node in &net.nodes()[1..] {
                assert!(
                    node.length_um >= cfg.segment_length_um.0
                        && node.length_um <= cfg.segment_length_um.1
                );
                assert!(node.r_per_um > 0.0 && node.c_per_um > 0.0);
            }
            assert!(
                net.driver_width() >= cfg.driver_width.0
                    && net.driver_width() <= cfg.driver_width.1
            );
            for &s in &sinks {
                let w = net.nodes()[s].sink_width.unwrap();
                assert!(w >= cfg.sink_width.0 && w <= cfg.sink_width.1);
            }
        }
    }

    #[test]
    fn structural_invariants_hold() {
        let mut gen = TreeNetGenerator::from_seed(RandomTreeConfig::default(), 11).unwrap();
        for _ in 0..50 {
            let net = gen.generate();
            // Parents precede children; the root is the only orphan.
            assert!(net.nodes()[0].parent.is_none());
            for (v, node) in net.nodes().iter().enumerate().skip(1) {
                assert!(node.parent.expect("non-root nodes have parents") < v);
            }
            // Sinks are leaves: no node names a sink as its parent.
            let sinks = net.sinks();
            assert!(!sinks.is_empty());
            for node in net.nodes() {
                if let Some(p) = node.parent {
                    assert!(net.nodes()[p].sink_width.is_none(), "sink with children");
                }
            }
            // The legality mask aligns with the node count and the
            // forbidden run stays within the configured bounds.
            let mask = net.allowed_mask();
            assert_eq!(mask.len(), net.len());
            let blocked = mask.iter().filter(|ok| !**ok).count();
            assert!(blocked as f64 <= 0.25 * (net.len() - 1) as f64 + 1.0);
        }
    }

    fn leaf(parent: usize, sink_width: Option<f64>) -> TreeNetNode {
        TreeNetNode {
            parent: Some(parent),
            r_per_um: 0.08,
            c_per_um: 0.2,
            length_um: 1500.0,
            sink_width,
            buffer_ok: true,
        }
    }

    fn root() -> TreeNetNode {
        TreeNetNode {
            parent: None,
            r_per_um: 0.0,
            c_per_um: 0.0,
            length_um: 0.0,
            sink_width: None,
            buffer_ok: true,
        }
    }

    #[test]
    fn from_nodes_accepts_generated_nets_verbatim() {
        for net in TreeNetGenerator::suite(RandomTreeConfig::default(), 17, 5).unwrap() {
            let rebuilt = TreeNet::from_nodes(net.nodes().to_vec(), net.driver_width()).unwrap();
            assert_eq!(rebuilt, net);
        }
    }

    #[test]
    fn from_nodes_rejects_invariant_violations() {
        // No sink at all.
        let err = TreeNet::from_nodes(vec![root(), leaf(0, None)], 120.0);
        assert!(err.is_err());
        // Sink with a child.
        let err = TreeNet::from_nodes(
            vec![root(), leaf(0, Some(60.0)), leaf(1, Some(60.0))],
            120.0,
        );
        assert!(err.is_err());
        // Forward parent reference.
        let err = TreeNet::from_nodes(vec![root(), leaf(2, None), leaf(1, Some(60.0))], 120.0);
        assert!(err.is_err());
        // Root with wire on it.
        let mut bad_root = root();
        bad_root.length_um = 100.0;
        assert!(TreeNet::from_nodes(vec![bad_root, leaf(0, Some(60.0))], 120.0).is_err());
        // Non-positive driver.
        assert!(TreeNet::from_nodes(vec![root(), leaf(0, Some(60.0))], 0.0).is_err());
        // Zero-length edge.
        let mut short = leaf(0, Some(60.0));
        short.length_um = 0.0;
        assert!(TreeNet::from_nodes(vec![root(), short], 120.0).is_err());
        // The minimal valid net passes.
        assert!(TreeNet::from_nodes(vec![root(), leaf(0, Some(60.0))], 120.0).is_ok());
    }

    #[test]
    fn compact_config_stays_small_and_blocks_nodes() {
        let cfg = RandomTreeConfig::compact();
        cfg.validate().unwrap();
        let mut gen = TreeNetGenerator::from_seed(cfg, 3).unwrap();
        let mut saw_blocked = false;
        for _ in 0..20 {
            let net = gen.generate();
            assert!(
                net.len() <= 8,
                "compact trees stay small ({} nodes)",
                net.len()
            );
            assert!(net.total_length() <= 3.0 * 1600.0 * 2.0);
            saw_blocked |= net.allowed_mask().iter().any(|ok| !ok);
        }
        assert!(saw_blocked, "the compact distribution must produce masks");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = RandomTreeConfig {
            sink_count: (5, 2),
            ..RandomTreeConfig::default()
        };
        assert!(TreeNetGenerator::from_seed(bad, 0).is_err());
        let bad = RandomTreeConfig {
            forbidden_fraction: (0.5, 1.5),
            ..RandomTreeConfig::default()
        };
        assert!(TreeNetGenerator::from_seed(bad, 0).is_err());
        let bad = RandomTreeConfig {
            layers: vec![],
            ..RandomTreeConfig::default()
        };
        assert!(TreeNetGenerator::from_seed(bad, 0).is_err());
        let bad = RandomTreeConfig {
            branch_depth: (0, 2),
            ..RandomTreeConfig::default()
        };
        assert!(TreeNetGenerator::from_seed(bad, 0).is_err());
    }
}
