//! Forbidden zones: spans of the net where no repeater may be placed.
//!
//! Real routed nets cross macro-blocks; inside a block there is no room
//! for a repeater. The paper (Section 3) models these as position ranges
//! `[zs, ze]` and requires every repeater location to avoid them.

use crate::error::NetError;

/// A span `(start, end)` of the net, in µm from the source, inside which
/// no repeater may be placed.
///
/// The interior is treated as an **open** interval: a repeater placed
/// exactly on a zone boundary sits at the macro-block edge and is legal.
///
/// # Examples
///
/// ```
/// use rip_net::ForbiddenZone;
///
/// # fn main() -> Result<(), rip_net::NetError> {
/// let zone = ForbiddenZone::new(2000.0, 5000.0)?;
/// assert!(zone.contains(3000.0));
/// assert!(!zone.contains(2000.0)); // boundary is legal
/// assert_eq!(zone.length_um(), 3000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForbiddenZone {
    start: f64,
    end: f64,
}

impl ForbiddenZone {
    /// Creates a zone spanning `[start, end]` µm from the source.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ZoneInverted`] when `end <= start` or either
    /// bound is not finite.
    pub fn new(start: f64, end: f64) -> Result<Self, NetError> {
        if !start.is_finite() || !end.is_finite() || end <= start {
            return Err(NetError::ZoneInverted { start, end });
        }
        Ok(Self { start, end })
    }

    /// Zone start, µm from the source.
    #[inline]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Zone end, µm from the source.
    #[inline]
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Zone length, µm.
    #[inline]
    pub fn length_um(&self) -> f64 {
        self.end - self.start
    }

    /// Returns `true` when `x` lies strictly inside the zone.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x > self.start && x < self.end
    }

    /// Returns `true` when the two zones overlap or touch, in which case
    /// they can be merged into one.
    #[inline]
    pub fn touches(&self, other: &ForbiddenZone) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Merges two touching zones into their union.
    ///
    /// Callers must check [`ForbiddenZone::touches`] first; merging
    /// disjoint zones would fabricate forbidden space between them.
    pub(crate) fn merge(&self, other: &ForbiddenZone) -> ForbiddenZone {
        ForbiddenZone {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Normalizes a list of zones: sorts by start and merges overlapping or
/// touching zones, yielding a minimal disjoint ascending list.
pub(crate) fn normalize_zones(mut zones: Vec<ForbiddenZone>) -> Vec<ForbiddenZone> {
    zones.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite zone bounds"));
    let mut merged: Vec<ForbiddenZone> = Vec::with_capacity(zones.len());
    for z in zones {
        match merged.last_mut() {
            Some(last) if last.touches(&z) => *last = last.merge(&z),
            _ => merged.push(z),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(a: f64, b: f64) -> ForbiddenZone {
        ForbiddenZone::new(a, b).unwrap()
    }

    #[test]
    fn boundaries_are_legal_interior_is_not() {
        let zone = z(10.0, 20.0);
        assert!(!zone.contains(10.0));
        assert!(!zone.contains(20.0));
        assert!(zone.contains(10.0 + 1e-9));
        assert!(zone.contains(19.999));
        assert!(!zone.contains(5.0));
        assert!(!zone.contains(25.0));
    }

    #[test]
    fn rejects_inverted_and_nonfinite() {
        assert!(ForbiddenZone::new(20.0, 10.0).is_err());
        assert!(ForbiddenZone::new(10.0, 10.0).is_err());
        assert!(ForbiddenZone::new(f64::NAN, 10.0).is_err());
        assert!(ForbiddenZone::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn touching_detection() {
        assert!(z(0.0, 10.0).touches(&z(10.0, 20.0)));
        assert!(z(0.0, 10.0).touches(&z(5.0, 20.0)));
        assert!(!z(0.0, 10.0).touches(&z(11.0, 20.0)));
    }

    #[test]
    fn normalize_merges_overlaps() {
        let zones = vec![z(30.0, 40.0), z(0.0, 10.0), z(5.0, 20.0), z(20.0, 25.0)];
        let merged = normalize_zones(zones);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start(), 0.0);
        assert_eq!(merged[0].end(), 25.0);
        assert_eq!(merged[1].start(), 30.0);
        assert_eq!(merged[1].end(), 40.0);
    }

    #[test]
    fn normalize_preserves_disjoint() {
        let zones = vec![z(50.0, 60.0), z(0.0, 10.0)];
        let merged = normalize_zones(zones);
        assert_eq!(merged.len(), 2);
        assert!(merged[0].start() < merged[1].start());
    }

    #[test]
    fn normalize_empty_is_empty() {
        assert!(normalize_zones(vec![]).is_empty());
    }
}
