//! Std-only observability primitives for the RIP reproduction.
//!
//! Three instrument kinds, all lock-free on the hot path:
//!
//! * [`Counter`] — a monotonically increasing `u64`;
//! * [`Gauge`] — a settable `i64` level (queue depths, active
//!   connections);
//! * [`Histogram`] — a fixed 64-bucket log2 latency histogram with an
//!   exact `count` and `sum`, from which p50/p90/p99 estimates derive.
//!
//! Instruments live behind a named [`MetricsRegistry`]: `get-or-create`
//! by name, so independently constructed components (an engine, its
//! serving edge, a respawned shard worker) resolve the *same*
//! instrument handles and their observations accumulate in one place.
//! Registries snapshot into plain data ([`RegistrySnapshot`]) that can
//! be merged across shards and rendered as JSON or Prometheus-style
//! text.
//!
//! # Histogram bucket semantics
//!
//! Bucket 0 holds exact zeros. Bucket `i` (1 ≤ i ≤ 62) holds values in
//! `[2^(i-1), 2^i - 1]`; bucket 63 holds everything from `2^62` up. A
//! quantile estimate is the **upper bound** of the bucket containing
//! the requested rank, so for any nonzero exact quantile `x` the
//! estimate `e` satisfies `x ≤ e < 2·x` — at most one power of two
//! high, never low. `count` and `sum` are exact, so mean latency is
//! exact too.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets (log2 buckets over the `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Rezeroes the counter (monitoring-window resets).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A settable level (queue depth, active connections, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (negative to decrease).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Rezeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed 64-bucket log2 histogram over `u64` observations
/// (typically nanoseconds), with an exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for exact zeros, otherwise one bucket
/// per power of two (`[2^(i-1), 2^i - 1]`), clamped to bucket 63.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `index` can hold (the quantile estimate
/// reported for ranks landing in that bucket).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records the nanoseconds elapsed since `start`.
    pub fn observe_since(&self, start: Instant) {
        self.observe_duration(start.elapsed());
    }

    /// Observations so far (exact).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of every observation (exact; `sum / count` is the exact
    /// mean).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A quantile estimate from the live buckets (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Rezeroes every bucket and the count/sum.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets (individually atomic reads:
    /// concurrent observers may skew count vs buckets by in-flight
    /// observations, never corrupt them).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`], mergeable across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations (exact).
    pub count: u64,
    /// Sum of observations (exact).
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The quantile estimate for `q` in `[0, 1]`: the upper bound of
    /// the bucket containing rank `ceil(q · count)`. For a nonzero
    /// exact quantile `x` the estimate `e` satisfies `x ≤ e < 2·x`.
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Folds `other` into `self` (bucket-wise sums) — how a sharded
    /// front end aggregates per-shard histograms.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs — the
    /// compact wire rendering.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_bound(i), n))
            .collect()
    }
}

/// One named instrument slot of a registry.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named set of instruments with get-or-create semantics: resolving
/// the same name twice (even from different components, even after a
/// worker respawn) yields the same instrument, so observations
/// accumulate across component lifetimes as long as the registry
/// itself is shared.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` already names a different instrument kind —
    /// a programming error, not an operational condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Resolves (creating on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` already names a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Resolves (creating on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` already names a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Rezeroes every registered instrument (names stay registered, so
    /// outstanding handles keep working) — the `reset_stats` hook.
    pub fn reset(&self) {
        for instrument in self.lock().values() {
            match instrument {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.lock();
        let mut snapshot = RegistrySnapshot::default();
        for (name, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snapshot.gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => snapshot.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snapshot
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        self.instruments
            .lock()
            .expect("metrics registry lock is never poisoned")
    }
}

/// Plain-data copy of a whole registry: what the serve layer renders
/// into `metrics` responses and what a sharded front end merges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self`: counters and histograms with the same
    /// name sum, gauges sum levels, and new names interleave in sorted
    /// order.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, value) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += value;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, i64> = self.gauges.drain(..).collect();
        for (name, value) in &other.gauges {
            *gauges.entry(name.clone()).or_insert(0) += value;
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.drain(..).collect();
        for (name, snapshot) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(snapshot);
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Renders the snapshot as Prometheus-style exposition text:
    /// counters and gauges as `name value` lines, histograms as
    /// `name_count`, `name_sum` and `name{quantile="…"}` estimate
    /// lines.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — a tiny deterministic generator for oracle inputs
    /// (the crate stays dependency-free).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
        // Every bucket's upper bound lands back in that bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    /// The naive oracle: exact quantile over the sorted values with the
    /// same rank convention the histogram uses.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn histogram_quantiles_bound_the_naive_oracle_within_2x() {
        for seed in [7u64, 99, 2005] {
            let mut rng = Rng(seed);
            let hist = Histogram::new();
            let mut values: Vec<u64> = (0..5000)
                .map(|_| {
                    // Mix magnitudes: exercise small, medium and huge
                    // buckets (and exact zeros).
                    match rng.next() % 4 {
                        0 => rng.next() % 16,
                        1 => rng.next() % 10_000,
                        2 => rng.next() % 100_000_000,
                        _ => rng.next(),
                    }
                })
                .collect();
            for &v in &values {
                hist.observe(v);
            }
            values.sort_unstable();
            assert_eq!(hist.count(), 5000);
            let exact_sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
            assert_eq!(hist.sum(), exact_sum, "sum is exact");
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let exact = exact_quantile(&values, q);
                let estimate = hist.quantile(q);
                if exact == 0 {
                    assert_eq!(estimate, 0, "q={q} seed={seed}");
                } else {
                    assert!(
                        estimate >= exact,
                        "estimate must never undershoot: q={q} exact={exact} est={estimate}"
                    );
                    // Strictly under 2x for values below the clamp
                    // bucket; the top bucket saturates to u64::MAX.
                    if exact < (1 << 62) {
                        assert!(
                            estimate < exact.saturating_mul(2),
                            "estimate must stay under 2x: q={q} exact={exact} est={estimate}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn histogram_reset_rezeroes_everything() {
        let hist = Histogram::new();
        hist.observe(5);
        hist.observe(500);
        assert_eq!(hist.count(), 2);
        hist.reset();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.sum(), 0);
        assert_eq!(hist.quantile(0.5), 0);
        assert_eq!(hist.snapshot().nonzero_buckets(), Vec::new());
    }

    #[test]
    fn registry_get_or_create_is_idempotent_and_shared() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit one instrument");
        let h1 = registry.histogram("latency_ns");
        let h2 = registry.histogram("latency_ns");
        h1.observe(10);
        h2.observe(20);
        assert_eq!(h1.count(), 2);
        let g = registry.gauge("depth");
        g.set(4);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters, vec![("requests".to_string(), 3)]);
        assert_eq!(snapshot.gauges, vec![("depth".to_string(), 4)]);
        assert_eq!(snapshot.histograms.len(), 1);
        assert_eq!(snapshot.histogram("latency_ns").unwrap().count, 2);
        // Reset zeroes values but keeps names and handles live.
        registry.reset();
        assert_eq!(a.get(), 0);
        a.inc();
        assert_eq!(registry.snapshot().counter("requests"), Some(1));
    }

    #[test]
    fn snapshot_merge_sums_by_name_and_unions_the_rest() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        r1.counter("shared").add(5);
        r2.counter("shared").add(7);
        r2.counter("only_b").add(1);
        r1.histogram("lat").observe(100);
        r2.histogram("lat").observe(200);
        r2.gauge("depth").set(3);
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("shared"), Some(12));
        assert_eq!(merged.counter("only_b"), Some(1));
        let lat = merged.histogram("lat").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 300);
        assert_eq!(merged.gauges, vec![("depth".to_string(), 3)]);
        // Merged names stay sorted.
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["only_b", "shared"]);
    }

    #[test]
    fn prometheus_text_renders_every_instrument() {
        let registry = MetricsRegistry::new();
        registry.counter("requests_total").add(3);
        registry.gauge("queue_depth").set(2);
        registry.histogram("solve_ns").observe(1000);
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total 3"), "{text}");
        assert!(text.contains("queue_depth 2"), "{text}");
        assert!(text.contains("solve_ns_count 1"), "{text}");
        assert!(text.contains("solve_ns_sum 1000"), "{text}");
        assert!(text.contains("solve_ns{quantile=\"0.5\"}"), "{text}");
    }
}
