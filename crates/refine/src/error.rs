//! Error types for the analytical solver.

use rip_delay::DelayError;
use std::fmt;

/// Errors produced by the REFINE solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RefineError {
    /// The initial repeater positions were invalid for the net (outside
    /// the span or non-increasing).
    BadPositions(DelayError),
    /// The timing target was not strictly positive and finite.
    InvalidTarget {
        /// The rejected target, fs.
        target_fs: f64,
    },
    /// Even the delay-optimal continuous widths cannot meet the target at
    /// the given repeater positions.
    InfeasibleTarget {
        /// The requested target, fs.
        target_fs: f64,
        /// Minimum delay achievable at these positions with continuous
        /// widths, fs.
        achievable_fs: f64,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The inner width solver failed to converge (pathological input).
    NonConvergence {
        /// Which stage failed.
        stage: &'static str,
    },
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::BadPositions(e) => write!(f, "invalid initial positions: {e}"),
            RefineError::InvalidTarget { target_fs } => {
                write!(
                    f,
                    "timing target must be strictly positive and finite, got {target_fs} fs"
                )
            }
            RefineError::InfeasibleTarget {
                target_fs,
                achievable_fs,
            } => write!(
                f,
                "target {target_fs} fs is unreachable at these positions \
                 (continuous-width minimum: {achievable_fs} fs)"
            ),
            RefineError::InvalidConfig { reason } => {
                write!(f, "invalid REFINE configuration: {reason}")
            }
            RefineError::NonConvergence { stage } => {
                write!(f, "width solver failed to converge during {stage}")
            }
        }
    }
}

rip_tech::impl_error_wrapper!(RefineError { BadPositions(DelayError) });

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chains_to_delay_error() {
        let err = RefineError::BadPositions(DelayError::DuplicatePosition { position: 1.0 });
        assert!(err.source().is_some());
        assert!(err.to_string().contains("invalid initial positions"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<RefineError>();
    }
}
