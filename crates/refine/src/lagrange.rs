//! Lagrangian width solving (Fig. 5, Lines 1 and 7 of the paper).
//!
//! With repeater positions fixed, power minimization under the active
//! timing constraint (Eq. 5 — the constraint binds at the optimum) has
//! the KKT system
//!
//! ```text
//! 1 + λ·∂τ/∂wᵢ = 0,  i = 1…n        (Eq. 8)
//! τ(w) = τ_t                         (Eq. 5)
//! ```
//!
//! Rearranging Eq. (8) gives a contraction in `w` for fixed `λ`:
//!
//! ```text
//! wᵢ = sqrt( λ·Rs·(Cᵢ + Co·w_{i+1}) / (1 + λ·Co·(R_{i−1} + Rs/w_{i−1})) )
//! ```
//!
//! and `τ(w(λ))` is monotone decreasing in `λ` (λ is the marginal width
//! price of delay), so an outer bisection on `λ` pins `τ = τ_t`. A damped
//! Newton pass on the full `(w, λ)` system (see [`crate::newton`])
//! optionally polishes the result to machine precision.

use crate::error::RefineError;
use crate::newton::{newton_solve, NewtonOptions};
use rip_delay::ChainView;

/// Configuration of the width solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthSolverConfig {
    /// Lower bound on continuous widths, u (physical floor; default 1.0 =
    /// the minimum repeater width).
    pub width_floor: f64,
    /// Relative tolerance on `τ(w) = τ_t` for the λ bisection.
    pub delay_tolerance: f64,
    /// Maximum inner fixed-point iterations per λ.
    pub max_fixed_point_iters: usize,
    /// Maximum outer bisection iterations.
    pub max_bisection_iters: usize,
    /// Whether to polish with a damped Newton pass on the full KKT
    /// system.
    pub newton_polish: bool,
}

impl Default for WidthSolverConfig {
    fn default() -> Self {
        Self {
            width_floor: 1.0,
            delay_tolerance: 1e-10,
            max_fixed_point_iters: 300,
            max_bisection_iters: 200,
            newton_polish: true,
        }
    }
}

/// Solution of the width subproblem.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthSolve {
    /// Optimal continuous widths, u (one per repeater).
    pub widths: Vec<f64>,
    /// The Lagrange multiplier λ (fs⁻¹·u — marginal width per unit of
    /// delay).
    pub lambda: f64,
    /// Achieved delay `τ(w)`, fs (equals the target up to tolerance,
    /// unless the width floor binds on a very loose target).
    pub delay_fs: f64,
    /// Total width `Σwᵢ`, u.
    pub total_width: f64,
}

/// Solves Eqs. (5) + (8) for the optimal continuous widths at the view's
/// fixed positions.
///
/// # Errors
///
/// * [`RefineError::InvalidTarget`] for a bad target;
/// * [`RefineError::InfeasibleTarget`] when even the delay-optimal
///   continuous widths (the λ→∞ limit) cannot meet the target at these
///   positions.
///
/// # Examples
///
/// ```
/// use rip_delay::ChainView;
/// use rip_net::{NetBuilder, Segment};
/// use rip_refine::{solve_widths, WidthSolverConfig};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(8000.0, 0.08, 0.2))
///     .build()?;
/// let view = ChainView::new(&net, tech.device(), vec![2700.0, 5400.0])?;
/// // A generous target: the solver finds small widths that just meet it.
/// let solve = solve_widths(&view, 2.0e6, &WidthSolverConfig::default())?;
/// assert!((solve.delay_fs - 2.0e6).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn solve_widths(
    view: &ChainView<'_>,
    target_fs: f64,
    config: &WidthSolverConfig,
) -> Result<WidthSolve, RefineError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(RefineError::InvalidTarget { target_fs });
    }
    let n = view.len();
    if n == 0 {
        // No repeaters: the delay is fixed by the wire and driver.
        let delay = view.total_delay(&[]);
        if delay > target_fs * (1.0 + 1e-12) {
            return Err(RefineError::InfeasibleTarget {
                target_fs,
                achievable_fs: delay,
            });
        }
        return Ok(WidthSolve {
            widths: vec![],
            lambda: 0.0,
            delay_fs: delay,
            total_width: 0.0,
        });
    }

    // --- Feasibility: λ → ∞ is the unconstrained delay optimum.
    let mut w_fast = vec![100.0_f64; n];
    fixed_point(view, f64::INFINITY, &mut w_fast, config);
    let best_delay = view.total_delay(&w_fast);
    if best_delay > target_fs * (1.0 + 1e-12) {
        return Err(RefineError::InfeasibleTarget {
            target_fs,
            achievable_fs: best_delay,
        });
    }

    // --- Bracket λ: τ(λ) decreases from +∞ (λ→0) to best_delay (λ→∞).
    let mut lambda_hi = 1e-6;
    let mut w = vec![config.width_floor.max(10.0); n];
    let mut delay_hi = eval_lambda(view, lambda_hi, &mut w, config);
    let mut grow = 0;
    while delay_hi > target_fs && grow < 200 {
        lambda_hi *= 4.0;
        delay_hi = eval_lambda(view, lambda_hi, &mut w, config);
        grow += 1;
    }
    if delay_hi > target_fs {
        // Pathological: fall back to the λ→∞ widths (still feasible).
        let delay = view.total_delay(&w_fast);
        let total = w_fast.iter().sum();
        return Ok(WidthSolve {
            widths: w_fast,
            lambda: f64::INFINITY,
            delay_fs: delay,
            total_width: total,
        });
    }
    let mut lambda_lo = lambda_hi / 4.0;
    let mut delay_lo = eval_lambda(view, lambda_lo, &mut w, config);
    let mut shrink = 0;
    while delay_lo <= target_fs && shrink < 200 {
        // The floor can make very small λ feasible already; λ_lo = 0 is
        // then the floor-bound optimum.
        lambda_lo /= 4.0;
        delay_lo = eval_lambda(view, lambda_lo, &mut w, config);
        shrink += 1;
        if lambda_lo < 1e-30 {
            // Floor-width solution already meets the target: done (the
            // equality of Eq. 5 cannot bind below the physical floor).
            let mut w_floor = vec![config.width_floor; n];
            fixed_point(view, lambda_lo, &mut w_floor, config);
            let delay = view.total_delay(&w_floor);
            let total = w_floor.iter().sum();
            return Ok(WidthSolve {
                widths: w_floor,
                lambda: lambda_lo,
                delay_fs: delay,
                total_width: total,
            });
        }
    }

    // --- Bisect λ to pin τ = τ_t.
    for _ in 0..config.max_bisection_iters {
        let mid = (lambda_lo * lambda_hi).sqrt(); // geometric: λ spans decades
        let delay_mid = eval_lambda(view, mid, &mut w, config);
        if (delay_mid - target_fs).abs() <= config.delay_tolerance * target_fs {
            lambda_hi = mid;
            break;
        }
        if delay_mid > target_fs {
            lambda_lo = mid;
        } else {
            lambda_hi = mid;
        }
    }
    // Use the feasible end of the bracket.
    let mut lambda = lambda_hi;
    let mut delay = eval_lambda(view, lambda, &mut w, config);

    // --- Optional Newton polish on the full KKT system.
    if config.newton_polish {
        if let Some((wp, lp)) = polish(view, &w, lambda, target_fs, config) {
            let dp = view.total_delay(&wp);
            // Accept only solutions that stay feasible.
            if dp <= target_fs * (1.0 + 1e-9) {
                w = wp;
                lambda = lp;
                delay = dp;
            }
        }
    }

    let total = w.iter().sum();
    Ok(WidthSolve {
        widths: w,
        lambda,
        delay_fs: delay,
        total_width: total,
    })
}

/// KKT residuals at `(widths, λ)`: `n` entries of `1 + λ·∂τ/∂wᵢ` followed
/// by `τ(w) − τ_t`. Exposed for tests and diagnostics.
pub fn kkt_residuals(
    view: &ChainView<'_>,
    widths: &[f64],
    lambda: f64,
    target_fs: f64,
) -> Vec<f64> {
    let mut res: Vec<f64> = (0..widths.len())
        .map(|j| 1.0 + lambda * view.dtau_dw(widths, j))
        .collect();
    res.push(view.total_delay(widths) - target_fs);
    res
}

/// Runs the fixed-point width update at fixed λ (∞ = unconstrained delay
/// optimum), in place. Returns the number of iterations used.
fn fixed_point(
    view: &ChainView<'_>,
    lambda: f64,
    w: &mut [f64],
    config: &WidthSolverConfig,
) -> usize {
    let n = w.len();
    let rs = view.device().rs();
    let co = view.device().co();
    for iter in 0..config.max_fixed_point_iters {
        let mut max_rel = 0.0_f64;
        for j in 0..n {
            let w_up = view.upstream_width(w, j);
            let w_down = view.downstream_width(w, j);
            let r_up = view.upstream_wire_resistance(j);
            let c_down = view.downstream_wire_capacitance(j);
            let numerator = rs * (c_down + co * w_down);
            let new_w = if lambda.is_infinite() {
                // λ→∞ limit: ∂τ/∂wᵢ = 0 directly.
                (numerator / (co * (r_up + rs / w_up))).sqrt()
            } else {
                (lambda * numerator / (1.0 + lambda * co * (r_up + rs / w_up))).sqrt()
            }
            .max(config.width_floor);
            max_rel = max_rel.max((new_w - w[j]).abs() / w[j].max(1.0));
            w[j] = new_w;
        }
        if max_rel < 1e-13 {
            return iter + 1;
        }
    }
    config.max_fixed_point_iters
}

/// Evaluates `τ(w(λ))` at a given λ (fixed point warm-started from `w`).
fn eval_lambda(
    view: &ChainView<'_>,
    lambda: f64,
    w: &mut [f64],
    config: &WidthSolverConfig,
) -> f64 {
    fixed_point(view, lambda, w, config);
    view.total_delay(w)
}

/// Damped Newton on the full `(w, λ)` KKT system with analytic Jacobian.
fn polish(
    view: &ChainView<'_>,
    w0: &[f64],
    lambda0: f64,
    target_fs: f64,
    config: &WidthSolverConfig,
) -> Option<(Vec<f64>, f64)> {
    let n = w0.len();
    let rs = view.device().rs();
    let co = view.device().co();
    let mut x0 = w0.to_vec();
    x0.push(lambda0);
    let mut lower = vec![config.width_floor; n];
    lower.push(1e-30); // λ > 0
    let options = NewtonOptions {
        tolerance: 1e-12,
        max_iterations: 40,
        lower_bounds: Some(lower),
        ..Default::default()
    };
    // The delay residual (fs, ~10⁶) and the KKT rows (~1) differ by many
    // orders of magnitude; normalize the delay row by the target so the
    // max-norm tolerance is meaningful for both.
    let result = newton_solve(
        |x| {
            let (w, lambda) = x.split_at(n);
            let mut res = kkt_residuals(view, w, lambda[0], target_fs);
            res[n] /= target_fs;
            res
        },
        |x| {
            let (w, lambda) = x.split_at(n);
            let lambda = lambda[0];
            let mut jac = vec![vec![0.0; n + 1]; n + 1];
            for i in 0..n {
                let w_up = view.upstream_width(w, i);
                let w_down = view.downstream_width(w, i);
                let c_down = view.downstream_wire_capacitance(i);
                // ∂Fᵢ/∂wᵢ = λ·2Rs(Cᵢ + Co·w_{i+1})/wᵢ³
                jac[i][i] = lambda * 2.0 * rs * (c_down + co * w_down) / w[i].powi(3);
                // ∂Fᵢ/∂w_{i−1} = λ·(−Co·Rs/w_{i−1}²)
                if i > 0 {
                    jac[i][i - 1] = -lambda * co * rs / (w_up * w_up);
                }
                // ∂Fᵢ/∂w_{i+1} = λ·(−Rs·Co/wᵢ²)
                if i + 1 < n {
                    jac[i][i + 1] = -lambda * rs * co / (w[i] * w[i]);
                }
                // ∂Fᵢ/∂λ = ∂τ/∂wᵢ
                jac[i][n] = view.dtau_dw(w, i);
                // Last row: ∂((τ−τ_t)/τ_t)/∂wᵢ
                jac[n][i] = view.dtau_dw(w, i) / target_fs;
            }
            jac[n][n] = 0.0;
            jac
        },
        x0,
        &options,
    );
    if !result.converged {
        return None;
    }
    let (w, lambda) = result.x.split_at(n);
    Some((w.to_vec(), lambda[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment, TwoPinNet};
    use rip_tech::Technology;

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(4000.0, 0.08, 0.20))
            .segment(Segment::new(5000.0, 0.06, 0.18))
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    fn view(net: &TwoPinNet, tech: &Technology) -> ChainView<'static> {
        // Tests keep net/tech alive for the duration; avoid lifetime
        // gymnastics by leaking (test-only).
        let net: &'static TwoPinNet = Box::leak(Box::new(net.clone()));
        let tech: &'static Technology = Box::leak(Box::new(tech.clone()));
        ChainView::new(net, tech.device(), vec![2400.0, 4800.0, 7200.0, 9600.0]).unwrap()
    }

    fn continuous_min_delay(v: &ChainView<'_>, config: &WidthSolverConfig) -> f64 {
        let mut w = vec![100.0; v.len()];
        fixed_point(v, f64::INFINITY, &mut w, config);
        v.total_delay(&w)
    }

    #[test]
    fn solution_meets_target_exactly_and_satisfies_kkt() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        let config = WidthSolverConfig::default();
        let t_min = continuous_min_delay(&v, &config);
        let target = t_min * 1.3;
        let sol = solve_widths(&v, target, &config).unwrap();
        // Eq. (5): the constraint binds.
        assert!(
            (sol.delay_fs - target).abs() < 1e-6 * target,
            "delay {} vs target {target}",
            sol.delay_fs
        );
        // Eq. (8): stationarity.
        let res = kkt_residuals(&v, &sol.widths, sol.lambda, target);
        for (i, r) in res[..sol.widths.len()].iter().enumerate() {
            assert!(r.abs() < 1e-6, "KKT residual {i} = {r}");
        }
    }

    #[test]
    fn looser_target_gives_smaller_total_width() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        let config = WidthSolverConfig::default();
        let t_min = continuous_min_delay(&v, &config);
        let mut prev = f64::INFINITY;
        for mult in [1.05, 1.2, 1.5, 1.8, 2.05] {
            let sol = solve_widths(&v, t_min * mult, &config).unwrap();
            assert!(
                sol.total_width < prev,
                "mult {mult}: width {} should shrink (prev {prev})",
                sol.total_width
            );
            prev = sol.total_width;
        }
    }

    #[test]
    fn infeasible_target_is_detected_with_achievable_delay() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        let config = WidthSolverConfig::default();
        let t_min = continuous_min_delay(&v, &config);
        let err = solve_widths(&v, t_min * 0.8, &config).unwrap_err();
        match err {
            RefineError::InfeasibleTarget { achievable_fs, .. } => {
                assert!((achievable_fs - t_min).abs() < 1e-6 * t_min);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tight_target_approaches_continuous_min_delay_widths() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        let config = WidthSolverConfig::default();
        let t_min = continuous_min_delay(&v, &config);
        let sol = solve_widths(&v, t_min * 1.0000001, &config).unwrap();
        // Near the feasibility boundary λ is huge and widths approach the
        // delay-optimal sizing.
        let mut w_fast = vec![100.0; v.len()];
        fixed_point(&v, f64::INFINITY, &mut w_fast, &config);
        for (a, b) in sol.widths.iter().zip(&w_fast) {
            assert!((a - b).abs() < 0.05 * b, "width {a} vs delay-opt {b}");
        }
    }

    #[test]
    fn no_repeater_chain_feasibility() {
        let tech = tech();
        let net = net();
        let net: &'static TwoPinNet = Box::leak(Box::new(net));
        let tech: &'static Technology = Box::leak(Box::new(tech));
        let v = ChainView::new(net, tech.device(), vec![]).unwrap();
        let unbuffered = v.total_delay(&[]);
        let ok = solve_widths(&v, unbuffered * 1.01, &WidthSolverConfig::default()).unwrap();
        assert!(ok.widths.is_empty());
        assert_eq!(ok.total_width, 0.0);
        let err = solve_widths(&v, unbuffered * 0.9, &WidthSolverConfig::default());
        assert!(matches!(err, Err(RefineError::InfeasibleTarget { .. })));
    }

    #[test]
    fn width_floor_binds_on_very_loose_targets() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        let config = WidthSolverConfig {
            width_floor: 10.0,
            ..Default::default()
        };
        let t_min = continuous_min_delay(&v, &config);
        // Enormous slack: optimal continuous widths would be < 10u.
        let sol = solve_widths(&v, t_min * 50.0, &config).unwrap();
        assert!(sol.widths.iter().all(|&w| w >= 10.0 - 1e-12));
        // With the floor binding the delay is allowed to undershoot.
        assert!(sol.delay_fs <= t_min * 50.0);
    }

    #[test]
    fn newton_polish_tightens_residuals() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        let t_min = continuous_min_delay(&v, &WidthSolverConfig::default());
        let target = t_min * 1.4;
        let rough = WidthSolverConfig {
            newton_polish: false,
            delay_tolerance: 1e-4,
            ..Default::default()
        };
        let polished = WidthSolverConfig {
            newton_polish: true,
            delay_tolerance: 1e-4,
            ..Default::default()
        };
        let r = solve_widths(&v, target, &rough).unwrap();
        let p = solve_widths(&v, target, &polished).unwrap();
        let rn: f64 = kkt_residuals(&v, &r.widths, r.lambda, target)
            .iter()
            .fold(0.0, |a, &x| a.max(x.abs() / target.max(1.0)));
        let pn: f64 = kkt_residuals(&v, &p.widths, p.lambda, target)
            .iter()
            .fold(0.0, |a, &x| a.max(x.abs() / target.max(1.0)));
        assert!(pn <= rn, "polish must not worsen residuals: {pn} vs {rn}");
        assert!(p.delay_fs <= target * (1.0 + 1e-9));
    }

    #[test]
    fn rejects_bad_targets() {
        let tech = tech();
        let net = net();
        let v = view(&net, &tech);
        assert!(matches!(
            solve_widths(&v, 0.0, &WidthSolverConfig::default()),
            Err(RefineError::InvalidTarget { .. })
        ));
        assert!(matches!(
            solve_widths(&v, f64::NAN, &WidthSolverConfig::default()),
            Err(RefineError::InvalidTarget { .. })
        ));
    }
}
