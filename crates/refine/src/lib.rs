//! # rip-refine — the analytical half of the RIP hybrid scheme
//!
//! Implements algorithm REFINE (Fig. 5 of the paper): given an initial
//! repeater placement and a timing budget, alternate
//!
//! 1. **Lagrangian width solving** ([`solve_widths`]) — the KKT system of
//!    Eqs. (5) + (8), solved by a per-λ fixed point with an outer λ
//!    bisection and an optional damped-Newton polish ([`newton`]);
//! 2. **derivative-driven movement** ([`decide_move`], [`apply_moves`]) —
//!    the one-sided location derivatives of Eqs. (17)–(18) and the
//!    optimality inequalities (22)–(23), with forbidden zones respected
//!    (and optionally hopped — the paper's §7 extension);
//!
//! until the relative total-width improvement drops below ε₀
//! ([`refine`]).
//!
//! The output widths are continuous; `rip-core` rounds them into the
//! design-specific discrete library of RIP's Line 3.
//!
//! # Example
//!
//! ```
//! use rip_net::{NetBuilder, Segment};
//! use rip_refine::{refine, RefineConfig};
//! use rip_tech::Technology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::generic_180nm();
//! let net = NetBuilder::new()
//!     .segment(Segment::new(10_000.0, 0.08, 0.2))
//!     .build()?;
//! let outcome = refine(
//!     &net,
//!     tech.device(),
//!     &[2500.0, 5000.0, 7500.0],
//!     2.5e6,
//!     &RefineConfig::default(),
//! )?;
//! println!(
//!     "total width {:.1} u at delay {:.3} ns",
//!     outcome.total_width,
//!     rip_tech::units::ns_from_fs(outcome.delay_fs),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod lagrange;
mod movement;
pub mod newton;
mod refine;
mod tree_trim;

pub use error::RefineError;
pub use lagrange::{kkt_residuals, solve_widths, WidthSolve, WidthSolverConfig};
pub use movement::{apply_moves, decide_move, MoveDecision, MoveRound};
pub use refine::{refine, RefineConfig, RefineOutcome};
pub use tree_trim::{trim_tree_widths, TreeTrimConfig, TreeTrimOutcome};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RefineConfig>();
        assert_send_sync::<RefineOutcome>();
        assert_send_sync::<WidthSolve>();
        assert_send_sync::<RefineError>();
        assert_send_sync::<MoveDecision>();
    }
}
