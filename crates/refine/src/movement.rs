//! Derivative-driven repeater movement (Fig. 5, Lines 4–5 of the paper).
//!
//! At a power-optimal solution the one-sided location derivatives must
//! satisfy `(∂τ/∂xᵢ)₊ ≥ 0` and `(∂τ/∂xᵢ)₋ ≤ 0` (Eqs. 22–23 with λ > 0).
//! A violated inequality means moving the repeater in the corresponding
//! direction *decreases* the delay — and by Eq. (13) the freed slack can
//! be converted into total-width (power) reduction when the widths are
//! re-solved. Movement steps are a preselected distance (the paper's
//! "preselected distance"); moves that would enter a forbidden zone,
//! leave the net span, or cross a neighbouring repeater are skipped
//! (optionally, small zones can be hopped — the paper's future-work
//! extension).

use rip_delay::ChainView;
use rip_net::{Side, TwoPinNet};

/// Direction a repeater should move, with the predicted delay reduction
/// per µm (the violated derivative's magnitude).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MoveDecision {
    /// Both optimality inequalities hold: stay.
    Stay,
    /// `(∂τ/∂x)₊ < 0`: moving towards the sink reduces delay.
    Downstream {
        /// Delay reduction per µm of movement, fs/µm.
        gain: f64,
    },
    /// `(∂τ/∂x)₋ > 0`: moving towards the source reduces delay.
    Upstream {
        /// Delay reduction per µm of movement, fs/µm.
        gain: f64,
    },
}

/// Evaluates the movement optimality conditions (Eqs. 22–23) for repeater
/// `j` and picks the better violated direction (Fig. 5, Line 5: "the
/// moving direction is chosen for larger reduction").
pub fn decide_move(view: &ChainView<'_>, widths: &[f64], j: usize) -> MoveDecision {
    let d_plus = view.dtau_dx(widths, j, Side::Downstream);
    let d_minus = view.dtau_dx(widths, j, Side::Upstream);
    let down_gain = if d_plus < 0.0 { -d_plus } else { 0.0 };
    let up_gain = if d_minus > 0.0 { d_minus } else { 0.0 };
    if down_gain <= 0.0 && up_gain <= 0.0 {
        MoveDecision::Stay
    } else if down_gain >= up_gain {
        MoveDecision::Downstream { gain: down_gain }
    } else {
        MoveDecision::Upstream { gain: up_gain }
    }
}

/// Outcome of one simultaneous movement round.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveRound {
    /// New positions (same length/order as the input).
    pub positions: Vec<f64>,
    /// Number of repeaters actually moved.
    pub moved: usize,
    /// Number of proposed moves skipped for legality (zones, span,
    /// ordering).
    pub skipped: usize,
}

/// Applies one round of movement decisions to all repeaters
/// simultaneously (Fig. 5, Line 5).
///
/// Legality rules, in order:
///
/// 1. the new position must stay strictly inside `(0, L)`;
/// 2. it must not cross (or come within `min_separation` of) the
///    neighbouring repeaters' *new* positions as processed left-to-right;
/// 3. it must not land strictly inside a forbidden zone — unless
///    `zone_hop_um` allows hopping zones shorter than the limit, in which
///    case the repeater continues to the far zone boundary.
///
/// Moves failing any rule are skipped (the repeater stays), matching the
/// paper's conservative rule; zone hopping is the paper's §7 extension.
pub fn apply_moves(
    net: &TwoPinNet,
    view: &ChainView<'_>,
    widths: &[f64],
    step_um: f64,
    min_separation_um: f64,
    zone_hop_um: Option<f64>,
) -> MoveRound {
    let old = view.positions();
    let n = old.len();
    let total = net.total_length();
    let mut positions = old.to_vec();
    let mut moved = 0;
    let mut skipped = 0;

    for j in 0..n {
        let proposal = match decide_move(view, widths, j) {
            MoveDecision::Stay => continue,
            MoveDecision::Downstream { .. } => old[j] + step_um,
            MoveDecision::Upstream { .. } => old[j] - step_um,
        };
        let direction_down = proposal > old[j];

        // Rule 1: net span.
        if proposal <= 0.0 || proposal >= total {
            skipped += 1;
            continue;
        }
        // Rule 3: forbidden zones (with optional hopping).
        let landed = match net.zone_at(proposal) {
            None => proposal,
            Some(zone) => {
                let hop_ok = zone_hop_um.is_some_and(|lim| zone.length_um() <= lim);
                if !hop_ok {
                    skipped += 1;
                    continue;
                }
                // Continue through the zone to its far boundary.
                if direction_down {
                    zone.end()
                } else {
                    zone.start()
                }
            }
        };
        if landed <= 0.0 || landed >= total {
            skipped += 1;
            continue;
        }
        // Rule 2: ordering against current neighbours (left already
        // final, right still old - conservative).
        let left_ok = j == 0 || landed >= positions[j - 1] + min_separation_um;
        let right_ok = j + 1 == n || landed <= old[j + 1] - min_separation_um;
        if !left_ok || !right_ok {
            skipped += 1;
            continue;
        }
        positions[j] = landed;
        moved += 1;
    }
    MoveRound {
        positions,
        moved,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn plain_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(10_000.0, 0.08, 0.2))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    #[test]
    fn decision_agrees_with_numeric_probe() {
        // For a repeater pushed far off the uniform-wire optimum, the
        // analytic decision must match what a small numeric probe says.
        let tech = tech();
        let net = plain_net();
        let view = ChainView::new(&net, tech.device(), vec![1500.0, 8500.0]).unwrap();
        let widths = vec![100.0, 100.0];
        let h = 1.0;
        for j in 0..2 {
            let base = view.total_delay(&widths);
            let mut probe = view.positions().to_vec();
            probe[j] += h;
            let down = view
                .with_positions(probe.clone())
                .unwrap()
                .total_delay(&widths);
            probe[j] -= 2.0 * h;
            let up = view.with_positions(probe).unwrap().total_delay(&widths);
            match decide_move(&view, &widths, j) {
                MoveDecision::Downstream { .. } => {
                    assert!(down < base, "j={j}: numeric probe disagrees")
                }
                MoveDecision::Upstream { .. } => {
                    assert!(up < base, "j={j}: numeric probe disagrees")
                }
                MoveDecision::Stay => {
                    assert!(down >= base - 1e-6 && up >= base - 1e-6)
                }
            }
        }
    }

    #[test]
    fn symmetric_optimum_stays_put() {
        // Two repeaters at the even thirds of a uniform wire with equal
        // widths and matched terminals: location derivatives straddle
        // zero, so moves (if any) must have negligible gain.
        let tech = tech();
        let net = NetBuilder::new()
            .segment(Segment::new(9000.0, 0.08, 0.2))
            .driver_width(100.0)
            .receiver_width(100.0)
            .build()
            .unwrap();
        let view = ChainView::new(&net, tech.device(), vec![3000.0, 6000.0]).unwrap();
        // Widths from the delay-optimal continuous solve would be ideal;
        // near-optimal hand values suffice to check gains are tiny
        // relative to the derivative scale elsewhere.
        let widths = vec![100.0, 100.0];
        for j in 0..2 {
            if let MoveDecision::Downstream { gain } | MoveDecision::Upstream { gain } =
                decide_move(&view, &widths, j)
            {
                assert!(
                    gain < 2.0,
                    "j={j}: gain {gain} should be small near symmetry"
                );
            }
        }
    }

    #[test]
    fn moves_toward_balance_on_skewed_placement() {
        // A repeater crammed against the source on a uniform wire should
        // move downstream (the downstream wire is too long).
        let tech = tech();
        let net = plain_net();
        let view = ChainView::new(&net, tech.device(), vec![500.0]).unwrap();
        let widths = vec![100.0];
        assert!(matches!(
            decide_move(&view, &widths, 0),
            MoveDecision::Downstream { .. }
        ));
        // And one crammed against the sink should move upstream.
        let view = ChainView::new(&net, tech.device(), vec![9500.0]).unwrap();
        assert!(matches!(
            decide_move(&view, &widths, 0),
            MoveDecision::Upstream { .. }
        ));
    }

    #[test]
    fn apply_moves_respects_span_and_ordering() {
        let tech = tech();
        let net = plain_net();
        // Two repeaters 60 um apart, both pulled towards each other by
        // the skew: ordering rule must prevent a crossing.
        let view = ChainView::new(&net, tech.device(), vec![4970.0, 5030.0]).unwrap();
        let widths = vec![100.0, 100.0];
        let round = apply_moves(&net, &view, &widths, 100.0, 10.0, None);
        assert!(round.positions[0] < round.positions[1]);
        for w in round.positions.windows(2) {
            assert!(w[1] - w[0] >= 10.0 - 1e-9);
        }
    }

    #[test]
    fn apply_moves_skips_zone_landing_without_hop() {
        let tech = tech();
        let net = NetBuilder::new()
            .segment(Segment::new(10_000.0, 0.08, 0.2))
            .forbidden_zone(600.0, 1200.0)
            .unwrap()
            .build()
            .unwrap();
        // Repeater at 550 wants to move downstream (skewed to source) by
        // 100 -> 650, which is inside the zone: skipped without hopping.
        let view = ChainView::new(&net, tech.device(), vec![550.0]).unwrap();
        let widths = vec![100.0];
        assert!(matches!(
            decide_move(&view, &widths, 0),
            MoveDecision::Downstream { .. }
        ));
        let no_hop = apply_moves(&net, &view, &widths, 100.0, 10.0, None);
        assert_eq!(no_hop.positions, vec![550.0]);
        assert_eq!(no_hop.skipped, 1);

        // With hopping allowed for zones up to 1000 um it lands on the far
        // boundary.
        let hop = apply_moves(&net, &view, &widths, 100.0, 10.0, Some(1000.0));
        assert_eq!(hop.positions, vec![1200.0]);
        assert_eq!(hop.moved, 1);

        // A hop limit smaller than the zone still skips.
        let small = apply_moves(&net, &view, &widths, 100.0, 10.0, Some(500.0));
        assert_eq!(small.positions, vec![550.0]);
    }

    #[test]
    fn moving_reduces_delay_when_applied() {
        let tech = tech();
        let net = plain_net();
        let view = ChainView::new(&net, tech.device(), vec![1500.0, 8500.0]).unwrap();
        let widths = vec![100.0, 100.0];
        let before = view.total_delay(&widths);
        let round = apply_moves(&net, &view, &widths, 50.0, 1.0, None);
        assert!(round.moved > 0);
        let after = view
            .with_positions(round.positions)
            .unwrap()
            .total_delay(&widths);
        assert!(after < before, "{after} !< {before}");
    }
}
