//! A small damped Newton–Raphson solver for dense nonlinear systems.
//!
//! The paper's REFINE (Fig. 5, Lines 1 and 7) solves the nonlinear KKT
//! system of Eqs. (5) + (8) "using Newton-Raphson method". The systems are
//! tiny (one unknown per repeater plus λ), so a dense Gaussian-elimination
//! linear solve with partial pivoting is exactly right. The solver is
//! generic and reusable; `rip-refine` feeds it analytic Jacobians.

/// Options for [`newton_solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Stop when the max-norm of the residual falls below this.
    pub tolerance: f64,
    /// Maximum Newton iterations.
    pub max_iterations: usize,
    /// Damping: the step is halved at most this many times per iteration
    /// while it fails to reduce the residual norm.
    pub max_halvings: usize,
    /// Optional per-variable lower bounds (steps are clipped to stay
    /// above them).
    pub lower_bounds: Option<Vec<f64>>,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 60,
            max_halvings: 30,
            lower_bounds: None,
        }
    }
}

/// Outcome of a Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Max-norm of the final residual.
    pub residual_norm: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// `true` when the tolerance was reached.
    pub converged: bool,
}

/// Solves `f(x) = 0` by damped Newton–Raphson with an explicit Jacobian.
///
/// * `f` — residual function, `n` in / `n` out;
/// * `jac` — Jacobian at `x` (row-major `n×n`: `jac[i][j] = ∂fᵢ/∂xⱼ`);
/// * `x0` — starting point.
///
/// Returns the best iterate found even when not converged (check
/// [`NewtonResult::converged`]); a singular Jacobian stops the iteration
/// early.
///
/// # Examples
///
/// ```
/// use rip_refine::newton::{newton_solve, NewtonOptions};
///
/// // Solve x² = 4, y = x (roots x = 2, y = 2 from a positive start).
/// let result = newton_solve(
///     |x| vec![x[0] * x[0] - 4.0, x[1] - x[0]],
///     |x| vec![vec![2.0 * x[0], 0.0], vec![-1.0, 1.0]],
///     vec![3.0, 0.0],
///     &NewtonOptions::default(),
/// );
/// assert!(result.converged);
/// assert!((result.x[0] - 2.0).abs() < 1e-9);
/// assert!((result.x[1] - 2.0).abs() < 1e-9);
/// ```
pub fn newton_solve(
    f: impl Fn(&[f64]) -> Vec<f64>,
    jac: impl Fn(&[f64]) -> Vec<Vec<f64>>,
    x0: Vec<f64>,
    options: &NewtonOptions,
) -> NewtonResult {
    let mut x = x0;
    let mut residual = f(&x);
    let mut norm = max_norm(&residual);
    let mut iterations = 0;

    while norm > options.tolerance && iterations < options.max_iterations {
        iterations += 1;
        let j = jac(&x);
        // Solve J·dx = -r.
        let rhs: Vec<f64> = residual.iter().map(|r| -r).collect();
        let Some(dx) = solve_linear(j, rhs) else {
            break; // singular Jacobian: keep the best iterate
        };
        // Damped line search on the residual norm.
        let mut alpha = 1.0;
        let mut accepted = false;
        for _ in 0..=options.max_halvings {
            let trial: Vec<f64> = x
                .iter()
                .zip(&dx)
                .enumerate()
                .map(|(i, (&xi, &di))| {
                    let v = xi + alpha * di;
                    match &options.lower_bounds {
                        Some(lb) => v.max(lb[i]),
                        None => v,
                    }
                })
                .collect();
            let trial_res = f(&trial);
            let trial_norm = max_norm(&trial_res);
            if trial_norm < norm {
                x = trial;
                residual = trial_res;
                norm = trial_norm;
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted {
            break; // stuck: no descent along the Newton direction
        }
    }
    NewtonResult {
        x,
        residual_norm: norm,
        iterations,
        converged: norm <= options.tolerance,
    }
}

fn max_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
}

/// Solves the dense system `A·x = b` by Gaussian elimination with partial
/// pivoting; returns `None` for (numerically) singular `A`.
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(row);
            for (dst, &src) in tail[0][col..].iter_mut().zip(&head[col][col..]) {
                *dst -= factor * src;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_solver_matches_hand_solution() {
        // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_solver_pivots() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(a, vec![3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn linear_solver_detects_singularity() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn newton_converges_quadratically_on_sqrt() {
        let result = newton_solve(
            |x| vec![x[0] * x[0] - 2.0],
            |x| vec![vec![2.0 * x[0]]],
            vec![1.0],
            &NewtonOptions::default(),
        );
        assert!(result.converged);
        // Residual tolerance 1e-10 near x=sqrt(2) bounds |x - sqrt(2)| by
        // 1e-10 / f'(sqrt 2) = ~3.5e-11.
        assert!((result.x[0] - 2.0_f64.sqrt()).abs() < 1e-9);
        assert!(result.iterations < 10);
    }

    #[test]
    fn newton_respects_lower_bounds() {
        // Root at x = -1 but bound keeps x >= 0.5: solver must not cross.
        let options = NewtonOptions {
            lower_bounds: Some(vec![0.5]),
            ..Default::default()
        };
        let result = newton_solve(
            |x| vec![x[0] + 1.0],
            |_| vec![vec![1.0]],
            vec![2.0],
            &options,
        );
        assert!(!result.converged);
        assert!(result.x[0] >= 0.5);
    }

    #[test]
    fn newton_solves_coupled_system() {
        // x + y = 3, x*y = 2 -> {1, 2} (from an asymmetric start).
        let result = newton_solve(
            |x| vec![x[0] + x[1] - 3.0, x[0] * x[1] - 2.0],
            |x| vec![vec![1.0, 1.0], vec![x[1], x[0]]],
            vec![0.5, 3.0],
            &NewtonOptions::default(),
        );
        assert!(result.converged);
        let (a, b) = (result.x[0].min(result.x[1]), result.x[0].max(result.x[1]));
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn newton_reports_non_convergence_gracefully() {
        // f(x) = 1 (no root): must stop without panicking.
        let result = newton_solve(
            |_| vec![1.0],
            |_| vec![vec![0.0]],
            vec![0.0],
            &NewtonOptions {
                max_iterations: 5,
                ..Default::default()
            },
        );
        assert!(!result.converged);
    }
}
