//! Algorithm REFINE (Fig. 5 of the paper).
//!
//! Given a net, a timing target, and an initial repeater placement (in
//! RIP: the coarse DP solution), REFINE iterates
//!
//! 1. solve the optimal continuous widths and λ at the current positions
//!    (Eqs. 5 + 8 — [`crate::solve_widths`]);
//! 2. evaluate the one-sided location derivatives (Eqs. 17–18) and move
//!    each repeater a preselected step in the delay-reducing direction
//!    where the optimality inequalities (Eqs. 22–23) are violated,
//!    skipping moves into forbidden zones;
//! 3. update the lumped RC loads and re-solve the widths;
//!
//! until the relative total-width improvement drops below ε₀.

use crate::error::RefineError;
use crate::lagrange::{solve_widths, WidthSolve, WidthSolverConfig};
use crate::movement::apply_moves;
use rip_delay::{ChainView, Repeater, RepeaterAssignment};
use rip_net::TwoPinNet;
use rip_tech::RepeaterDevice;

/// Configuration of the REFINE loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineConfig {
    /// Movement step — the paper's "preselected distance", µm.
    pub step_um: f64,
    /// Convergence threshold ε₀ on the relative total-width improvement
    /// per iteration.
    pub epsilon: f64,
    /// Safety cap on movement iterations.
    pub max_iterations: usize,
    /// Minimum separation kept between adjacent repeaters when moving,
    /// µm.
    pub min_separation_um: f64,
    /// Width solver settings (floor, tolerances, Newton polish).
    pub widths: WidthSolverConfig,
    /// §7 extension: allow hopping forbidden zones shorter than this, µm
    /// (`None` = paper's conservative rule).
    pub zone_hop_um: Option<f64>,
    /// §7 extension: rerun the movement loop this many times (≥ 1).
    pub passes: usize,
}

impl Default for RefineConfig {
    /// Defaults match the paper's experimental setup where stated
    /// (movement granularity of the final location candidates: 50 µm)
    /// and use conservative values elsewhere.
    fn default() -> Self {
        Self {
            step_um: 50.0,
            epsilon: 1e-4,
            max_iterations: 200,
            min_separation_um: 1.0,
            widths: WidthSolverConfig::default(),
            zone_hop_um: None,
            passes: 1,
        }
    }
}

impl RefineConfig {
    fn validate(&self) -> Result<(), RefineError> {
        if !(self.step_um.is_finite() && self.step_um > 0.0) {
            return Err(RefineError::InvalidConfig {
                reason: "step_um must be positive",
            });
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(RefineError::InvalidConfig {
                reason: "epsilon must be non-negative",
            });
        }
        if self.passes == 0 {
            return Err(RefineError::InvalidConfig {
                reason: "passes must be at least 1",
            });
        }
        if !(self.min_separation_um.is_finite() && self.min_separation_um >= 0.0) {
            return Err(RefineError::InvalidConfig {
                reason: "min_separation_um must be non-negative",
            });
        }
        Ok(())
    }
}

/// Result of a REFINE run.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Final repeater positions, ascending, µm.
    pub positions: Vec<f64>,
    /// Final continuous widths, u (same order).
    pub widths: Vec<f64>,
    /// Final Lagrange multiplier λ.
    pub lambda: f64,
    /// Final total width `Σwᵢ`, u (the power objective).
    pub total_width: f64,
    /// Final delay, fs.
    pub delay_fs: f64,
    /// Movement iterations executed (across all passes).
    pub iterations: usize,
    /// Individual repeater moves applied (across all passes).
    pub moves_applied: usize,
    /// Total width after each width solve, starting with the initial
    /// solve — non-increasing by construction.
    pub width_history: Vec<f64>,
}

impl RefineOutcome {
    /// Converts the (continuous-width) outcome into an assignment for
    /// evaluation or reporting.
    ///
    /// # Panics
    ///
    /// Never panics for outcomes produced by [`refine`] (positions are
    /// strictly ascending and widths positive).
    pub fn to_assignment(&self) -> RepeaterAssignment {
        RepeaterAssignment::new(
            self.positions
                .iter()
                .zip(&self.widths)
                .map(|(&x, &w)| Repeater::new(x, w))
                .collect(),
        )
        .expect("refine outcomes are valid assignments")
    }
}

/// Runs algorithm REFINE (Fig. 5): alternating Lagrangian width solving
/// and derivative-driven movement from an initial placement.
///
/// The returned widths are **continuous**; RIP's Line 3 rounds them into
/// a discrete library.
///
/// # Errors
///
/// * [`RefineError::BadPositions`] for invalid initial positions;
/// * [`RefineError::InvalidTarget`] / [`RefineError::InfeasibleTarget`]
///   when the target is bad or unreachable at the initial positions;
/// * [`RefineError::InvalidConfig`] for nonsensical configuration.
///
/// # Examples
///
/// ```
/// use rip_net::{NetBuilder, Segment};
/// use rip_refine::{refine, RefineConfig};
/// use rip_tech::Technology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tech = Technology::generic_180nm();
/// let net = NetBuilder::new()
///     .segment(Segment::new(9000.0, 0.08, 0.2))
///     .build()?;
/// // Deliberately unbalanced initial placement.
/// let outcome = refine(
///     &net,
///     tech.device(),
///     &[2000.0, 4000.0],
///     2.0e6, // 2 ns target
///     &RefineConfig::default(),
/// )?;
/// assert!(outcome.delay_fs <= 2.0e6 * 1.000001);
/// # Ok(())
/// # }
/// ```
pub fn refine(
    net: &TwoPinNet,
    device: &RepeaterDevice,
    initial_positions: &[f64],
    target_fs: f64,
    config: &RefineConfig,
) -> Result<RefineOutcome, RefineError> {
    config.validate()?;
    let mut view = ChainView::new(net, device, initial_positions.to_vec())?;

    // Line 1: initial width + λ solve.
    let mut solve: WidthSolve = solve_widths(&view, target_fs, &config.widths)?;
    let mut width_history = vec![solve.total_width];
    let mut iterations = 0;
    let mut moves_applied = 0;

    for _pass in 0..config.passes {
        let mut epsilon = f64::INFINITY;
        // Lines 3-9: movement loop.
        while epsilon > config.epsilon && iterations < config.max_iterations {
            iterations += 1;
            // Lines 4-5: derivatives + simultaneous movement.
            let round = apply_moves(
                net,
                &view,
                &solve.widths,
                config.step_um,
                config.min_separation_um,
                config.zone_hop_um,
            );
            if round.moved == 0 {
                break; // positionally converged
            }
            // Lines 6-7: update lumped RC and re-solve widths.
            let moved_view = view.with_positions(round.positions)?;
            let new_solve = match solve_widths(&moved_view, target_fs, &config.widths) {
                Ok(s) => s,
                // Movement is delay-reducing by construction, but the
                // width floor can interact with extreme steps; keep the
                // last feasible state rather than fail.
                Err(RefineError::InfeasibleTarget { .. }) => break,
                Err(e) => return Err(e),
            };
            // Lines 8-9: accept only improvements (guards float noise and
            // overshooting steps near convergence).
            let old_total = solve.total_width;
            if new_solve.total_width >= old_total {
                break;
            }
            moves_applied += round.moved;
            view = moved_view;
            solve = new_solve;
            width_history.push(solve.total_width);
            epsilon = (old_total - solve.total_width) / old_total;
        }
    }

    Ok(RefineOutcome {
        positions: view.positions().to_vec(),
        total_width: solve.total_width,
        delay_fs: solve.delay_fs,
        lambda: solve.lambda,
        widths: solve.widths,
        iterations,
        moves_applied,
        width_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetBuilder, Segment};
    use rip_tech::Technology;

    fn tech() -> Technology {
        Technology::generic_180nm()
    }

    fn uniform_net(len: f64) -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(len, 0.08, 0.2))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    fn multi_layer_net() -> TwoPinNet {
        NetBuilder::new()
            .segment(Segment::new(3000.0, 0.08, 0.20))
            .segment(Segment::new(4000.0, 0.06, 0.18))
            .segment(Segment::new(3500.0, 0.08, 0.20))
            .driver_width(120.0)
            .receiver_width(60.0)
            .build()
            .unwrap()
    }

    /// A feasible target for the given positions: 1.4x the continuous
    /// minimum at a balanced placement.
    fn loose_target(net: &TwoPinNet, positions: &[f64]) -> f64 {
        let tech = tech();
        let view = ChainView::new(net, tech.device(), positions.to_vec()).unwrap();
        // Probe: delay at generous fixed widths is an upper bound for the
        // continuous optimum; 1.4x of it is comfortably feasible.
        let widths = vec![150.0; positions.len()];
        view.total_delay(&widths) * 1.4
    }

    #[test]
    fn width_history_is_monotone_nonincreasing() {
        let tech = tech();
        let net = uniform_net(12_000.0);
        let init = [2000.0, 4000.0, 6000.0]; // skewed towards the source
        let target = loose_target(&net, &init);
        let out = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        for w in out.width_history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "history must not increase: {:?}",
                out.width_history
            );
        }
        assert!(out.moves_applied > 0, "skewed start must trigger movement");
    }

    #[test]
    fn movement_reduces_power_vs_frozen_positions() {
        // The whole point of REFINE: moving repeaters (then re-solving
        // widths) beats width-only optimization at the initial positions.
        let tech = tech();
        let net = uniform_net(12_000.0);
        let init = vec![1500.0, 3000.0, 4500.0];
        let target = loose_target(&net, &init);
        let frozen = {
            let view = ChainView::new(&net, tech.device(), init.clone()).unwrap();
            solve_widths(&view, target, &WidthSolverConfig::default())
                .unwrap()
                .total_width
        };
        let out = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        assert!(
            out.total_width < frozen,
            "refined {} !< frozen {frozen}",
            out.total_width
        );
    }

    #[test]
    fn final_solution_meets_target_and_is_legal() {
        let tech = tech();
        let net = NetBuilder::new()
            .segment(Segment::new(6000.0, 0.08, 0.2))
            .segment(Segment::new(6000.0, 0.06, 0.18))
            .forbidden_zone(5000.0, 8000.0)
            .unwrap()
            .build()
            .unwrap();
        let init = [2000.0, 4000.0, 9000.0];
        let target = loose_target(&net, &init);
        let out = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        assert!(out.delay_fs <= target * (1.0 + 1e-9));
        let asg = out.to_assignment();
        asg.validate_on(&net).unwrap();
        // Verify against the ground-truth evaluator.
        let timing = rip_delay::evaluate(&net, tech.device(), &asg);
        assert!((timing.total_delay - out.delay_fs).abs() < 1e-3 * out.delay_fs);
    }

    #[test]
    fn balanced_start_with_tight_target_moves_little() {
        let tech = tech();
        let net = uniform_net(12_000.0);
        // At a tight target the optimal widths approach the delay-optimal
        // sizing, for which even spacing on a uniform wire is nearly
        // optimal - so a balanced start should converge quickly without
        // repeaters wandering far. (At *loose* targets the optimum
        // legitimately drifts towards the sink: small repeaters lean on
        // the strong driver; that case is exercised elsewhere.)
        let init = [3000.0, 6000.0, 9000.0];
        let view = ChainView::new(&net, tech.device(), init.to_vec()).unwrap();
        let mut w = vec![100.0; 3];
        // Crude continuous-min-delay probe: iterate the unconstrained
        // optimum via the public solver at a barely-feasible target.
        let probe = view.total_delay(&w);
        let tight = solve_widths(&view, probe, &WidthSolverConfig::default()).unwrap();
        w = tight.widths;
        let target = view.total_delay(&w) * 1.02;
        let out = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        assert!(out.iterations <= 30, "took {} iterations", out.iterations);
        for (x, x0) in out.positions.iter().zip(&init) {
            assert!((x - x0).abs() <= 1000.0, "moved {x0} -> {x}");
        }
        // And the width trajectory is monotone as always.
        for h in out.width_history.windows(2) {
            assert!(h[1] <= h[0] + 1e-9);
        }
    }

    #[test]
    fn multi_layer_net_refines_cleanly() {
        let tech = tech();
        let net = multi_layer_net();
        let init = [1500.0, 5000.0, 8000.0];
        let target = loose_target(&net, &init);
        let out = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        assert!(out.total_width > 0.0);
        assert!(out.delay_fs <= target * (1.0 + 1e-9));
        // Positions remain strictly ordered and inside the span.
        for w in out.positions.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*out.positions.first().unwrap() > 0.0);
        assert!(*out.positions.last().unwrap() < net.total_length());
    }

    #[test]
    fn multi_pass_never_hurts() {
        let tech = tech();
        let net = uniform_net(14_000.0);
        let init = [2000.0, 4000.0, 6000.0, 8000.0];
        let target = loose_target(&net, &init);
        let one = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        let two = refine(
            &net,
            tech.device(),
            &init,
            target,
            &RefineConfig {
                passes: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(two.total_width <= one.total_width + 1e-9);
    }

    #[test]
    fn zone_hop_extension_can_improve_power() {
        // A repeater pinned on the wrong side of a short zone: without
        // hopping it is stuck at the boundary; with hopping REFINE can
        // carry it across and save width.
        let tech = tech();
        let net = NetBuilder::new()
            .segment(Segment::new(12_000.0, 0.08, 0.2))
            .forbidden_zone(2500.0, 2900.0)
            .unwrap()
            .build()
            .unwrap();
        let init = [2450.0, 8000.0];
        let target = loose_target(&net, &init);
        let stuck = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        let hopped = refine(
            &net,
            tech.device(),
            &init,
            target,
            &RefineConfig {
                zone_hop_um: Some(500.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(hopped.total_width <= stuck.total_width + 1e-9);
        // The hopping run must still be zone-legal.
        hopped.to_assignment().validate_on(&net).unwrap();
    }

    #[test]
    fn propagates_infeasibility_and_bad_config() {
        let tech = tech();
        let net = uniform_net(12_000.0);
        let err = refine(
            &net,
            tech.device(),
            &[6000.0],
            1.0,
            &RefineConfig::default(),
        );
        assert!(matches!(err, Err(RefineError::InfeasibleTarget { .. })));
        let bad = RefineConfig {
            step_um: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            refine(&net, tech.device(), &[6000.0], 1.0e6, &bad),
            Err(RefineError::InvalidConfig { .. })
        ));
        let bad = RefineConfig {
            passes: 0,
            ..Default::default()
        };
        assert!(matches!(
            refine(&net, tech.device(), &[6000.0], 1.0e6, &bad),
            Err(RefineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let tech = tech();
        let net = multi_layer_net();
        let init = [1500.0, 5000.0, 8000.0];
        let target = loose_target(&net, &init);
        let a = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        let b = refine(&net, tech.device(), &init, target, &RefineConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
