//! Continuous width refinement on buffered trees — the analytical half of
//! the paper's §7 tree extension.
//!
//! With buffer *locations* fixed (tree nodes chosen by a coarse tree DP),
//! the widths are relaxed to continuous values and minimized under the
//! max-sink-delay constraint by cyclic coordinate descent: each buffer is
//! shrunk to the smallest width that keeps the tree feasible (found by
//! bisection on the quasiconvex per-width delay response), and the sweep
//! repeats until the total width stops improving.
//!
//! This plays the role REFINE's width solve plays on chains. Location
//! movement on trees is left to the fine DP stage (candidate sites from
//! edge subdivision), mirroring how RIP lets the DP handle discreteness.

use crate::error::RefineError;
use rip_delay::RcTree;
use rip_tech::RepeaterDevice;

/// Configuration of the tree width trimmer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeTrimConfig {
    /// Lower bound on continuous widths, u.
    pub width_floor: f64,
    /// Per-width bisection tolerance (relative, on the width).
    pub width_tolerance: f64,
    /// Stop when a full sweep improves total width by less than this
    /// relative amount.
    pub epsilon: f64,
    /// Safety cap on sweeps.
    pub max_sweeps: usize,
}

impl Default for TreeTrimConfig {
    fn default() -> Self {
        Self {
            width_floor: 1.0,
            width_tolerance: 1e-6,
            epsilon: 1e-6,
            max_sweeps: 60,
        }
    }
}

/// Result of a tree width trim.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeTrimOutcome {
    /// Trimmed per-node widths (same shape as the input assignment).
    pub buffer_widths: Vec<Option<f64>>,
    /// Final max-sink delay, fs.
    pub delay_fs: f64,
    /// Final total width, u.
    pub total_width: f64,
    /// Sweeps executed.
    pub sweeps: usize,
}

/// Shrinks every buffer of a feasible buffered tree to (nearly) its
/// minimal feasible continuous width, holding locations fixed.
///
/// # Errors
///
/// * [`RefineError::InvalidTarget`] for a bad target;
/// * [`RefineError::InfeasibleTarget`] when the *input* assignment
///   already violates the target (trimming only ever loosens, so a
///   feasible input is required).
///
/// # Panics
///
/// Panics if `buffer_widths.len() != tree.len()` (propagated from the
/// tree evaluator).
pub fn trim_tree_widths(
    tree: &RcTree,
    device: &RepeaterDevice,
    driver_width: f64,
    buffer_widths: &[Option<f64>],
    target_fs: f64,
    config: &TreeTrimConfig,
) -> Result<TreeTrimOutcome, RefineError> {
    if !target_fs.is_finite() || target_fs <= 0.0 {
        return Err(RefineError::InvalidTarget { target_fs });
    }
    let mut widths = buffer_widths.to_vec();
    let eval = |w: &[Option<f64>]| -> f64 {
        tree.evaluate_buffered(device, driver_width, w)
            .max_sink_delay
    };
    let mut delay = eval(&widths);
    if delay > target_fs * (1.0 + 1e-12) {
        return Err(RefineError::InfeasibleTarget {
            target_fs,
            achievable_fs: delay,
        });
    }

    let buffer_nodes: Vec<usize> = (0..widths.len()).filter(|&v| widths[v].is_some()).collect();
    let total = |w: &[Option<f64>]| -> f64 { w.iter().flatten().sum() };
    let mut best_total = total(&widths);
    let mut sweeps = 0;

    while sweeps < config.max_sweeps {
        sweeps += 1;
        for &v in &buffer_nodes {
            let current = widths[v].expect("buffer nodes carry widths");
            if current <= config.width_floor * (1.0 + 1e-12) {
                continue;
            }
            // Feasible set in w is an interval (delay is quasiconvex in a
            // single width); find its lower end within [floor, current].
            widths[v] = Some(config.width_floor);
            if eval(&widths) <= target_fs {
                continue; // floor itself is feasible: keep it
            }
            let mut lo = config.width_floor; // infeasible
            let mut hi = current; // feasible
            while (hi - lo) > config.width_tolerance * hi {
                let mid = 0.5 * (lo + hi);
                widths[v] = Some(mid);
                if eval(&widths) <= target_fs {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            widths[v] = Some(hi);
        }
        let new_total = total(&widths);
        let improved = (best_total - new_total) / best_total.max(1e-30);
        best_total = new_total;
        if improved < config.epsilon {
            break;
        }
    }

    delay = eval(&widths);
    debug_assert!(delay <= target_fs * (1.0 + 1e-9));
    Ok(TreeTrimOutcome {
        buffer_widths: widths,
        delay_fs: delay,
        total_width: best_total,
        sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_tech::Technology;

    fn device() -> RepeaterDevice {
        *Technology::generic_180nm().device()
    }

    /// A 7 mm Y-tree with line edges and two sinks.
    fn y_tree(dev: &RepeaterDevice) -> (RcTree, Vec<Option<f64>>) {
        let mut tree = RcTree::with_root();
        let trunk = tree.add_line_child(0, 0.08, 0.2, 4000.0).unwrap();
        let s1 = tree.add_line_child(trunk, 0.06, 0.18, 3000.0).unwrap();
        let s2 = tree.add_line_child(trunk, 0.08, 0.2, 2000.0).unwrap();
        tree.set_sink_cap(s1, dev.input_cap(60.0)).unwrap();
        tree.set_sink_cap(s2, dev.input_cap(40.0)).unwrap();
        let mut widths = vec![None; tree.len()];
        widths[trunk] = Some(250.0); // deliberately oversized
        (tree, widths)
    }

    #[test]
    fn trimming_shrinks_oversized_buffers() {
        let dev = device();
        let (tree, widths) = y_tree(&dev);
        let before = tree.evaluate_buffered(&dev, 120.0, &widths);
        let target = before.max_sink_delay * 1.3;
        let out = trim_tree_widths(
            &tree,
            &dev,
            120.0,
            &widths,
            target,
            &TreeTrimConfig::default(),
        )
        .unwrap();
        assert!(
            out.total_width < 250.0,
            "did not shrink: {}",
            out.total_width
        );
        assert!(out.delay_fs <= target * (1.0 + 1e-9));
        // The trimmed solution is tight: shaving 2% more off every buffer
        // must break the target (otherwise the trim left slack behind).
        let squeezed: Vec<Option<f64>> = out
            .buffer_widths
            .iter()
            .map(|w| w.map(|w| (w * 0.98).max(1.0)))
            .collect();
        let d = tree
            .evaluate_buffered(&dev, 120.0, &squeezed)
            .max_sink_delay;
        assert!(d > target, "trim left recoverable slack");
    }

    #[test]
    fn loose_targets_trim_to_the_floor() {
        let dev = device();
        let (tree, widths) = y_tree(&dev);
        let before = tree.evaluate_buffered(&dev, 120.0, &widths);
        let out = trim_tree_widths(
            &tree,
            &dev,
            120.0,
            &widths,
            before.max_sink_delay * 50.0,
            &TreeTrimConfig {
                width_floor: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        for w in out.buffer_widths.iter().flatten() {
            assert!((w - 10.0).abs() < 1e-9, "expected floor, got {w}");
        }
    }

    #[test]
    fn infeasible_input_is_rejected() {
        let dev = device();
        let (tree, widths) = y_tree(&dev);
        let before = tree.evaluate_buffered(&dev, 120.0, &widths);
        let err = trim_tree_widths(
            &tree,
            &dev,
            120.0,
            &widths,
            before.max_sink_delay * 0.5,
            &TreeTrimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RefineError::InfeasibleTarget { .. }));
    }

    #[test]
    fn multiple_buffers_trim_jointly() {
        let dev = device();
        let mut tree = RcTree::with_root();
        let a = tree.add_line_child(0, 0.08, 0.2, 3000.0).unwrap();
        let b = tree.add_line_child(a, 0.08, 0.2, 3000.0).unwrap();
        let s = tree.add_line_child(b, 0.08, 0.2, 3000.0).unwrap();
        tree.set_sink_cap(s, dev.input_cap(50.0)).unwrap();
        let mut widths = vec![None; tree.len()];
        widths[a] = Some(300.0);
        widths[b] = Some(300.0);
        let before = tree.evaluate_buffered(&dev, 120.0, &widths);
        let target = before.max_sink_delay * 1.2;
        let out = trim_tree_widths(
            &tree,
            &dev,
            120.0,
            &widths,
            target,
            &TreeTrimConfig::default(),
        )
        .unwrap();
        assert!(out.total_width < 600.0);
        assert!(out.sweeps >= 1);
        assert!(out.delay_fs <= target * (1.0 + 1e-9));
        // Both buffers participate.
        let trimmed: Vec<f64> = out.buffer_widths.iter().flatten().copied().collect();
        assert_eq!(trimmed.len(), 2);
        assert!(trimmed.iter().all(|&w| w < 300.0));
    }

    #[test]
    fn bad_target_is_rejected() {
        let dev = device();
        let (tree, widths) = y_tree(&dev);
        assert!(matches!(
            trim_tree_widths(
                &tree,
                &dev,
                120.0,
                &widths,
                -1.0,
                &TreeTrimConfig::default()
            ),
            Err(RefineError::InvalidTarget { .. })
        ));
    }
}
