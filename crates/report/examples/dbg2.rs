use rip_core::prelude::*;
use rip_core::tau_min_paper;

fn main() {
    let tech = Technology::generic_180nm();
    let mut gen = NetGenerator::from_seed(RandomNetConfig::default(), 7).unwrap();
    let net = gen.generate();
    let t_min = tau_min_paper(&net, tech.device());
    let target = 1.5 * t_min;
    let out = rip(&net, &tech, target, &RipConfig::paper()).unwrap();
    let dp = baseline_dp(
        &net,
        tech.device(),
        &BaselineConfig::paper_table2(10.0),
        target,
    )
    .unwrap();
    println!(
        "net len {:.0}, zones {:?}",
        net.total_length(),
        net.zones()
            .iter()
            .map(|z| (z.start(), z.end()))
            .collect::<Vec<_>>()
    );
    println!(
        "coarse: n={} widths={:?} pos={:?} w={}",
        out.coarse.assignment.len(),
        out.coarse.assignment.widths(),
        out.coarse.assignment.positions(),
        out.coarse.total_width
    );
    if let Some(r) = &out.refined {
        println!(
            "refined: w={:.1} widths={:?} pos={:?} iters={} moves={}",
            r.total_width,
            r.widths
                .iter()
                .map(|w| (w * 10.).round() / 10.)
                .collect::<Vec<_>>(),
            r.positions.iter().map(|x| x.round()).collect::<Vec<_>>(),
            r.iterations,
            r.moves_applied
        );
    }
    println!(
        "final: n={} widths={:?} pos={:?} w={}",
        out.solution.assignment.len(),
        out.solution.assignment.widths(),
        out.solution.assignment.positions(),
        out.solution.total_width
    );
    println!(
        "dp:    n={} widths={:?} pos={:?} w={}",
        dp.assignment.len(),
        dp.assignment.widths(),
        dp.assignment.positions(),
        dp.total_width
    );
    // what would refine say if seeded from DP's positions?
    let r2 = refine(
        &net,
        tech.device(),
        &dp.assignment.positions(),
        target,
        &RefineConfig::default(),
    )
    .unwrap();
    println!(
        "refine from DP seed: w={:.1} widths={:?}",
        r2.total_width,
        r2.widths
            .iter()
            .map(|w| (w * 10.).round() / 10.)
            .collect::<Vec<_>>()
    );
}
