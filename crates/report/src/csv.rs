//! Minimal CSV output for experiment results (hand-rolled — no external
//! dependency needed for plain numeric tables).

use std::fs;
use std::io;
use std::path::Path;

/// Escapes a CSV cell (quotes cells containing commas, quotes or
/// newlines).
fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Renders headers + rows as CSV text.
///
/// # Examples
///
/// ```
/// let text = rip_report::to_csv_string(
///     &["net", "saving"],
///     &[vec!["1".into(), "22.95".into()]],
/// );
/// assert_eq!(text, "net,saving\n1,22.95\n");
/// ```
pub fn to_csv_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes headers + rows to a CSV file, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(path: impl AsRef<Path>, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_csv_string(headers, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_pass_through() {
        let s = to_csv_string(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn cells_with_commas_are_quoted() {
        let s = to_csv_string(&["a"], &[vec!["x,y".into()]]);
        assert_eq!(s, "a\n\"x,y\"\n");
    }

    #[test]
    fn quotes_are_doubled() {
        let s = to_csv_string(&["a"], &[vec!["say \"hi\"".into()]]);
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn write_creates_directories() {
        let dir = std::env::temp_dir().join("rip_report_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_csv(&path, &["x"], &[vec!["1".into()]]).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
