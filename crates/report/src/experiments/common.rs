//! Shared experiment infrastructure: the paper's net suite, timing-target
//! sweeps, and the RIP-vs-baseline comparison grid that Table 1, Table 2
//! and Figure 7 are all views of.

use rip_core::{BaselineConfig, Engine, RipConfig};
use rip_net::{NetGenerator, RandomNetConfig, TwoPinNet};
use rip_tech::Technology;
use std::time::{Duration, Instant};

/// The evaluation environment: technology, the regenerated net suite and
/// each net's `τ_min`.
#[derive(Debug, Clone)]
pub struct ExperimentEnv {
    /// The synthetic 0.18 µm technology (DESIGN.md §2).
    pub tech: Technology,
    /// The regenerated evaluation nets (paper: 20, Section 6
    /// distribution).
    pub nets: Vec<TwoPinNet>,
    /// Per-net minimum delay `τ_min`, fs (paper-setup DP).
    pub tau_mins: Vec<f64>,
}

impl ExperimentEnv {
    /// Regenerates the paper's evaluation environment from a seed
    /// (paper: 20 nets; tests use fewer).
    ///
    /// # Panics
    ///
    /// Panics only if the built-in paper distribution constants were
    /// invalid — impossible by construction.
    pub fn paper(seed: u64, net_count: usize) -> Self {
        let tech = Technology::generic_180nm();
        let nets = NetGenerator::suite(RandomNetConfig::default(), seed, net_count)
            .expect("paper distribution is valid");
        let engine = Engine::paper(tech.clone());
        let tau_mins = nets.iter().map(|net| engine.tau_min(net)).collect();
        Self {
            tech,
            nets,
            tau_mins,
        }
    }
}

/// The paper's timing-target sweep: `count` multipliers evenly spaced
/// over `[1.05, 2.05]` (Section 6 uses 20).
///
/// # Examples
///
/// ```
/// let m = rip_report::target_multipliers(20);
/// assert_eq!(m.len(), 20);
/// assert!((m[0] - 1.05).abs() < 1e-12);
/// assert!((m[19] - 2.05).abs() < 1e-12);
/// ```
pub fn target_multipliers(count: usize) -> Vec<f64> {
    if count == 1 {
        return vec![1.05];
    }
    (0..count)
        .map(|k| 1.05 + k as f64 * (1.0 / (count - 1) as f64))
        .collect()
}

/// One baseline measurement: total width (the power objective) and
/// runtime, or `None` when the baseline violated the timing target (the
/// paper's `V_DP` event).
pub type BaselineMeasure = Option<(f64, Duration)>;

/// One grid cell: a `(net, target)` pair with RIP's result and each
/// baseline's.
#[derive(Debug, Clone)]
pub struct ComparisonCell {
    /// Target multiplier over `τ_min`.
    pub multiplier: f64,
    /// Absolute target, fs.
    pub target_fs: f64,
    /// RIP's total width, u (`None` on the rare RIP failure — counted,
    /// and asserted zero in the test suite).
    pub rip_width: Option<f64>,
    /// RIP's wall-clock runtime.
    pub rip_time: Duration,
    /// Per-baseline `(width, runtime)`, aligned with
    /// [`ComparisonGrid::baseline_labels`].
    pub baselines: Vec<BaselineMeasure>,
}

/// The full RIP-vs-baselines comparison over a net suite and target
/// sweep. Table 1, Table 2 and Figure 7 are different summaries of this
/// grid.
#[derive(Debug, Clone)]
pub struct ComparisonGrid {
    /// Human-readable labels of the baselines (e.g. `"g=10u"`).
    pub baseline_labels: Vec<String>,
    /// Per-net `τ_min`, fs.
    pub tau_mins: Vec<f64>,
    /// `cells[net][target]`.
    pub cells: Vec<Vec<ComparisonCell>>,
}

impl ComparisonGrid {
    /// Total number of RIP failures across the grid (expected 0).
    pub fn rip_failures(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|c| c.rip_width.is_none())
            .count()
    }
}

/// Runs the comparison grid: for every net and every target multiplier,
/// run RIP once and every baseline once, recording widths and runtimes.
///
/// All cells of one grid share a single [`Engine`] session, so candidate
/// grids are built once per `(net, step)` rather than once per cell —
/// per-cell runtimes still measure each solve's own DP work. Cells run
/// sequentially on purpose: the grid's runtimes feed Table 2's timing
/// columns, and concurrent solves on shared cores would distort them.
pub fn run_grid(
    env: &ExperimentEnv,
    multipliers: &[f64],
    baselines: &[(String, BaselineConfig)],
    rip_config: &RipConfig,
) -> ComparisonGrid {
    let engine = Engine::new(env.tech.clone(), rip_config.clone());
    let mut cells = Vec::with_capacity(env.nets.len());
    for (net, &tau_min) in env.nets.iter().zip(&env.tau_mins) {
        let mut row = Vec::with_capacity(multipliers.len());
        for &m in multipliers {
            let target_fs = tau_min * m;

            let t0 = Instant::now();
            let rip_outcome = engine.solve(net, target_fs);
            let rip_time = t0.elapsed();
            let rip_width = rip_outcome.ok().map(|o| o.solution.total_width);

            let baselines = baselines
                .iter()
                .map(|(_, cfg)| {
                    let t1 = Instant::now();
                    let result = engine.baseline(net, cfg, target_fs);
                    let elapsed = t1.elapsed();
                    result.ok().map(|sol| (sol.total_width, elapsed))
                })
                .collect();

            row.push(ComparisonCell {
                multiplier: m,
                target_fs,
                rip_width,
                rip_time,
                baselines,
            });
        }
        cells.push(row);
    }
    ComparisonGrid {
        baseline_labels: baselines.iter().map(|(l, _)| l.clone()).collect(),
        tau_mins: env.tau_mins.clone(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_span_paper_range() {
        let m = target_multipliers(20);
        assert_eq!(m.len(), 20);
        assert!((m[0] - 1.05).abs() < 1e-12);
        assert!((m[19] - 2.05).abs() < 1e-12);
        for w in m.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn single_multiplier_is_tightest() {
        assert_eq!(target_multipliers(1), vec![1.05]);
    }

    #[test]
    fn env_is_reproducible() {
        let a = ExperimentEnv::paper(7, 2);
        let b = ExperimentEnv::paper(7, 2);
        assert_eq!(a.nets, b.nets);
        assert_eq!(a.tau_mins, b.tau_mins);
        assert_eq!(a.nets.len(), 2);
        assert!(a.tau_mins.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn tiny_grid_runs_clean() {
        let env = ExperimentEnv::paper(3, 1);
        let baselines = vec![
            ("g=20u".to_string(), BaselineConfig::paper_table1(20.0)),
            ("g=40u".to_string(), BaselineConfig::paper_table1(40.0)),
        ];
        let grid = run_grid(&env, &[1.2, 1.8], &baselines, &RipConfig::paper());
        assert_eq!(grid.cells.len(), 1);
        assert_eq!(grid.cells[0].len(), 2);
        assert_eq!(grid.rip_failures(), 0);
        for cell in &grid.cells[0] {
            assert!(cell.rip_width.unwrap() > 0.0);
            assert_eq!(cell.baselines.len(), 2);
        }
    }
}
