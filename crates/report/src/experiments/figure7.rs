//! Experiment E2/E3 — the paper's **Figure 7**: power savings of RIP over
//! the size-10 DP baseline as a function of the timing target, for width
//! granularities (a) `g = 10u` and (b) `g = 40u`.
//!
//! Expected shape (paper, Section 6):
//!
//! * **(a) g = 10u** — zone I at tight targets where the baseline finds
//!   *no* feasible solution (its library tops out at 100u); zone II where
//!   RIP's savings peak; zone III at loose targets where the baseline's
//!   many small widths reach parity (occasionally slightly beating RIP).
//! * **(b) g = 40u** — RIP wins everywhere, and the savings *grow* with
//!   looser targets because the coarse library lacks the small widths
//!   loose designs want.

use crate::experiments::common::{run_grid, target_multipliers, ExperimentEnv};
use crate::plot::{ascii_plot, Series};
use crate::stats::mean;
use rip_core::{power_saving_percent, BaselineConfig, RipConfig};
use rip_tech::units::ns_from_fs;

/// Configuration of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure7Config {
    /// Net-suite seed.
    pub seed: u64,
    /// Number of nets (paper: 20, all scattered into one plot).
    pub net_count: usize,
    /// Number of timing targets per net.
    pub target_count: usize,
    /// The two granularities plotted (paper: 10u for (a), 40u for (b)).
    pub granularity_a: f64,
    /// Panel (b) granularity.
    pub granularity_b: f64,
    /// RIP configuration.
    pub rip: RipConfig,
}

impl Default for Figure7Config {
    fn default() -> Self {
        Self {
            seed: 2005,
            net_count: 20,
            target_count: 20,
            granularity_a: 10.0,
            granularity_b: 40.0,
            rip: RipConfig::paper(),
        }
    }
}

/// One scatter point of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure7Point {
    /// Target multiplier over `τ_min`.
    pub multiplier: f64,
    /// Absolute timing constraint, ns (the paper's x axis).
    pub target_ns: f64,
    /// Saving over the baseline, percent; `None` when the baseline
    /// violated timing (zone I).
    pub saving_percent: Option<f64>,
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Figure7Outcome {
    /// Panel (a) points (fine granularity).
    pub panel_a: Vec<Figure7Point>,
    /// Panel (b) points (coarse granularity).
    pub panel_b: Vec<Figure7Point>,
    /// Granularities of the panels, u.
    pub granularities: (f64, f64),
}

/// Runs the Figure 7 experiment.
pub fn run_figure7(config: &Figure7Config) -> Figure7Outcome {
    let env = ExperimentEnv::paper(config.seed, config.net_count);
    let multipliers = target_multipliers(config.target_count);
    let baselines = vec![
        (
            format!("g={}u", config.granularity_a),
            BaselineConfig::paper_table1(config.granularity_a),
        ),
        (
            format!("g={}u", config.granularity_b),
            BaselineConfig::paper_table1(config.granularity_b),
        ),
    ];
    let grid = run_grid(&env, &multipliers, &baselines, &config.rip);
    let points = |gi: usize| -> Vec<Figure7Point> {
        grid.cells
            .iter()
            .flatten()
            .filter_map(|cell| {
                cell.rip_width.map(|rip_width| Figure7Point {
                    multiplier: cell.multiplier,
                    target_ns: ns_from_fs(cell.target_fs),
                    saving_percent: cell.baselines[gi]
                        .map(|(w, _)| power_saving_percent(w, rip_width)),
                })
            })
            .collect()
    };
    Figure7Outcome {
        panel_a: points(0),
        panel_b: points(1),
        granularities: (config.granularity_a, config.granularity_b),
    }
}

/// Mean saving per multiplier over the feasible points (the trend line
/// behind the paper's scatter). Multipliers where *no* baseline was
/// feasible (pure zone I) report `None`.
pub fn mean_by_multiplier(points: &[Figure7Point]) -> Vec<(f64, Option<f64>)> {
    let mut multipliers: Vec<f64> = points.iter().map(|p| p.multiplier).collect();
    multipliers.sort_by(|a, b| a.partial_cmp(b).expect("finite multipliers"));
    multipliers.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    multipliers
        .into_iter()
        .map(|m| {
            let savings: Vec<f64> = points
                .iter()
                .filter(|p| (p.multiplier - m).abs() < 1e-12)
                .filter_map(|p| p.saving_percent)
                .collect();
            let value = if savings.is_empty() {
                None
            } else {
                Some(mean(&savings))
            };
            (m, value)
        })
        .collect()
}

/// Fraction of points in zone I (baseline infeasible) per panel.
pub fn zone1_fraction(points: &[Figure7Point]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().filter(|p| p.saving_percent.is_none()).count() as f64 / points.len() as f64
}

/// Renders both panels as ASCII scatter plots with zone annotations.
pub fn render_figure7(outcome: &Figure7Outcome) -> String {
    let mut out = String::new();
    for (panel, label, points) in [
        ("(a)", outcome.granularities.0, &outcome.panel_a),
        ("(b)", outcome.granularities.1, &outcome.panel_b),
    ] {
        let scatter: Vec<(f64, f64)> = points
            .iter()
            .filter_map(|p| p.saving_percent.map(|s| (p.target_ns, s)))
            .collect();
        out.push_str(&format!(
            "Figure 7{panel}: power savings over DP [14] (library size 10, g = {label}u)\n"
        ));
        out.push_str(&ascii_plot(
            &[Series::new('x', format!("saving vs g={label}u"), scatter)],
            64,
            16,
            "timing constraint (ns)",
            "improvement (%)",
        ));
        let z1 = zone1_fraction(points);
        if z1 > 0.0 {
            out.push_str(&format!(
                "          zone I: baseline infeasible on {:.0}% of (net, target) pairs\n",
                z1 * 100.0
            ));
        }
        let trend = mean_by_multiplier(points);
        out.push_str("          mean saving by target multiplier:\n");
        for (m, s) in trend {
            match s {
                Some(s) => out.push_str(&format!("            {m:.2} x tau_min: {s:6.2} %\n")),
                None => out.push_str(&format!(
                    "            {m:.2} x tau_min:   zone I (baseline infeasible)\n"
                )),
            }
        }
        out.push('\n');
    }
    out
}

/// CSV headers + rows (both panels, long format).
pub fn figure7_csv(outcome: &Figure7Outcome) -> (Vec<String>, Vec<Vec<String>>) {
    let headers: Vec<String> = [
        "panel",
        "granularity_u",
        "multiplier",
        "target_ns",
        "saving_percent",
        "baseline_feasible",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (panel, g, points) in [
        ("a", outcome.granularities.0, &outcome.panel_a),
        ("b", outcome.granularities.1, &outcome.panel_b),
    ] {
        for p in points {
            rows.push(vec![
                panel.to_string(),
                format!("{g}"),
                format!("{:.4}", p.multiplier),
                format!("{:.4}", p.target_ns),
                p.saving_percent
                    .map_or(String::new(), |s| format!("{s:.4}")),
                p.saving_percent.is_some().to_string(),
            ]);
        }
    }
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Figure7Config {
        Figure7Config {
            seed: 11,
            net_count: 2,
            target_count: 5,
            ..Default::default()
        }
    }

    #[test]
    fn outcome_has_points_for_both_panels() {
        let out = run_figure7(&tiny_config());
        assert_eq!(out.panel_a.len(), 10);
        assert_eq!(out.panel_b.len(), 10);
    }

    #[test]
    fn panel_a_shows_zone_one_panel_b_does_not() {
        // g=10u (max 100u) must hit infeasible tight targets; g=40u (max
        // 370u) must not.
        let out = run_figure7(&tiny_config());
        assert!(zone1_fraction(&out.panel_a) > 0.0, "no zone I in panel (a)");
        assert_eq!(
            zone1_fraction(&out.panel_b),
            0.0,
            "unexpected zone I in panel (b)"
        );
    }

    #[test]
    fn trend_is_computed_per_multiplier() {
        let out = run_figure7(&tiny_config());
        let trend = mean_by_multiplier(&out.panel_b);
        assert_eq!(trend.len(), 5);
        for w in trend.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        // Panel (b) is always feasible -> every multiplier has a mean.
        assert!(trend.iter().all(|(_, s)| s.is_some()));
        // Panel (a) has pure-zone-I multipliers on tight targets.
        let trend_a = mean_by_multiplier(&out.panel_a);
        assert!(trend_a.iter().any(|(_, s)| s.is_none()));
    }

    #[test]
    fn rendering_mentions_both_panels() {
        let out = run_figure7(&tiny_config());
        let text = render_figure7(&out);
        assert!(text.contains("Figure 7(a)"));
        assert!(text.contains("Figure 7(b)"));
        assert!(text.contains("improvement (%)"));
    }

    #[test]
    fn csv_is_long_format_with_feasibility_flag() {
        let out = run_figure7(&tiny_config());
        let (headers, rows) = figure7_csv(&out);
        assert_eq!(headers.len(), 6);
        assert_eq!(rows.len(), 20);
        assert!(
            rows.iter().any(|r| r[5] == "false"),
            "zone I rows should appear"
        );
    }
}
