//! The paper-reproduction experiment runners (DESIGN.md §5).
//!
//! | Module | Paper artifact | Regeneration binary |
//! |--------|---------------|---------------------|
//! | [`table1`] | Table 1 | `cargo run -p rip-bench --release --bin table1` |
//! | [`figure7`] | Figure 7(a)/(b) | `cargo run -p rip-bench --release --bin figure7` |
//! | [`table2`] | Table 2 | `cargo run -p rip-bench --release --bin table2` |
//!
//! All three are summaries of the same [`common::ComparisonGrid`]; the
//! original nets are regenerated from a fixed seed with the paper's
//! Section 6 distribution (see DESIGN.md §2 for the substitution note).

pub mod common;
pub mod figure7;
pub mod table1;
pub mod table2;
