//! Experiment E1 — the paper's **Table 1**: per-net power savings of RIP
//! over the DP baseline \[14\] with library size 10 and granularities
//! `g ∈ {10u, 20u, 40u}`.
//!
//! Paper layout (per net): `∆Max` and `V_DP` at `g=10u` (the small
//! library violates tight targets), then `∆Max`/`∆Mean` at `g=20u` and
//! `g=40u`, plus an averages row.

use crate::experiments::common::{run_grid, target_multipliers, ComparisonGrid, ExperimentEnv};
use crate::table::{fmt_f, TextTable};
use rip_core::{summarize_savings, BaselineConfig, RipConfig, SavingsSummary};

/// Configuration of the Table 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Config {
    /// Net-suite seed.
    pub seed: u64,
    /// Number of nets (paper: 20).
    pub net_count: usize,
    /// Number of timing targets per net (paper: 20).
    pub target_count: usize,
    /// Baseline width granularities, u (paper: 10, 20, 40).
    pub granularities: Vec<f64>,
    /// RIP configuration.
    pub rip: RipConfig,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            seed: 2005,
            net_count: 20,
            target_count: 20,
            granularities: vec![10.0, 20.0, 40.0],
            rip: RipConfig::paper(),
        }
    }
}

/// Result of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Outcome {
    /// The granularities compared, u.
    pub granularities: Vec<f64>,
    /// Per-net summaries, one [`SavingsSummary`] per granularity.
    pub rows: Vec<Vec<SavingsSummary>>,
    /// Across-net averages, one per granularity (the paper's `Ave` row).
    pub averages: Vec<SavingsSummary>,
    /// RIP failures across the grid (expected 0).
    pub rip_failures: usize,
    /// The underlying comparison grid (kept for reuse, e.g. Figure 7).
    pub grid: ComparisonGrid,
}

/// Runs the Table 1 experiment.
pub fn run_table1(config: &Table1Config) -> Table1Outcome {
    let env = ExperimentEnv::paper(config.seed, config.net_count);
    let multipliers = target_multipliers(config.target_count);
    let baselines: Vec<(String, BaselineConfig)> = config
        .granularities
        .iter()
        .map(|&g| (format!("g={g}u"), BaselineConfig::paper_table1(g)))
        .collect();
    let grid = run_grid(&env, &multipliers, &baselines, &config.rip);
    summarize_table1(config, grid)
}

/// Summarizes a prebuilt grid into the Table 1 metrics (separated from
/// [`run_table1`] so other experiments can reuse the grid).
pub fn summarize_table1(config: &Table1Config, grid: ComparisonGrid) -> Table1Outcome {
    let g_count = config.granularities.len();
    let mut rows = Vec::with_capacity(grid.cells.len());
    for net_cells in &grid.cells {
        let mut per_g = Vec::with_capacity(g_count);
        for gi in 0..g_count {
            let pairs: Vec<(Option<f64>, f64)> = net_cells
                .iter()
                .filter_map(|cell| {
                    cell.rip_width
                        .map(|rw| (cell.baselines[gi].map(|(w, _)| w), rw))
                })
                .collect();
            per_g.push(summarize_savings(&pairs));
        }
        rows.push(per_g);
    }
    let averages = (0..g_count)
        .map(|gi| {
            let n = rows.len().max(1) as f64;
            SavingsSummary {
                max_percent: rows.iter().map(|r| r[gi].max_percent).sum::<f64>() / n,
                mean_percent: rows.iter().map(|r| r[gi].mean_percent).sum::<f64>() / n,
                baseline_violations: (rows
                    .iter()
                    .map(|r| r[gi].baseline_violations)
                    .sum::<usize>() as f64
                    / n)
                    .round() as usize,
                compared: rows.iter().map(|r| r[gi].compared).sum(),
            }
        })
        .collect();
    Table1Outcome {
        granularities: config.granularities.clone(),
        rip_failures: grid.rip_failures(),
        rows,
        averages,
        grid,
    }
}

/// Renders the outcome in the paper's Table 1 layout.
pub fn render_table1(outcome: &Table1Outcome) -> String {
    let mut headers = vec!["Net".to_string()];
    for (gi, g) in outcome.granularities.iter().enumerate() {
        headers.push(format!("dMax(g={g}u) %"));
        if gi == 0 {
            headers.push("V_DP".to_string());
        } else {
            headers.push(format!("dMean(g={g}u) %"));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(header_refs);
    for (i, row) in outcome.rows.iter().enumerate() {
        let mut cells = vec![(i + 1).to_string()];
        for (gi, s) in row.iter().enumerate() {
            cells.push(fmt_f(s.max_percent, 2));
            if gi == 0 {
                cells.push(s.baseline_violations.to_string());
            } else {
                cells.push(fmt_f(s.mean_percent, 2));
            }
        }
        table.row(cells);
    }
    table.separator();
    let mut ave = vec!["Ave".to_string()];
    for (gi, s) in outcome.averages.iter().enumerate() {
        ave.push(fmt_f(s.max_percent, 2));
        if gi == 0 {
            ave.push(s.baseline_violations.to_string());
        } else {
            ave.push(fmt_f(s.mean_percent, 2));
        }
    }
    table.row(ave);
    let mut out = String::from(
        "Table 1: power reduction for two-pin nets (RIP vs DP [14], library size 10)\n",
    );
    out.push_str(&table.to_string());
    if outcome.rip_failures > 0 {
        out.push_str(&format!("WARNING: {} RIP failures\n", outcome.rip_failures));
    }
    out
}

/// CSV headers + rows for the outcome.
pub fn table1_csv(outcome: &Table1Outcome) -> (Vec<String>, Vec<Vec<String>>) {
    let mut headers = vec!["net".to_string()];
    for g in &outcome.granularities {
        headers.push(format!("dmax_g{g}"));
        headers.push(format!("dmean_g{g}"));
        headers.push(format!("vdp_g{g}"));
    }
    let mut rows = Vec::new();
    for (i, row) in outcome.rows.iter().enumerate() {
        let mut cells = vec![(i + 1).to_string()];
        for s in row {
            cells.push(fmt_f(s.max_percent, 4));
            cells.push(fmt_f(s.mean_percent, 4));
            cells.push(s.baseline_violations.to_string());
        }
        rows.push(cells);
    }
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Table1Config {
        Table1Config {
            seed: 42,
            net_count: 2,
            target_count: 4,
            granularities: vec![10.0, 40.0],
            ..Default::default()
        }
    }

    #[test]
    fn tiny_table1_has_expected_shape() {
        let out = run_table1(&tiny_config());
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].len(), 2);
        assert_eq!(out.averages.len(), 2);
        assert_eq!(
            out.rip_failures, 0,
            "RIP must never fail at >= 1.05 tau_min"
        );
    }

    #[test]
    fn rendering_includes_all_nets_and_average() {
        let out = run_table1(&tiny_config());
        let text = render_table1(&out);
        assert!(text.contains("Net"));
        assert!(text.contains("Ave"));
        assert!(text.contains("V_DP"));
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn csv_rows_align_with_headers() {
        let out = run_table1(&tiny_config());
        let (headers, rows) = table1_csv(&out);
        assert_eq!(headers.len(), 1 + 3 * out.granularities.len());
        for row in rows {
            assert_eq!(row.len(), headers.len());
        }
    }

    #[test]
    fn small_library_shows_violations_or_savings() {
        // The scientific content: at g=10u the baseline library tops out
        // at 100u (far below the ~230u optimum), so across tight targets
        // it must either violate timing or lose power.
        let out = run_table1(&tiny_config());
        let g10_violations: usize = out.rows.iter().map(|r| r[0].baseline_violations).sum();
        assert!(
            g10_violations > 0,
            "expected zone-I violations at g=10u (got none)"
        );
    }
}
