//! Experiment E4 — the paper's **Table 2**: the quality/runtime tradeoff
//! of the DP baseline as its width granularity `g_DP` shrinks over a
//! fixed (10u, 400u) range, versus RIP's fixed (and small) runtime.
//!
//! Expected shape: as `g_DP` goes 40u → 10u, the baseline's power
//! disadvantage `∆` shrinks towards ~0 while its runtime `T_DP` grows
//! steeply (pseudo-polynomial pruning frontier); RIP's runtime stays
//! flat, so the speedup at equal quality grows by orders of magnitude.

use crate::experiments::common::{run_grid, target_multipliers, ComparisonGrid, ExperimentEnv};
use crate::stats::mean;
use crate::table::{fmt_f, TextTable};
use rip_core::{power_saving_percent, BaselineConfig, RipConfig};
use std::time::Duration;

/// Configuration of the Table 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Config {
    /// Net-suite seed.
    pub seed: u64,
    /// Number of nets (paper: 20).
    pub net_count: usize,
    /// Number of timing targets per net (paper: 20).
    pub target_count: usize,
    /// Baseline granularities over the fixed (10u, 400u) range
    /// (paper: 40, 30, 20, 10).
    pub granularities: Vec<f64>,
    /// RIP configuration.
    pub rip: RipConfig,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            seed: 2005,
            net_count: 20,
            target_count: 20,
            granularities: vec![40.0, 30.0, 20.0, 10.0],
            rip: RipConfig::paper(),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Baseline width granularity `g_DP`, u.
    pub granularity: f64,
    /// Mean power saving `∆` of RIP over this baseline, percent
    /// (feasible pairs only).
    pub delta_mean_percent: f64,
    /// Mean baseline runtime per design, `T_DP`.
    pub t_dp: Duration,
    /// Speedup `T_DP / T_RIP` (means).
    pub speedup: f64,
    /// Baseline timing violations across the grid.
    pub violations: usize,
}

/// Result of the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct Table2Outcome {
    /// One row per granularity, in configuration order.
    pub rows: Vec<Table2Row>,
    /// Mean RIP runtime per design, `T_RIP`.
    pub t_rip: Duration,
    /// RIP failures across the grid (expected 0).
    pub rip_failures: usize,
}

/// Runs the Table 2 experiment.
pub fn run_table2(config: &Table2Config) -> Table2Outcome {
    let env = ExperimentEnv::paper(config.seed, config.net_count);
    let multipliers = target_multipliers(config.target_count);
    let baselines: Vec<(String, BaselineConfig)> = config
        .granularities
        .iter()
        .map(|&g| (format!("gDP={g}u"), BaselineConfig::paper_table2(g)))
        .collect();
    let grid = run_grid(&env, &multipliers, &baselines, &config.rip);
    summarize_table2(config, &grid)
}

/// Summarizes a prebuilt grid into Table 2 rows.
pub fn summarize_table2(config: &Table2Config, grid: &ComparisonGrid) -> Table2Outcome {
    let cells: Vec<_> = grid.cells.iter().flatten().collect();
    let rip_times: Vec<f64> = cells.iter().map(|c| c.rip_time.as_secs_f64()).collect();
    let t_rip_mean = mean(&rip_times);

    let rows = config
        .granularities
        .iter()
        .enumerate()
        .map(|(gi, &g)| {
            let mut savings = Vec::new();
            let mut times = Vec::new();
            let mut violations = 0;
            for cell in &cells {
                match (cell.baselines[gi], cell.rip_width) {
                    (Some((w, t)), Some(rip_w)) => {
                        savings.push(power_saving_percent(w, rip_w));
                        times.push(t.as_secs_f64());
                    }
                    (None, _) => violations += 1,
                    _ => {}
                }
            }
            let t_dp_mean = mean(&times);
            Table2Row {
                granularity: g,
                delta_mean_percent: mean(&savings),
                t_dp: Duration::from_secs_f64(t_dp_mean),
                speedup: if t_rip_mean > 0.0 {
                    t_dp_mean / t_rip_mean
                } else {
                    0.0
                },
                violations,
            }
        })
        .collect();

    Table2Outcome {
        rows,
        t_rip: Duration::from_secs_f64(t_rip_mean),
        rip_failures: grid.rip_failures(),
    }
}

/// Renders the outcome in the paper's Table 2 layout.
pub fn render_table2(outcome: &Table2Outcome) -> String {
    let mut table = TextTable::new(vec!["gDP (u)", "delta (%)", "T_DP (ms)", "Speedup"]);
    for row in &outcome.rows {
        table.row(vec![
            fmt_f(row.granularity, 0),
            fmt_f(row.delta_mean_percent, 1),
            fmt_f(row.t_dp.as_secs_f64() * 1e3, 3),
            fmt_f(row.speedup, 1),
        ]);
    }
    let mut out = String::from("Table 2: power savings and speedup tradeoff (range 10u-400u)\n");
    out.push_str(&table.to_string());
    out.push_str(&format!(
        "mean RIP runtime per design: {:.3} ms\n",
        outcome.t_rip.as_secs_f64() * 1e3
    ));
    if outcome.rip_failures > 0 {
        out.push_str(&format!("WARNING: {} RIP failures\n", outcome.rip_failures));
    }
    out
}

/// CSV headers + rows.
pub fn table2_csv(outcome: &Table2Outcome) -> (Vec<String>, Vec<Vec<String>>) {
    let headers: Vec<String> = [
        "g_dp_u",
        "delta_mean_percent",
        "t_dp_ms",
        "t_rip_ms",
        "speedup",
        "violations",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows = outcome
        .rows
        .iter()
        .map(|r| {
            vec![
                fmt_f(r.granularity, 0),
                fmt_f(r.delta_mean_percent, 4),
                fmt_f(r.t_dp.as_secs_f64() * 1e3, 4),
                fmt_f(outcome.t_rip.as_secs_f64() * 1e3, 4),
                fmt_f(r.speedup, 3),
                r.violations.to_string(),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Table2Config {
        Table2Config {
            seed: 5,
            net_count: 2,
            target_count: 3,
            granularities: vec![40.0, 10.0],
            ..Default::default()
        }
    }

    #[test]
    fn outcome_shape_and_no_rip_failures() {
        let out = run_table2(&tiny_config());
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rip_failures, 0);
        assert!(out.t_rip > Duration::ZERO);
    }

    #[test]
    fn finer_baseline_library_closes_the_power_gap() {
        // The paper's headline tradeoff: delta shrinks as g_DP shrinks.
        let out = run_table2(&tiny_config());
        let coarse = out.rows[0].delta_mean_percent; // g=40u
        let fine = out.rows[1].delta_mean_percent; // g=10u
        assert!(
            fine <= coarse + 1e-9,
            "finer library should close the gap: {fine} vs {coarse}"
        );
    }

    #[test]
    fn finer_baseline_library_costs_runtime() {
        let out = run_table2(&tiny_config());
        assert!(
            out.rows[1].t_dp >= out.rows[0].t_dp,
            "g=10u should not be faster than g=40u"
        );
    }

    #[test]
    fn rendering_has_one_row_per_granularity() {
        let out = run_table2(&tiny_config());
        let text = render_table2(&out);
        assert!(text.contains("gDP"));
        assert!(text.contains("Speedup"));
        assert!(!text.contains("WARNING"));
        let (headers, rows) = table2_csv(&out);
        assert_eq!(headers.len(), 6);
        assert_eq!(rows.len(), 2);
    }
}
