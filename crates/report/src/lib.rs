//! # rip-report — reporting and experiment harness for the RIP reproduction
//!
//! Provides the output layer (text tables, CSV, ASCII plots, statistics)
//! and the experiment runners that regenerate every table and figure of
//! the paper's evaluation section:
//!
//! * [`experiments::table1`] — Table 1 (per-net power savings vs the DP
//!   baseline at three width granularities);
//! * [`experiments::figure7`] — Figure 7(a)/(b) (savings vs timing
//!   target, zones I/II/III);
//! * [`experiments::table2`] — Table 2 (quality/runtime tradeoff and
//!   speedup).
//!
//! The `rip-bench` crate wraps these in runnable binaries and Criterion
//! benchmarks.
//!
//! # Example
//!
//! ```no_run
//! use rip_report::experiments::table1::{render_table1, run_table1, Table1Config};
//!
//! // Full paper-scale run (20 nets x 20 targets x 3 baselines).
//! let outcome = run_table1(&Table1Config::default());
//! println!("{}", render_table1(&outcome));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csv;
pub mod experiments;
mod plot;
mod stats;
mod table;

pub use csv::{to_csv_string, write_csv};
pub use experiments::common::{target_multipliers, ComparisonCell, ComparisonGrid, ExperimentEnv};
pub use plot::{ascii_plot, Series};
pub use stats::{max, mean, median, min};
pub use table::{fmt_f, Align, TextTable};
