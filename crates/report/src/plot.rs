//! ASCII scatter/line plots for regenerating the paper's figures in a
//! terminal.

/// One plotted series: a marker character and its `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Marker drawn for the series' points.
    pub marker: char,
    /// Legend label.
    pub label: String,
    /// The points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(marker: char, label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            marker,
            label: label.into(),
            points,
        }
    }
}

/// Renders an ASCII scatter plot of the given series.
///
/// The canvas auto-scales to the data (with a zero-line drawn when the y
/// range spans zero, as in the paper's Figure 7(a) where savings can go
/// negative).
///
/// # Examples
///
/// ```
/// use rip_report::{ascii_plot, Series};
///
/// let s = Series::new('x', "savings", vec![(1.0, 5.0), (2.0, 10.0)]);
/// let plot = ascii_plot(&[s], 40, 10, "target", "saving (%)");
/// assert!(plot.contains('x'));
/// assert!(plot.contains("saving (%)"));
/// ```
pub fn ascii_plot(
    series: &[Series],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("(no data)\n{y_label} vs {x_label}\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-30 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-30 {
        y_max = y_min + 1.0;
    }
    // A little headroom so extreme points are not on the border.
    let y_pad = (y_max - y_min) * 0.05;
    let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);

    let mut canvas = vec![vec![' '; width]; height];
    // Zero line.
    if y_lo < 0.0 && y_hi > 0.0 {
        let zero_row = to_row(0.0, y_lo, y_hi, height);
        for cell in &mut canvas[zero_row] {
            *cell = '.';
        }
    }
    for s in series {
        for &(x, y) in &s.points {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = to_row(y, y_lo, y_hi, height);
            canvas[row][col.min(width - 1)] = s.marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{y_label}\n"));
    for (i, row) in canvas.iter().enumerate() {
        let y_tick = if i == 0 {
            format!("{y_hi:>9.2}")
        } else if i == height - 1 {
            format!("{y_lo:>9.2}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&format!("{y_tick} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{} +{}\n", " ".repeat(9), "-".repeat(width)));
    out.push_str(&format!(
        "{} {:<width$}\n",
        " ".repeat(9),
        format!(
            "{x_min:.2}{}{x_max:.2}  ({x_label})",
            " ".repeat(width.saturating_sub(16))
        ),
    ));
    for s in series {
        out.push_str(&format!("{} '{}' = {}\n", " ".repeat(9), s.marker, s.label));
    }
    out
}

fn to_row(y: f64, y_lo: f64, y_hi: f64, height: usize) -> usize {
    let frac = (y - y_lo) / (y_hi - y_lo);
    let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
    row.min(height - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_markers_and_labels() {
        let s = Series::new('o', "demo", vec![(0.0, 1.0), (5.0, 2.0), (10.0, 0.5)]);
        let p = ascii_plot(&[s], 30, 8, "time", "value");
        assert!(p.contains('o'));
        assert!(p.contains("demo"));
        assert!(p.contains("time"));
    }

    #[test]
    fn zero_line_appears_when_range_spans_zero() {
        let s = Series::new('x', "signed", vec![(0.0, -1.0), (1.0, 1.0)]);
        let p = ascii_plot(&[s], 20, 9, "x", "y");
        assert!(p.lines().any(|l| l.contains("....")));
    }

    #[test]
    fn no_zero_line_for_positive_data() {
        let s = Series::new('x', "pos", vec![(0.0, 1.0), (1.0, 2.0)]);
        let p = ascii_plot(&[s], 20, 9, "x", "y");
        assert!(!p.lines().any(|l| l.contains("....")));
    }

    #[test]
    fn higher_y_is_higher_row() {
        let s = Series::new('H', "high", vec![(0.5, 10.0)]);
        let t = Series::new('L', "low", vec![(0.5, -10.0)]);
        let p = ascii_plot(&[s, t], 20, 9, "x", "y");
        let h_line = p.lines().position(|l| l.contains('H')).unwrap();
        let l_line = p.lines().position(|l| l.contains('L')).unwrap();
        assert!(h_line < l_line);
    }

    #[test]
    fn empty_series_is_graceful() {
        let p = ascii_plot(&[], 20, 9, "x", "y");
        assert!(p.contains("no data"));
    }

    #[test]
    fn degenerate_single_point_is_graceful() {
        let s = Series::new('x', "one", vec![(1.0, 1.0)]);
        let p = ascii_plot(&[s], 20, 6, "x", "y");
        assert!(p.contains('x'));
    }
}
