//! Small statistics helpers for experiment aggregation.

/// Arithmetic mean; 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(rip_report::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(rip_report::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum; 0.0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        .max(0.0)
}

/// Minimum; 0.0 for an empty slice.
pub fn min(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    }
}

/// Median (average of middle pair for even lengths); 0.0 when empty.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite stats inputs"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_min() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(mean(&v), 2.0);
        assert_eq!(max(&v), 3.0);
        assert_eq!(min(&v), 1.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn max_clamps_negative_only_sets_to_zero() {
        // max() is used for "best saving" reporting where an all-negative
        // series reads as "no saving".
        assert_eq!(max(&[-5.0, -2.0]), 0.0);
    }
}
