//! Plain-text table rendering for experiment output.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Examples
///
/// ```
/// use rip_report::TextTable;
///
/// let mut t = TextTable::new(vec!["Net", "ΔMax (%)"]);
/// t.row(vec!["1".into(), "22.95".into()]);
/// t.row(vec!["2".into(), "17.39".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Net"));
/// assert!(s.contains("22.95"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given column headers. All columns default
    /// to right alignment except the first (label) column.
    pub fn new(headers: Vec<&str>) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides the per-column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the header count.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) {
        assert_eq!(aligns.len(), self.headers.len(), "one alignment per column");
        self.aligns = aligns;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "one cell per column");
        self.rows.push(cells);
    }

    /// Appends a horizontal separator row (rendered as dashes).
    pub fn separator(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Number of data rows added (separators excluded).
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, (&width, align)) in widths.iter().zip(&self.aligns).enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width.saturating_sub(cell.chars().count());
                match align {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(cell);
                    }
                }
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            if row.is_empty() {
                writeln!(f, "{}", "-".repeat(total))?;
            } else {
                write_row(f, row)?;
            }
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimals (experiment cells).
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Name", "Value"]);
        t.row(vec!["alpha".into(), "1.5".into()]);
        t.row(vec!["b".into(), "123.25".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers share their last column.
        let c1 = lines[2].rfind("1.5").unwrap() + 3;
        let c2 = lines[3].rfind("123.25").unwrap() + 6;
        assert_eq!(c1, c2);
    }

    #[test]
    fn separator_rows_render_as_dashes() {
        let mut t = TextTable::new(vec!["A", "B"]);
        t.row(vec!["x".into(), "1".into()]);
        t.separator();
        t.row(vec!["avg".into(), "1".into()]);
        let s = t.to_string();
        assert_eq!(s.lines().filter(|l| l.chars().all(|c| c == '-')).count(), 2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one cell per column")]
    fn wrong_cell_count_panics() {
        let mut t = TextTable::new(vec!["A", "B"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f_controls_decimals() {
        assert_eq!(fmt_f(37.146, 2), "37.15");
        assert_eq!(fmt_f(10.0, 0), "10");
    }
}
