//! A small blocking client for the service protocol: one line out, one
//! line back. Used by the CLI's `rip client`, the load generator, the
//! integration tests, and CI's smoke test.
//!
//! With a [`RetryPolicy`] attached ([`Client::with_retry`]), transient
//! failures — typed `busy`/`backpressure`/`timeout`/`internal` errors,
//! connection resets, and truncated (unparseable) response lines — are
//! retried over a **fresh connection** with capped exponential backoff
//! and deterministic [`SplitMix64`] jitter. Reconnecting before every
//! retry is what makes retrying safe: a half-written request or a
//! half-read response can never corrupt the framing of the next
//! attempt.

use crate::json::{parse_json, Json};
use crate::protocol::ErrorCode;
use rip_net::SplitMix64;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// When and how a [`Client`] retries transient failures: up to
/// `retries` extra attempts, sleeping a capped exponential backoff with
/// deterministic jitter between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = fail fast, the default).
    pub retries: u32,
    /// Base backoff before the first retry, milliseconds; doubles per
    /// retry. 0 = retry immediately (tests).
    pub backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> Self {
        Self {
            retries: 0,
            backoff_ms: 0,
            max_backoff_ms: 0,
            seed: 2005,
        }
    }

    /// `retries` extra attempts starting at `backoff_ms` (ceiling
    /// 16× the base).
    pub fn new(retries: u32, backoff_ms: u64) -> Self {
        Self {
            retries,
            backoff_ms,
            max_backoff_ms: backoff_ms.saturating_mul(16),
            seed: 2005,
        }
    }

    /// The sleep before retry number `attempt` (0-based): the base
    /// doubled per attempt, capped, then jittered into `[0.5, 1.0]` of
    /// itself so synchronized clients fan out.
    fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        if self.backoff_ms == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_backoff_ms.max(self.backoff_ms));
        Duration::from_millis(((exp as f64) * (0.5 + 0.5 * rng.next_f64())) as u64)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: SplitMix64,
    attempts: u64,
    retries: u64,
    gave_up: u64,
}

impl Client {
    /// Connects to a running server (no retries — see
    /// [`Client::with_retry`]).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Solves can take a while on cold caches, but nothing should
        // take minutes; a generous timeout keeps a dead server from
        // hanging scripts forever.
        stream.set_read_timeout(Some(Duration::from_secs(300)))?;
        Ok(Self {
            // The peer address (not the input, which may resolve to
            // many) is what a retry reconnects to.
            addr: stream.peer_addr()?,
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            policy: RetryPolicy::none(),
            rng: SplitMix64::new(RetryPolicy::none().seed),
            attempts: 0,
            retries: 0,
            gave_up: 0,
        })
    }

    /// Attaches a retry policy (and reseeds the backoff jitter from
    /// it).
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self.rng = SplitMix64::new(policy.seed);
        self
    }

    /// Request attempts made, including retries.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Retries performed (attempts beyond each request's first).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests that exhausted every retry and surfaced their last
    /// failure.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Replaces the connection with a fresh one to the same peer.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(300)))?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// Sends one raw request line (newline appended) without waiting
    /// for a response — use before dropping the connection (e.g.
    /// `shutdown`) or followed by [`Client::read_line`]. Never retried.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closed
    /// the connection.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one raw request line and returns the raw response line —
    /// the byte-exact round trip the loadgen's identity check compares.
    /// With a [`RetryPolicy`] attached, transient failures retry over a
    /// fresh connection; a returned `Ok` line may still be a typed
    /// error (the last one, after retries ran out).
    ///
    /// # Errors
    ///
    /// Propagates the final socket error once retries are exhausted.
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        if self.policy.retries == 0 {
            self.attempts += 1;
            self.send_line(line)?;
            return self.read_line();
        }
        let mut last: Option<io::Result<String>> = None;
        for attempt in 0..=self.policy.retries {
            if attempt > 0 {
                self.retries += 1;
                let backoff = self.policy.backoff(attempt - 1, &mut self.rng);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                // A fresh connection per retry: the old one may hold a
                // half-written request or half-read response, and a
                // drain-cut socket is dead anyway.
                if let Err(e) = self.reconnect() {
                    last = Some(Err(e));
                    continue;
                }
            }
            self.attempts += 1;
            let result = self.send_line(line).and_then(|()| self.read_line());
            match result {
                Ok(response) if response_retryable(&response) => last = Some(Ok(response)),
                Ok(response) => return Ok(response),
                Err(e) if io_retryable(&e) => last = Some(Err(e)),
                Err(e) => return Err(e),
            }
        }
        self.gave_up += 1;
        last.expect("at least one attempt ran")
    }

    /// Sends a request value and parses the response (retrying per the
    /// policy, like [`Client::request_line`]).
    ///
    /// # Errors
    ///
    /// Propagates socket errors; an unparseable response becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn request_value(&mut self, request: &Json) -> io::Result<Json> {
        let response = self.request_line(&request.to_string())?;
        parse_json(&response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// `true` when a response line is worth retrying: a typed error whose
/// code is transient ([`ErrorCode::retryable`]), or a line that does
/// not parse at all — which is exactly what a connection cut
/// mid-response leaves behind.
fn response_retryable(line: &str) -> bool {
    let Ok(value) = parse_json(line) else {
        return true;
    };
    if value.get("ok") == Some(&Json::Bool(true)) {
        return false;
    }
    match value.get("code") {
        Some(Json::Str(code)) => ErrorCode::from_wire(code).is_some_and(|c| c.retryable()),
        _ => false,
    }
}

/// `true` for the transport errors a reconnect can cure: resets, EOFs
/// (the server cut the connection), timeouts, and refused dials (the
/// server may still be coming up between retries).
fn io_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionRefused
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_doubling_with_bounded_jitter() {
        let policy = RetryPolicy::new(5, 100);
        assert_eq!(policy.max_backoff_ms, 1600);
        let mut rng = SplitMix64::new(policy.seed);
        let mut previous_cap = 0;
        for attempt in 0..8 {
            let sleep = policy.backoff(attempt, &mut rng).as_millis() as u64;
            let cap = (100u64 << attempt).min(1600);
            assert!(sleep <= cap, "attempt {attempt}: {sleep} > {cap}");
            assert!(sleep >= cap / 2, "attempt {attempt}: {sleep} < {}", cap / 2);
            assert!(cap >= previous_cap, "caps must not shrink");
            previous_cap = cap;
        }
        // Zero base means immediate retries, deterministically.
        let zero = RetryPolicy::new(3, 0);
        assert_eq!(zero.backoff(2, &mut rng), Duration::ZERO);
    }

    #[test]
    fn retryability_classification_matches_the_protocol() {
        // Transient typed errors retry.
        assert!(response_retryable(
            r#"{"ok":false,"code":"busy","error":"x"}"#
        ));
        assert!(response_retryable(
            r#"{"ok":false,"code":"backpressure","error":"x"}"#
        ));
        assert!(response_retryable(
            r#"{"ok":false,"code":"timeout","error":"x"}"#
        ));
        assert!(response_retryable(
            r#"{"ok":false,"code":"internal","error":"x"}"#
        ));
        // Permanent typed errors do not.
        assert!(!response_retryable(
            r#"{"ok":false,"code":"bad_request","error":"x"}"#
        ));
        assert!(!response_retryable(
            r#"{"ok":false,"code":"shutting_down","error":"x"}"#
        ));
        // Successes do not.
        assert!(!response_retryable(r#"{"ok":true,"tau_min_ps":1.0}"#));
        // A truncated line (the drop fault's signature) does.
        assert!(response_retryable(r#"{"ok":true,"tau_m"#));
    }
}
