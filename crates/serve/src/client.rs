//! A small blocking client for the service protocol: one line out, one
//! line back. Used by the CLI's `rip client`, the load generator, the
//! integration tests, and CI's smoke test.

use crate::json::{parse_json, Json};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Solves can take a while on cold caches, but nothing should
        // take minutes; a generous timeout keeps a dead server from
        // hanging scripts forever.
        stream.set_read_timeout(Some(Duration::from_secs(300)))?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one raw request line (newline appended) without waiting
    /// for a response — use before dropping the connection (e.g.
    /// `shutdown`) or followed by [`Client::read_line`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closed
    /// the connection.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }

    /// Sends one raw request line and returns the raw response line —
    /// the byte-exact round trip the loadgen's identity check compares.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.read_line()
    }

    /// Sends a request value and parses the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; an unparseable response becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn request_value(&mut self, request: &Json) -> io::Result<Json> {
        let response = self.request_line(&request.to_string())?;
        parse_json(&response).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}
