//! Supervision and deterministic fault injection for the serve stack.
//!
//! Two halves, one module:
//!
//! * **Supervision** — [`supervised_handle`] wraps request dispatch in
//!   [`catch_unwind`], so a panic anywhere inside the engine becomes a
//!   typed `internal` error response (carrying the request id, because
//!   the caller still renders it) instead of a dead worker thread. The
//!   caller then replaces the panicked state with a fresh engine built
//!   from an identical recipe — caches restart cold, but correctness is
//!   untouched because caching never changes results.
//! * **Fault injection** — a seeded [`FaultPlan`] drives three fault
//!   families from inside the serving path: panic every Nth eligible
//!   request, delay every Nth by a fixed amount, and cut the connection
//!   mid-response every Nth reply. The plan is deterministic (counters
//!   plus [`SplitMix64`] jitter from the seed), which is what lets the
//!   chaos suite assert *exact* panic/respawn counts and byte-identity
//!   of every successfully answered request against a fault-free
//!   server.
//!
//! Only non-control requests are fault-eligible
//! ([`Request::is_control`] exempts `hello`, `stats`, `reset_stats`,
//! `drain` and `shutdown`): operators must be able to observe and drain
//! a degraded server, so the monitoring and lifecycle plane never
//! injects faults into itself.

use crate::protocol::{ErrorCode, Request, Response, ServeState};
use rip_net::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A deterministic fault schedule. All periods count *eligible*
/// (non-control) requests; `0` disables that fault family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside the handler on every Nth eligible request (0 = off).
    pub panic_every: u64,
    /// Delay the handler on every Nth eligible request (0 = off).
    pub delay_every: u64,
    /// How long an injected delay sleeps, milliseconds.
    pub delay_ms: u64,
    /// Cut the connection mid-response on every Nth eligible reply
    /// (0 = off). The cut point is seeded, strictly inside the JSON
    /// text, so the client always sees a truncated (unparseable) line.
    pub drop_every: u64,
    /// Seed for the drop-point jitter.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, ever.
    pub fn none() -> Self {
        Self {
            panic_every: 0,
            delay_every: 0,
            delay_ms: 0,
            drop_every: 0,
            seed: 2005,
        }
    }

    /// `true` when any fault family is enabled.
    pub fn is_active(&self) -> bool {
        self.panic_every > 0 || self.delay_every > 0 || self.drop_every > 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The shared fault-injection state of one server: the plan plus the
/// deterministic ordinal counters and the tallies of every fault
/// actually fired (what the chaos suite reconciles `stats` against).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    armed: AtomicBool,
    handled: AtomicU64,
    sent: AtomicU64,
    panics: AtomicU64,
    delays: AtomicU64,
    drops: AtomicU64,
}

impl FaultInjector {
    /// An injector executing `plan` (armed immediately).
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            armed: AtomicBool::new(true),
            handled: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        }
    }

    /// An injector that never fires (the production default).
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none())
    }

    /// The schedule this injector executes.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Arms or disarms the injector at runtime. Disarming stops new
    /// faults without touching the tallies — how the chaos suite runs
    /// its post-fault clean round against the same server.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// `true` while faults fire.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Called by a supervised handler before dispatching one eligible
    /// request: fires the delay and/or panic fault when this request's
    /// ordinal matches the plan.
    ///
    /// # Panics
    ///
    /// Panics deliberately on every `panic_every`th eligible request
    /// while armed — that is the injected fault.
    pub fn before_handle(&self) {
        if !self.plan.is_active() {
            return;
        }
        let ordinal = self.handled.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.armed() {
            return;
        }
        if self.plan.delay_every > 0 && ordinal % self.plan.delay_every == 0 {
            self.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
        }
        if self.plan.panic_every > 0 && ordinal % self.plan.panic_every == 0 {
            let n = self.panics.fetch_add(1, Ordering::Relaxed) + 1;
            panic!("injected fault: panic #{n} (eligible request ordinal {ordinal})");
        }
    }

    /// Called by the transport before writing one eligible response of
    /// `len` bytes (JSON text plus the trailing newline): returns the
    /// byte offset to cut the connection at, or `None` to send it
    /// whole. A cut is always strictly inside the JSON text, so the
    /// client can never mistake the truncation for a complete response.
    pub fn drop_response(&self, len: usize) -> Option<usize> {
        if self.plan.drop_every == 0 {
            return None;
        }
        let ordinal = self.sent.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.armed() || ordinal % self.plan.drop_every != 0 || len < 3 {
            return None;
        }
        self.drops.fetch_add(1, Ordering::Relaxed);
        let mut rng = SplitMix64::new(self.plan.seed ^ ordinal);
        Some(rng.range_usize(1, len - 2))
    }

    /// Panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Delays injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Mid-response connection cuts injected so far.
    pub fn injected_drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }
}

/// Dispatches one typed request under supervision: injected faults fire
/// first (non-control requests only), then [`ServeState::handle_request`]
/// runs inside [`catch_unwind`]. A panic — injected or real — comes back
/// as `Err` with the panic message; the caller answers with
/// [`internal_error`] and respawns the state.
pub fn supervised_handle(
    state: &ServeState,
    request: &Request,
    faults: &FaultInjector,
) -> Result<Response, String> {
    catch_unwind(AssertUnwindSafe(|| {
        if !request.is_control() {
            faults.before_handle();
        }
        state.handle_request(request)
    }))
    .map_err(|payload| panic_message(payload.as_ref()))
}

/// The typed `internal` error a caught panic renders to the client. The
/// caller renders it with the request's echoed id, so a pipelining
/// client knows exactly which request died.
pub fn internal_error(cmd: &str, panic_msg: &str) -> Response {
    Response::Error {
        code: ErrorCode::Internal,
        error: format!(
            "'{cmd}' hit a server panic ({panic_msg}); the worker was respawned with a fresh \
             engine — the request may be retried"
        ),
    }
}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` payloads; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_core::Engine;
    use rip_tech::Technology;

    fn state() -> ServeState {
        ServeState::new(Engine::paper(Technology::generic_180nm()))
    }

    #[test]
    fn an_inactive_plan_never_counts_or_fires() {
        let faults = FaultInjector::disabled();
        for _ in 0..50 {
            faults.before_handle();
            assert_eq!(faults.drop_response(100), None);
        }
        assert_eq!(faults.injected_panics(), 0);
        assert_eq!(faults.injected_delays(), 0);
        assert_eq!(faults.injected_drops(), 0);
    }

    #[test]
    fn panics_are_caught_and_counted_exactly() {
        let state = state();
        let faults = FaultInjector::new(FaultPlan {
            panic_every: 3,
            ..FaultPlan::none()
        });
        let mut internal = 0;
        for _ in 0..9 {
            match supervised_handle(&state, &Request::Shutdown, &faults) {
                Ok(_) => {}
                Err(_) => internal += 1,
            }
        }
        // Shutdown is control-plane: never eligible, never panics.
        assert_eq!(internal, 0);
        let solve = Request::TauMin {
            net: rip_net::NetGenerator::suite(rip_net::RandomNetConfig::default(), 7, 1)
                .unwrap()
                .remove(0),
        };
        for k in 1..=9u64 {
            let result = supervised_handle(&state, &solve, &faults);
            if k % 3 == 0 {
                let msg = result.expect_err("every 3rd eligible request must panic");
                assert!(msg.contains("injected fault"), "{msg}");
            } else {
                assert!(result.is_ok(), "ordinal {k} should have survived");
            }
        }
        assert_eq!(faults.injected_panics(), 3);
        let error = internal_error("tau_min", "injected fault: panic #1");
        match &error {
            Response::Error { code, error } => {
                assert_eq!(*code, ErrorCode::Internal);
                assert!(error.contains("tau_min"), "{error}");
                assert!(error.contains("respawned"), "{error}");
            }
            other => panic!("expected an error, got {other:?}"),
        }
    }

    #[test]
    fn drop_points_are_deterministic_and_strictly_inside_the_text() {
        let plan = FaultPlan {
            drop_every: 4,
            seed: 99,
            ..FaultPlan::none()
        };
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let mut cuts = 0;
        for k in 1..=32u64 {
            let (cut_a, cut_b) = (a.drop_response(64), b.drop_response(64));
            assert_eq!(cut_a, cut_b, "drop schedule must be deterministic");
            if let Some(cut) = cut_a {
                assert!(k % 4 == 0);
                // Inside the JSON text: never offset 0 (nothing sent)
                // and never the full line or the newline boundary.
                assert!((1..=62).contains(&cut), "cut {cut} out of range");
                cuts += 1;
            }
        }
        assert_eq!(cuts, 8);
        assert_eq!(a.injected_drops(), 8);
        // Tiny lines are never cut (no room strictly inside).
        assert_eq!(a.drop_response(2), None);
    }

    #[test]
    fn disarming_stops_faults_without_clearing_tallies() {
        let faults = FaultInjector::new(FaultPlan {
            panic_every: 1,
            drop_every: 1,
            ..FaultPlan::none()
        });
        let state = state();
        let solve = Request::TauMin {
            net: rip_net::NetGenerator::suite(rip_net::RandomNetConfig::default(), 7, 1)
                .unwrap()
                .remove(0),
        };
        assert!(supervised_handle(&state, &solve, &faults).is_err());
        assert!(faults.drop_response(64).is_some());
        faults.set_armed(false);
        assert!(supervised_handle(&state, &solve, &faults).is_ok());
        assert_eq!(faults.drop_response(64), None);
        assert_eq!(faults.injected_panics(), 1);
        assert_eq!(faults.injected_drops(), 1);
    }
}
