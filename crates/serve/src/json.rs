//! A tiny std-only JSON value: parser, writer, and typed accessors.
//!
//! The workspace builds offline without serde, so the wire format layer
//! is hand-rolled — a recursive-descent parser over the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals)
//! and a writer whose `f64` rendering uses Rust's shortest round-trip
//! `Display`. That rendering is *exact*: two floats serialize to the
//! same text if and only if they are the same value, which is what lets
//! the service's byte-identity checks compare rendered responses
//! directly (see [`crate::loadgen`]).
//!
//! Object fields preserve insertion order on write, so a response
//! rendered twice from the same value is byte-identical.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a usize, if this is a non-negative integral
    /// number.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && (0.0..=(u32::MAX as f64)).contains(&n)).then_some(n as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            // JSON has no Inf/NaN; `null` is the conventional fallback.
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse failure: byte offset plus reason.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
///
/// # Examples
///
/// ```
/// use rip_serve::Json;
///
/// let v = rip_serve::parse_json(r#"{"cmd":"solve","id":7}"#).unwrap();
/// assert_eq!(v.get("cmd").unwrap().as_str(), Some("solve"));
/// assert_eq!(v.get("id").unwrap().as_f64(), Some(7.0));
/// // The writer is the exact inverse on round-trippable documents.
/// assert_eq!(v.to_string(), r#"{"cmd":"solve","id":7}"#);
/// ```
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth bound: a service must not let a hostile request
/// overflow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn fail(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.fail("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.fail(format!("unexpected character {:?}", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON encodes non-BMP
                            // characters as \uD8xx\uDCxx.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.fail("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.fail(format!("unknown escape \\{}", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so a char boundary always exists here).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.fail("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.fail("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(
            parse_json("[1, 2, [3]]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Arr(vec![Json::Num(3.0)])
            ])
        );
        let obj = parse_json(r#"{"a": 1, "b": {"c": [true, null]}}"#).unwrap();
        assert_eq!(obj.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            obj.get("b").unwrap().get("c").unwrap().as_arr().unwrap()[1],
            Json::Null
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ § 你好 \u{0001}";
        let rendered = Json::Str(original.to_string()).to_string();
        assert_eq!(parse_json(&rendered).unwrap().as_str(), Some(original));
        // Explicit escape forms parse too.
        assert_eq!(
            parse_json(r#""\u00e9\ud83d\ude00\/""#).unwrap().as_str(),
            Some("é😀/")
        );
    }

    #[test]
    fn f64_rendering_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.0] {
            let rendered = Json::Num(x).to_string();
            let back = parse_json(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} must round-trip exactly");
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
            "\"\\q\"",
            "\"\\ud800\"",
            "[1]]",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.reason.contains("deep"));
    }

    #[test]
    fn object_field_order_is_preserved_and_last_duplicate_wins() {
        let obj = parse_json(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        assert_eq!(obj.to_string(), r#"{"z":1,"a":2,"z":3}"#);
        assert_eq!(obj.get("z").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn typed_accessors_reject_mismatches() {
        let v = parse_json(r#"{"n": 3.5, "i": 4, "neg": -1}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), None);
        assert_eq!(v.get("i").unwrap().as_usize(), Some(4));
        assert_eq!(v.get("neg").unwrap().as_usize(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
