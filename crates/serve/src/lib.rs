//! # rip-serve — a resident, shardable solver service over [`Engine`]s
//!
//! The paper's pitch is that hybrid repeater insertion is cheap enough
//! to sit inside an optimization loop; this crate is the subsystem that
//! makes the reproduction *servable*: a std-only multi-threaded TCP
//! server speaking a newline-delimited JSON protocol, with every
//! request routed through long-lived [`Engine`] sessions so candidate
//! grids, fine windows, tree subdivisions, `τ_min` and synthesized
//! libraries amortize across requests and connections (LRU-bounded —
//! see [`Engine::set_cache_cap`] / [`Engine::set_value_cache_cap`] — so
//! memory stays flat on unbounded request streams). In **sharded** mode
//! ([`ServeConfig::shards`]) requests route by the engine's own cache
//! keys to N private engines behind bounded queues, so per-shard caches
//! stay hot and disjoint and the single shared-cache lock funnel
//! disappears; caching never changes results, so sharded responses stay
//! byte-identical to a single engine's.
//!
//! Layers, bottom up:
//!
//! * [`json`] — a tiny JSON value (parser + exact-`f64` writer; the
//!   workspace builds offline without serde);
//! * [`protocol`] — the typed request API: every line parses into a
//!   [`Request`], dispatch is a match over it, every answer is a
//!   [`Response`] rendered in exactly one place (`solve`, `solve_tree`,
//!   `batch`/`compare` with binding blocked-node masks and per-entry
//!   `allowed` overrides, `tau_min`, `hello`, `stats`, `reset_stats`,
//!   `shutdown` over a [`ServeState`]);
//! * [`fault`] — supervision (`catch_unwind` → typed `internal` error +
//!   engine respawn) and the seeded deterministic fault-injection plan
//!   behind the chaos suite;
//! * [`shard`] — the engine-worker pool: cache-key routing, fan-out
//!   with input-ordered reassembly, bounded queues with typed
//!   `backpressure` overflow, supervised workers;
//! * [`server`] — the edge: connection workers, `--bind`/`--max-conns`
//!   with typed `busy` rejection, per-connection timeouts, graceful
//!   drain (`drain` → typed `shutting_down` rejections → clean stop);
//! * [`client`] — a blocking line client with an optional
//!   [`RetryPolicy`] (capped exponential backoff, deterministic
//!   jitter) for transient `busy`/`backpressure`/`timeout`/`internal`
//!   errors and connection resets;
//! * [`loadgen`] — deterministic concurrent load with **byte-identity**
//!   verification against an in-process reference engine (the service
//!   analogue of the DP frozen-reference equivalence suites; the
//!   `bench_serve` binary builds `BENCH_serve.json` from it).
//!
//! ```
//! use rip_core::Engine;
//! use rip_serve::{start_server, Client, Json, ServeConfig};
//! use rip_tech::Technology;
//!
//! let config = ServeConfig { workers: 2, ..ServeConfig::default() };
//! let server = start_server(Engine::paper(Technology::generic_180nm()), &config).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let response = client
//!     .request_line(r#"{"id":1,"cmd":"solve","net":{"segments":[[3000,0.08,0.2]]},"target_mult":1.5}"#)
//!     .unwrap();
//! let value = rip_serve::parse_json(&response).unwrap();
//! assert_eq!(value.get("ok"), Some(&Json::Bool(true)));
//! client.send_line(r#"{"cmd":"shutdown"}"#).unwrap();
//! server.join();
//! ```
//!
//! [`Engine`]: rip_core::Engine
//! [`Engine::set_cache_cap`]: rip_core::Engine::set_cache_cap
//! [`Engine::set_value_cache_cap`]: rip_core::Engine::set_value_cache_cap

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod fault;
pub mod json;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{Client, RetryPolicy};
pub use fault::{FaultInjector, FaultPlan};
pub use json::{parse_json, Json, JsonError};
pub use loadgen::{
    connection_script, fire_load, net_pool, prepare_load, run_loadgen, tree_pool, LoadgenConfig,
    LoadgenOutcome, PreparedLoad, ScriptedRequest,
};
pub use protocol::{
    net_from_json, net_to_json, parse_line, tree_from_json, tree_to_json, ErrorCode, Request,
    RequestError, Response, ServeState, ServerInfo, Target, TreeEntry, COMMANDS, PROTO_VERSION,
};
pub use server::{start_server, ServeConfig, ServerHandle, ServerMonitor};
pub use shard::{ShardPool, ShardSnapshot};
