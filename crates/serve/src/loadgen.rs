//! Deterministic load generation for the service: N concurrent
//! connections each firing a fixed, seeded mix of `solve` / `batch` /
//! `tau_min` / `stats` requests, with every deterministic response
//! checked **byte-identical** against an in-process reference
//! [`ServeState`] running the same engine configuration.
//!
//! The identity check is the service analogue of the DP engines'
//! frozen-reference equivalence suites: serving must never change an
//! answer, no matter how warm the caches are or how many connections
//! interleave. `stats` responses are inherently racy (they read live
//! counters) and are only checked for `ok: true`.
//!
//! The expected responses are rendered *before* the timed phase, so a
//! benchmark run measures server throughput, not reference-engine
//! throughput.

use crate::client::{Client, RetryPolicy};
use crate::json::{parse_json, Json};
use crate::protocol::{net_to_json, tree_to_json, ServeState};
use rip_net::{
    NetGenerator, RandomNetConfig, RandomTreeConfig, TreeNet, TreeNetGenerator, TwoPinNet,
};
use rip_obs::Histogram;
use std::io;
use std::net::SocketAddr;
use std::time::Instant;

/// Workload shape of one loadgen run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Requests sent per connection.
    pub requests_per_conn: usize,
    /// Distinct nets in the request pool (requests cycle through them,
    /// so smaller pools produce warmer caches).
    pub nets: usize,
    /// Distinct masked trees in the request pool
    /// ([`RandomTreeConfig::compact`], so every topology carries a
    /// forbidden run and solves fast). `0` — the default, and what the
    /// serve benchmark uses — disables `solve_tree` requests and leaves
    /// the classic chain-only mix byte-for-byte unchanged.
    pub trees: usize,
    /// Net-suite seed (the tree pool derives its own seed from this).
    pub seed: u64,
    /// Relative timing target sent with every solve.
    pub target_mult: f64,
    /// Retry policy attached to every loadgen connection
    /// ([`RetryPolicy::none`] by default; the chaos suite turns it on
    /// to prove convergence under injected faults).
    pub retry: RetryPolicy,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests_per_conn: 32,
            nets: 12,
            trees: 0,
            seed: 2005,
            target_mult: 1.4,
            retry: RetryPolicy::none(),
        }
    }
}

/// Result of one loadgen run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenOutcome {
    /// Requests sent (across all connections).
    pub requests: usize,
    /// Responses that failed (`ok: false`, unparseable, or transport
    /// errors surfaced as mismatching lines).
    pub errors: usize,
    /// Deterministic responses whose bytes differed from the reference.
    pub mismatches: usize,
    /// Deterministic responses that were byte-checked.
    pub verified: usize,
    /// Failed responses whose typed code was `internal` (caught server
    /// panics) — the chaos suite's capacity-recovery gate demands this
    /// reaches zero on a post-fault round.
    pub internal_errors: usize,
    /// Request attempts across every connection, including retries.
    pub attempts: u64,
    /// Retries across every connection.
    pub retries: u64,
    /// Requests that exhausted their retries.
    pub gave_up: u64,
    /// Wall-clock of the timed phase, nanoseconds.
    pub elapsed_ns: u128,
    /// Median per-request latency, nanoseconds (log2-bucket upper
    /// bound: for an exact quantile `x`, the reported value `e`
    /// satisfies `x ≤ e < 2·x`; see [`rip_obs::HistogramSnapshot`]).
    pub p50_ns: u64,
    /// 95th-percentile per-request latency, nanoseconds (same bucket
    /// semantics).
    pub p95_ns: u64,
    /// 99th-percentile per-request latency, nanoseconds (same bucket
    /// semantics).
    pub p99_ns: u64,
}

impl LoadgenOutcome {
    /// Requests per second over the timed phase.
    pub fn requests_per_s(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns as f64 * 1e-9)
    }

    /// `true` when every byte-checked response matched the reference
    /// and nothing errored.
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.mismatches == 0
    }
}

/// One scripted request: the raw line plus whether its response is
/// deterministic (and therefore byte-checked against the reference).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedRequest {
    /// The request line (one JSON document, no newline).
    pub line: String,
    /// Whether the response is deterministic given the engine
    /// configuration (everything except `stats`).
    pub deterministic: bool,
}

/// Builds the deterministic request script of one connection.
///
/// The mix cycles solves over the net pool with periodic `tau_min`,
/// 3-net `batch` and `stats` requests mixed in — connections start at
/// different pool offsets so concurrent connections hit overlapping
/// but not identical sequences. With a non-empty tree pool, every
/// eighth request is a masked `solve_tree` (the generated trees carry
/// forbidden runs), alternating between the tree's own `blocked` flags
/// and an equivalent explicit `allowed` override so both request
/// spellings stay covered.
pub fn connection_script(
    connection: usize,
    nets: &[TwoPinNet],
    trees: &[TreeNet],
    config: &LoadgenConfig,
) -> Vec<ScriptedRequest> {
    (0..config.requests_per_conn)
        .map(|k| {
            let id = (connection * 100_000 + k) as u64;
            let pick = |offset: usize| &nets[(connection + k + offset) % nets.len()];
            match k % 8 {
                1 if !trees.is_empty() => {
                    // Cycle by the tree-request ordinal (k / 8), not k
                    // itself: k is always ≡ 1 (mod 8) in this arm, so
                    // indexing by k would stick pool sizes sharing a
                    // factor with 8 on one entry per connection.
                    let tree = &trees[(connection + k / 8) % trees.len()];
                    let mut fields = vec![
                        ("id", Json::from(id)),
                        ("cmd", Json::from("solve_tree")),
                        ("tree", tree_to_json(tree)),
                        ("target_mult", Json::Num(config.target_mult)),
                    ];
                    // Odd rounds spell the mask as an explicit override
                    // (same bits — the responses must not care).
                    if (k / 8) % 2 == 1 {
                        fields.push((
                            "allowed",
                            Json::Arr(tree.allowed_mask().into_iter().map(Json::Bool).collect()),
                        ));
                    }
                    ScriptedRequest {
                        line: Json::obj(fields).to_string(),
                        deterministic: true,
                    }
                }
                5 => ScriptedRequest {
                    line: Json::obj([("id", Json::from(id)), ("cmd", Json::from("stats"))])
                        .to_string(),
                    deterministic: false,
                },
                7 => ScriptedRequest {
                    line: Json::obj([
                        ("id", Json::from(id)),
                        ("cmd", Json::from("tau_min")),
                        ("net", net_to_json(pick(0))),
                    ])
                    .to_string(),
                    deterministic: true,
                },
                3 => ScriptedRequest {
                    line: Json::obj([
                        ("id", Json::from(id)),
                        ("cmd", Json::from("batch")),
                        (
                            "nets",
                            Json::Arr(vec![
                                net_to_json(pick(0)),
                                net_to_json(pick(1)),
                                net_to_json(pick(2)),
                            ]),
                        ),
                        ("target_mult", Json::Num(config.target_mult)),
                    ])
                    .to_string(),
                    deterministic: true,
                },
                _ => ScriptedRequest {
                    line: Json::obj([
                        ("id", Json::from(id)),
                        ("cmd", Json::from("solve")),
                        ("net", net_to_json(pick(0))),
                        ("target_mult", Json::Num(config.target_mult)),
                    ])
                    .to_string(),
                    deterministic: true,
                },
            }
        })
        .collect()
}

/// The deterministic net pool of a loadgen configuration.
///
/// # Panics
///
/// Panics when `config.nets` is 0 (an empty pool cannot script
/// requests).
pub fn net_pool(config: &LoadgenConfig) -> Vec<TwoPinNet> {
    assert!(config.nets > 0, "the loadgen needs at least one net");
    NetGenerator::suite(RandomNetConfig::default(), config.seed, config.nets)
        .expect("the default net distribution is valid")
}

/// The deterministic masked-tree pool of a loadgen configuration
/// (empty when `config.trees` is 0 — the chain-only mix).
pub fn tree_pool(config: &LoadgenConfig) -> Vec<TreeNet> {
    TreeNetGenerator::suite(
        RandomTreeConfig::compact(),
        config.seed.wrapping_add(1),
        config.trees,
    )
    .expect("the compact tree distribution is valid")
}

/// A fully prepared load: per-connection request scripts plus the
/// pre-rendered expected response of every deterministic request.
///
/// Preparing once and firing many times ([`fire_load`]) is how the
/// serve bench repeats identical timed runs without re-driving the
/// reference engine before each one — the scripts and their answers do
/// not change between runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedLoad {
    /// One request script per connection.
    pub scripts: Vec<Vec<ScriptedRequest>>,
    /// Per-script expected response lines (`None` for unverified
    /// requests, i.e. non-deterministic ones or when no reference was
    /// given).
    pub expected: Vec<Vec<Option<String>>>,
    /// The retry policy every firing connection runs with (each
    /// connection derives its own jitter seed from it).
    pub retry: RetryPolicy,
}

/// Builds the scripts for `config` and renders the expected responses
/// through `reference` (a [`ServeState`] over an
/// identically-configured engine; pass `None` to skip verification,
/// e.g. for smoke tests against a remote server).
pub fn prepare_load(reference: Option<&ServeState>, config: &LoadgenConfig) -> PreparedLoad {
    let nets = net_pool(config);
    let trees = tree_pool(config);
    let scripts: Vec<Vec<ScriptedRequest>> = (0..config.connections.max(1))
        .map(|c| connection_script(c, &nets, &trees, config))
        .collect();
    let expected: Vec<Vec<Option<String>>> = scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|req| {
                    reference
                        .filter(|_| req.deterministic)
                        .map(|r| r.handle_line(&req.line).0.to_string())
                })
                .collect()
        })
        .collect();
    PreparedLoad {
        scripts,
        expected,
        retry: config.retry,
    }
}

/// Convenience wrapper: [`prepare_load`] + one [`fire_load`] pass.
///
/// # Errors
///
/// Returns the first transport-level error (connect/read/write); a
/// response-level failure is counted in
/// [`LoadgenOutcome::errors`] instead.
pub fn run_loadgen(
    addr: SocketAddr,
    reference: Option<&ServeState>,
    config: &LoadgenConfig,
) -> io::Result<LoadgenOutcome> {
    fire_load(addr, &prepare_load(reference, config))
}

/// Fires a prepared load once: opens one connection per script,
/// sends every request, and byte-checks the responses that carry an
/// expectation. Only the firing is timed.
///
/// # Errors
///
/// Returns the first transport-level error (connect/read/write); a
/// response-level failure is counted in
/// [`LoadgenOutcome::errors`] instead.
pub fn fire_load(addr: SocketAddr, load: &PreparedLoad) -> io::Result<LoadgenOutcome> {
    let PreparedLoad {
        scripts,
        expected,
        retry,
    } = load;
    /// What one connection thread tallies.
    #[derive(Default)]
    struct ConnTally {
        errors: usize,
        mismatches: usize,
        verified: usize,
        internal_errors: usize,
        attempts: u64,
        retries: u64,
        gave_up: u64,
    }
    // Per-request round-trip latencies, observed concurrently by every
    // connection thread (the histogram is atomic).
    let latency = Histogram::new();
    let t0 = Instant::now();
    let results: Vec<io::Result<ConnTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .zip(expected)
            .enumerate()
            .map(|(i, (script, expected))| {
                let latency = &latency;
                scope.spawn(move || -> io::Result<ConnTally> {
                    // Per-connection jitter seed: identical policies on
                    // every thread must not back off in lockstep.
                    let mut policy = *retry;
                    policy.seed ^= (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut client = Client::connect(addr)?.with_retry(policy);
                    let mut tally = ConnTally::default();
                    for (req, expect) in script.iter().zip(expected) {
                        let t_req = Instant::now();
                        let response = client.request_line(&req.line)?;
                        latency.observe_since(t_req);
                        let parsed = parse_json(&response).ok();
                        let ok = parsed
                            .as_ref()
                            .and_then(|v| v.get("ok").and_then(Json::as_bool))
                            .unwrap_or(false);
                        if !ok {
                            tally.errors += 1;
                            if parsed.as_ref().and_then(|v| v.get("code"))
                                == Some(&Json::Str("internal".to_string()))
                            {
                                tally.internal_errors += 1;
                            }
                        }
                        if let Some(expect) = expect {
                            tally.verified += 1;
                            if &response != expect {
                                tally.mismatches += 1;
                            }
                        }
                    }
                    tally.attempts = client.attempts();
                    tally.retries = client.retries();
                    tally.gave_up = client.gave_up();
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection threads do not panic"))
            .collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos();

    let mut outcome = LoadgenOutcome {
        requests: 0,
        errors: 0,
        mismatches: 0,
        verified: 0,
        internal_errors: 0,
        attempts: 0,
        retries: 0,
        gave_up: 0,
        elapsed_ns: elapsed_ns.max(1),
        p50_ns: latency.quantile(0.50),
        p95_ns: latency.quantile(0.95),
        p99_ns: latency.quantile(0.99),
    };
    for (result, script) in results.into_iter().zip(scripts) {
        let tally = result?;
        outcome.requests += script.len();
        outcome.errors += tally.errors;
        outcome.mismatches += tally.mismatches;
        outcome.verified += tally.verified;
        outcome.internal_errors += tally.internal_errors;
        outcome.attempts += tally.attempts;
        outcome.retries += tally.retries;
        outcome.gave_up += tally.gave_up;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_and_mixed() {
        let config = LoadgenConfig::default();
        let nets = net_pool(&config);
        let trees = tree_pool(&config);
        assert!(trees.is_empty(), "the default mix stays chain-only");
        let a = connection_script(0, &nets, &trees, &config);
        let b = connection_script(0, &nets, &trees, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), config.requests_per_conn);
        let stats = a.iter().filter(|r| r.line.contains("\"stats\"")).count();
        let batches = a.iter().filter(|r| r.line.contains("\"batch\"")).count();
        let taus = a.iter().filter(|r| r.line.contains("\"tau_min\"")).count();
        assert!(stats > 0 && batches > 0 && taus > 0, "mix covers commands");
        assert!(a.iter().filter(|r| r.line.contains("\"solve\"")).count() > stats);
        assert!(
            !a.iter().any(|r| r.line.contains("solve_tree")),
            "an empty tree pool must leave the classic mix untouched"
        );
        // Different connections script different sequences.
        assert_ne!(a, connection_script(1, &nets, &trees, &config));
        // stats is the only non-deterministic request.
        for req in &a {
            assert_eq!(req.deterministic, !req.line.contains("\"stats\""));
        }
    }

    #[test]
    fn tree_mix_scripts_masked_solves_in_both_spellings() {
        let config = LoadgenConfig {
            trees: 2,
            ..LoadgenConfig::default()
        };
        let nets = net_pool(&config);
        let trees = tree_pool(&config);
        assert_eq!(trees.len(), 2);
        assert!(
            trees.iter().any(|t| t.allowed_mask().iter().any(|ok| !ok)),
            "the compact pool must carry real masks"
        );
        let script = connection_script(0, &nets, &trees, &config);
        let tree_reqs: Vec<_> = script
            .iter()
            .filter(|r| r.line.contains("solve_tree"))
            .collect();
        assert_eq!(tree_reqs.len(), config.requests_per_conn / 8);
        assert!(tree_reqs.iter().all(|r| r.deterministic));
        // Both spellings of the mask appear: blocked flags only, and
        // the explicit `allowed` override.
        assert!(tree_reqs.iter().any(|r| r.line.contains("\"allowed\"")));
        assert!(tree_reqs.iter().any(|r| !r.line.contains("\"allowed\"")));
        // The non-tree arms are untouched relative to the chain mix.
        let chain_only = connection_script(0, &nets, &[], &config);
        for (with_trees, chains) in script.iter().zip(&chain_only) {
            if !with_trees.line.contains("solve_tree") {
                assert_eq!(with_trees, chains);
            }
        }
    }
}
