//! The service protocol: newline-delimited JSON requests routed through
//! one shared [`Engine`].
//!
//! One request per line, one response per line. Every request is a JSON
//! object with a `cmd` field and an optional `id` (echoed back
//! verbatim, so clients can pipeline). Nets and trees travel as
//! structured JSON — the service layer deliberately does not depend on
//! the CLI's `.net`/`.tree` text formats:
//!
//! ```text
//! NET  = {"driver":140,"receiver":60,"segments":[[len_um,r,c],...],"zones":[[s,e],...]}
//! TREE = {"driver":120,"nodes":[[parent,r,c,len_um,sink_w|null,blocked],...]}
//! ```
//!
//! (`driver`/`receiver`/`zones` are optional; `nodes` excludes the
//! implicit root 0 and appends nodes 1, 2, ... in order, parents before
//! children.) A tree node's `blocked` flag is **binding**: the hybrid
//! tree pipeline never places a buffer on a blocked node, and
//! `target_mult` resolves against the *masked* tree `τ_min`. A
//! `solve_tree` request may also carry an optional `allowed` field — an
//! array of booleans with one entry per node *including* the root
//! (index-aligned with the tree; the root entry is ignored) — which
//! overrides the per-node `blocked` flags for that request, so clients
//! can sweep masks without re-encoding the tree. Exactly one of
//! `target_fs`, `target_ns` or `target_mult` selects the timing
//! target; `target_mult` multiplies the net's cached `τ_min`.
//!
//! `id` may be any JSON value and is echoed back. Note that JSON
//! numbers travel as `f64`, so integral numeric ids beyond 2^53 lose
//! precision on the echo — clients needing wider ids should send them
//! as strings.
//!
//! | `cmd`        | request fields                | response fields                   |
//! |--------------|-------------------------------|-----------------------------------|
//! | `solve`      | `net`, target                 | `target_fs`, `delay_fs`, `total_width`, `repeaters: [[x_um, w_u], ...]` |
//! | `solve_tree` | `tree`, target, opt. `allowed`| `target_fs`, `delay_fs`, `total_width`, `buffers: [[node, w_u], ...]` |
//! | `batch`      | `nets`, target                | `results: [per-net solve result or error, ...]` |
//! | `compare`    | `nets`, target, `granularity` | `rows: [[base_w|null, rip_w], ...]`, savings summary |
//! | `tau_min`    | `net`                         | `tau_min_fs`                      |
//! | `stats`      | —                             | engine + server counters          |
//! | `reset_stats`| —                             | the pre-reset counters, `reset: true`; counters rezero |
//! | `shutdown`   | —                             | `stopping: true`, then the server drains |
//!
//! Every response carries `ok` (and `error` when `ok` is `false`).
//! Responses are rendered deterministically — same request, same
//! engine configuration, same bytes — which is what the loadgen's
//! byte-identity check relies on ([`crate::loadgen`]).

use crate::json::{parse_json, Json};
use rip_core::{BaselineConfig, BatchTarget, Engine, TreeRipConfig};
use rip_delay::RcTree;
use rip_net::{NetBuilder, Segment, TreeNet, TreeNetNode, TwoPinNet};
use rip_tech::units::fs_from_ns;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared state of a running service: the long-lived [`Engine`] plus
/// server-level counters. One instance is shared by every worker
/// thread; [`ServeState::handle_line`] is the whole request router, so
/// tests and the load generator can drive it without a socket.
#[derive(Debug)]
pub struct ServeState {
    engine: Engine,
    tree_config: TreeRipConfig,
    requests: AtomicU64,
    connections: AtomicU64,
    stop: AtomicBool,
}

impl ServeState {
    /// Wraps an engine session for serving.
    pub fn new(engine: Engine) -> Self {
        Self {
            engine,
            tree_config: TreeRipConfig::paper(),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The shared engine session.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Requests handled so far (all commands, including malformed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Counts one accepted connection (called by the server loop).
    pub fn count_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Asks every worker to drain and stop.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// `true` once a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Handles one request line: parses, routes, and renders the
    /// response. The second return is `true` when the request asks the
    /// server to shut down (the caller responds first, then stops).
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let request = match parse_json(line) {
            Ok(request) => request,
            Err(e) => return (error_response(&Json::Null, e.to_string()), false),
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let cmd = match request.get("cmd").and_then(Json::as_str) {
            Some(cmd) => cmd,
            None => return (error_response(&id, "request needs a string 'cmd'"), false),
        };
        let result = match cmd {
            "solve" => self.cmd_solve(&request),
            "solve_tree" => self.cmd_solve_tree(&request),
            "batch" => self.cmd_batch(&request),
            "compare" => self.cmd_compare(&request),
            "tau_min" => self.cmd_tau_min(&request),
            "stats" => Ok(self.cmd_stats()),
            "reset_stats" => Ok(self.cmd_reset_stats()),
            "shutdown" => Ok(vec![("stopping", Json::Bool(true))]),
            other => Err(format!("unknown cmd {other:?}")),
        };
        let response = match result {
            Ok(fields) => {
                let mut all = vec![("id".to_string(), id), ("ok".to_string(), Json::Bool(true))];
                all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
                Json::Obj(all)
            }
            Err(reason) => error_response(&id, reason),
        };
        (response, cmd == "shutdown")
    }

    fn cmd_solve(&self, request: &Json) -> Result<Vec<(&'static str, Json)>, String> {
        let net = net_from_json(request.get("net").ok_or("solve needs a 'net'")?)?;
        let target_fs = self.resolve_target(request, &net)?;
        let outcome = self
            .engine
            .solve(&net, target_fs)
            .map_err(|e| e.to_string())?;
        Ok(solve_fields(target_fs, &outcome.solution))
    }

    fn cmd_tau_min(&self, request: &Json) -> Result<Vec<(&'static str, Json)>, String> {
        let net = net_from_json(request.get("net").ok_or("tau_min needs a 'net'")?)?;
        Ok(vec![("tau_min_fs", Json::Num(self.engine.tau_min(&net)))])
    }

    fn cmd_solve_tree(&self, request: &Json) -> Result<Vec<(&'static str, Json)>, String> {
        let tree_net = tree_from_json(request.get("tree").ok_or("solve_tree needs a 'tree'")?)?;
        // The buffer-legality mask is binding: the tree's own `blocked`
        // flags by default, overridden by an explicit `allowed` array
        // (one boolean per node including the root; the root entry is
        // ignored). An all-true mask normalizes away inside the engine,
        // so unblocked trees answer byte-identically to the pre-mask
        // protocol.
        let allowed = match request.get("allowed") {
            None => tree_net.allowed_mask(),
            Some(value) => {
                let items = value
                    .as_arr()
                    .ok_or("'allowed' must be an array of booleans")?;
                if items.len() != tree_net.len() {
                    return Err(format!(
                        "'allowed' needs one entry per node including the root \
                         (expected {}, got {})",
                        tree_net.len(),
                        items.len()
                    ));
                }
                items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        item.as_bool()
                            .ok_or_else(|| format!("allowed[{i}] must be a boolean"))
                    })
                    .collect::<Result<Vec<bool>, String>>()?
            }
        };
        let tree = RcTree::from_tree_net(&tree_net, self.engine.technology().device());
        let driver = tree_net.driver_width();
        let target_fs = match parse_target(request)? {
            Target::AbsoluteFs(fs) => fs,
            Target::TauMinMultiple(m) => {
                m * self
                    .engine
                    .tree_tau_min_masked(&tree, driver, &self.tree_config, Some(&allowed))
                    .map_err(|e| e.to_string())?
            }
        };
        let outcome = self
            .engine
            .solve_tree_masked(&tree, driver, target_fs, &self.tree_config, Some(&allowed))
            .map_err(|e| e.to_string())?;
        let buffers: Vec<Json> = outcome
            .solution
            .buffer_widths
            .iter()
            .enumerate()
            .filter_map(|(v, w)| w.map(|w| Json::Arr(vec![Json::Num(v as f64), Json::Num(w)])))
            .collect();
        Ok(vec![
            ("target_fs", Json::Num(target_fs)),
            ("delay_fs", Json::Num(outcome.solution.delay_fs)),
            ("total_width", Json::Num(outcome.solution.total_width)),
            ("buffers", Json::Arr(buffers)),
        ])
    }

    fn cmd_batch(&self, request: &Json) -> Result<Vec<(&'static str, Json)>, String> {
        let nets = nets_from_json(request.get("nets").ok_or("batch needs a 'nets' array")?)?;
        let target = batch_target(parse_target(request)?);
        let outcomes = self.engine.solve_batch(&nets, &target);
        let results: Vec<Json> = outcomes
            .iter()
            .zip(&nets)
            .map(|(outcome, net)| match outcome {
                Ok(out) => {
                    let target_fs = match &target {
                        BatchTarget::AbsoluteFs(fs) => *fs,
                        // Warm hit: τ_min was just computed in the batch.
                        BatchTarget::TauMinMultiple(m) => m * self.engine.tau_min(net),
                        // `batch_target` only builds the two above.
                        _ => unreachable!("not built here"),
                    };
                    let mut fields = vec![("ok".to_string(), Json::Bool(true))];
                    fields.extend(
                        solve_fields(target_fs, &out.solution)
                            .into_iter()
                            .map(|(k, v)| (k.to_string(), v)),
                    );
                    Json::Obj(fields)
                }
                Err(e) => Json::obj([
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(e.to_string())),
                ]),
            })
            .collect();
        Ok(vec![("results", Json::Arr(results))])
    }

    fn cmd_compare(&self, request: &Json) -> Result<Vec<(&'static str, Json)>, String> {
        let nets = nets_from_json(request.get("nets").ok_or("compare needs a 'nets' array")?)?;
        let target = batch_target(parse_target(request)?);
        let granularity = request
            .get("granularity")
            .and_then(Json::as_f64)
            .unwrap_or(20.0);
        if !(granularity.is_finite() && granularity > 0.0) {
            return Err("granularity must be positive".into());
        }
        let baseline = BaselineConfig::paper_table1(granularity);
        let (rows, summary) = self
            .engine
            .compare_batch(&nets, &target, &baseline)
            .map_err(|e| e.to_string())?;
        let rows: Vec<Json> = rows
            .iter()
            .map(|(base, rip)| {
                Json::Arr(vec![
                    base.map(Json::Num).unwrap_or(Json::Null),
                    Json::Num(*rip),
                ])
            })
            .collect();
        Ok(vec![
            ("rows", Json::Arr(rows)),
            ("max_percent", Json::Num(summary.max_percent)),
            ("mean_percent", Json::Num(summary.mean_percent)),
            (
                "baseline_violations",
                Json::from(summary.baseline_violations),
            ),
            ("compared", Json::from(summary.compared)),
        ])
    }

    fn cmd_stats(&self) -> Vec<(&'static str, Json)> {
        let stats = self.engine.stats();
        vec![
            ("requests", Json::from(self.requests())),
            ("connections", Json::from(self.connections())),
            ("nets_solved", Json::from(stats.nets_solved)),
            ("trees_solved", Json::from(stats.trees_solved)),
            ("hits", Json::from(stats.hits())),
            ("misses", Json::from(stats.misses())),
            ("hit_rate", Json::Num(stats.hit_rate())),
            ("promotions", Json::from(stats.promotions)),
            ("evictions", Json::from(stats.evictions)),
            ("cache_cap", Json::from(self.engine.cache_cap())),
            ("value_cache_cap", Json::from(self.engine.value_cache_cap())),
        ]
    }

    /// `reset_stats`: renders the same counters as `stats` (the
    /// pre-reset values, including this very request), then rezeroes
    /// the engine's statistics and the server's request/connection
    /// counters. Cache *contents* are untouched — only the monitoring
    /// counters restart, which is what long-lived dashboards want at
    /// the start of a measurement window.
    fn cmd_reset_stats(&self) -> Vec<(&'static str, Json)> {
        let mut fields = self.cmd_stats();
        fields.push(("reset", Json::Bool(true)));
        self.engine.reset_stats();
        self.requests.store(0, Ordering::Relaxed);
        self.connections.store(0, Ordering::Relaxed);
        fields
    }

    fn resolve_target(&self, request: &Json, net: &TwoPinNet) -> Result<f64, String> {
        Ok(match parse_target(request)? {
            Target::AbsoluteFs(fs) => fs,
            Target::TauMinMultiple(m) => m * self.engine.tau_min(net),
        })
    }
}

/// A request-level timing target (resolved against the engine's cached
/// `τ_min` when relative).
enum Target {
    AbsoluteFs(f64),
    TauMinMultiple(f64),
}

fn batch_target(target: Target) -> BatchTarget {
    match target {
        Target::AbsoluteFs(fs) => BatchTarget::AbsoluteFs(fs),
        Target::TauMinMultiple(m) => BatchTarget::TauMinMultiple(m),
    }
}

fn parse_target(request: &Json) -> Result<Target, String> {
    let fs = request.get("target_fs").and_then(Json::as_f64);
    let ns = request.get("target_ns").and_then(Json::as_f64);
    let mult = request.get("target_mult").and_then(Json::as_f64);
    let target = match (fs, ns, mult) {
        (Some(fs), None, None) => Target::AbsoluteFs(fs),
        (None, Some(ns), None) => Target::AbsoluteFs(fs_from_ns(ns)),
        (None, None, Some(m)) => Target::TauMinMultiple(m),
        (None, None, None) => {
            return Err("one of target_fs / target_ns / target_mult is required".into())
        }
        _ => return Err("target_fs / target_ns / target_mult are mutually exclusive".into()),
    };
    let value = match &target {
        Target::AbsoluteFs(v) | Target::TauMinMultiple(v) => *v,
    };
    if !(value.is_finite() && value > 0.0) {
        return Err("the timing target must be positive and finite".into());
    }
    Ok(target)
}

fn error_response(id: &Json, reason: impl Into<String>) -> Json {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(reason.into())),
    ])
}

fn solve_fields(
    target_fs: f64,
    solution: &rip_core::prelude::DpSolution,
) -> Vec<(&'static str, Json)> {
    let repeaters: Vec<Json> = solution
        .assignment
        .repeaters()
        .iter()
        .map(|r| Json::Arr(vec![Json::Num(r.position), Json::Num(r.width)]))
        .collect();
    vec![
        ("target_fs", Json::Num(target_fs)),
        ("delay_fs", Json::Num(solution.delay_fs)),
        ("total_width", Json::Num(solution.total_width)),
        ("repeaters", Json::Arr(repeaters)),
    ]
}

/// Decodes a structured JSON net (see the module docs for the schema).
///
/// # Errors
///
/// Returns a human-readable reason when the shape or the net itself is
/// invalid.
pub fn net_from_json(value: &Json) -> Result<TwoPinNet, String> {
    let mut builder = NetBuilder::new();
    if let Some(d) = value.get("driver") {
        builder = builder.driver_width(d.as_f64().ok_or("driver must be a number")?);
    }
    if let Some(r) = value.get("receiver") {
        builder = builder.receiver_width(r.as_f64().ok_or("receiver must be a number")?);
    }
    let segments = value
        .get("segments")
        .and_then(Json::as_arr)
        .ok_or("net needs a 'segments' array")?;
    for (i, segment) in segments.iter().enumerate() {
        let nums = fixed_numbers::<3>(segment)
            .ok_or_else(|| format!("segment {i} must be [length_um, r_per_um, c_per_um]"))?;
        builder = builder.segment(Segment::new(nums[0], nums[1], nums[2]));
    }
    if let Some(zones) = value.get("zones") {
        let zones = zones.as_arr().ok_or("zones must be an array")?;
        for (i, zone) in zones.iter().enumerate() {
            let nums = fixed_numbers::<2>(zone)
                .ok_or_else(|| format!("zone {i} must be [start_um, end_um]"))?;
            builder = builder
                .forbidden_zone(nums[0], nums[1])
                .map_err(|e| e.to_string())?;
        }
    }
    builder.build().map_err(|e| e.to_string())
}

/// Encodes a net into the protocol's structured JSON (inverse of
/// [`net_from_json`]).
pub fn net_to_json(net: &TwoPinNet) -> Json {
    let segments: Vec<Json> = net
        .segments()
        .iter()
        .map(|s| {
            Json::Arr(vec![
                Json::Num(s.length_um()),
                Json::Num(s.r_per_um()),
                Json::Num(s.c_per_um()),
            ])
        })
        .collect();
    let zones: Vec<Json> = net
        .zones()
        .iter()
        .map(|z| Json::Arr(vec![Json::Num(z.start()), Json::Num(z.end())]))
        .collect();
    Json::obj([
        ("driver", Json::Num(net.driver_width())),
        ("receiver", Json::Num(net.receiver_width())),
        ("segments", Json::Arr(segments)),
        ("zones", Json::Arr(zones)),
    ])
}

/// Decodes a structured JSON tree (see the module docs for the schema).
///
/// # Errors
///
/// Returns a human-readable reason when the shape or the tree itself is
/// invalid.
pub fn tree_from_json(value: &Json) -> Result<TreeNet, String> {
    let driver = value
        .get("driver")
        .and_then(Json::as_f64)
        .ok_or("tree needs a numeric 'driver'")?;
    let entries = value
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or("tree needs a 'nodes' array")?;
    let mut nodes = vec![TreeNetNode {
        parent: None,
        r_per_um: 0.0,
        c_per_um: 0.0,
        length_um: 0.0,
        sink_width: None,
        buffer_ok: true,
    }];
    for (i, entry) in entries.iter().enumerate() {
        let fields = entry.as_arr().filter(|f| f.len() == 6).ok_or_else(|| {
            format!(
                "node {i} must be [parent, r_per_um, c_per_um, length_um, sink_w|null, blocked]"
            )
        })?;
        let parent = fields[0]
            .as_usize()
            .ok_or_else(|| format!("node {i}: parent must be a node index"))?;
        let num = |j: usize, what: &str| {
            fields[j]
                .as_f64()
                .ok_or_else(|| format!("node {i}: {what} must be a number"))
        };
        let sink_width = match &fields[4] {
            Json::Null => None,
            w => Some(
                w.as_f64()
                    .ok_or_else(|| format!("node {i}: sink width must be a number or null"))?,
            ),
        };
        let blocked = fields[5]
            .as_bool()
            .ok_or_else(|| format!("node {i}: blocked must be a boolean"))?;
        nodes.push(TreeNetNode {
            parent: Some(parent),
            r_per_um: num(1, "r_per_um")?,
            c_per_um: num(2, "c_per_um")?,
            length_um: num(3, "length_um")?,
            sink_width,
            buffer_ok: !blocked,
        });
    }
    TreeNet::from_nodes(nodes, driver).map_err(|e| e.to_string())
}

/// Encodes a tree into the protocol's structured JSON (inverse of
/// [`tree_from_json`]).
pub fn tree_to_json(tree: &TreeNet) -> Json {
    let nodes: Vec<Json> = tree
        .nodes()
        .iter()
        .skip(1)
        .map(|n| {
            Json::Arr(vec![
                Json::Num(n.parent.expect("non-root") as f64),
                Json::Num(n.r_per_um),
                Json::Num(n.c_per_um),
                Json::Num(n.length_um),
                n.sink_width.map(Json::Num).unwrap_or(Json::Null),
                Json::Bool(!n.buffer_ok),
            ])
        })
        .collect();
    Json::obj([
        ("driver", Json::Num(tree.driver_width())),
        ("nodes", Json::Arr(nodes)),
    ])
}

fn nets_from_json(value: &Json) -> Result<Vec<TwoPinNet>, String> {
    let items = value.as_arr().ok_or("'nets' must be an array")?;
    if items.is_empty() {
        return Err("'nets' must not be empty".into());
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| net_from_json(item).map_err(|e| format!("net {i}: {e}")))
        .collect()
}

fn fixed_numbers<const N: usize>(value: &Json) -> Option<[f64; N]> {
    let items = value.as_arr()?;
    if items.len() != N {
        return None;
    }
    let mut out = [0.0; N];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_f64()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_net::{NetGenerator, RandomNetConfig, RandomTreeConfig, TreeNetGenerator};
    use rip_tech::Technology;

    fn state() -> ServeState {
        ServeState::new(Engine::paper(Technology::generic_180nm()))
    }

    fn request(line: &str) -> (Json, bool) {
        state().handle_line(line)
    }

    #[test]
    fn net_json_round_trips() {
        for net in NetGenerator::suite(RandomNetConfig::default(), 7, 5).unwrap() {
            let encoded = net_to_json(&net).to_string();
            let back = net_from_json(&parse_json(&encoded).unwrap()).unwrap();
            assert_eq!(net, back, "net JSON encode/decode must be lossless");
        }
    }

    #[test]
    fn tree_json_round_trips() {
        for tree in TreeNetGenerator::suite(RandomTreeConfig::default(), 7, 5).unwrap() {
            let encoded = tree_to_json(&tree).to_string();
            let back = tree_from_json(&parse_json(&encoded).unwrap()).unwrap();
            assert_eq!(tree, back, "tree JSON encode/decode must be lossless");
        }
    }

    #[test]
    fn solve_matches_the_engine_and_is_deterministic() {
        let state = state();
        let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
            .unwrap()
            .remove(0);
        let line = format!(
            r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
            net_to_json(&net)
        );
        let (a, stop) = state.handle_line(&line);
        assert!(!stop);
        assert_eq!(a.get("ok"), Some(&Json::Bool(true)));
        // Byte-identical on repeat (same engine, warm cache).
        let (b, _) = state.handle_line(&line);
        assert_eq!(a.to_string(), b.to_string());
        // And equal to the in-process engine answer.
        let expected = state
            .engine()
            .solve(&net, 1.4 * state.engine().tau_min(&net))
            .unwrap();
        assert_eq!(
            a.get("delay_fs").unwrap().as_f64().unwrap().to_bits(),
            expected.solution.delay_fs.to_bits()
        );
        assert_eq!(
            a.get("total_width").unwrap().as_f64().unwrap().to_bits(),
            expected.solution.total_width.to_bits()
        );
        assert_eq!(
            a.get("repeaters").unwrap().as_arr().unwrap().len(),
            expected.solution.assignment.len()
        );
    }

    #[test]
    fn batch_reports_per_net_results() {
        let state = state();
        let nets = NetGenerator::suite(RandomNetConfig::default(), 3, 2).unwrap();
        let encoded: Vec<String> = nets.iter().map(|n| net_to_json(n).to_string()).collect();
        let line = format!(
            r#"{{"id":4,"cmd":"batch","nets":[{}],"target_mult":1.4}}"#,
            encoded.join(",")
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let results = response.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        }
        // An impossible absolute target yields per-net errors, not a
        // request-level failure.
        let line = format!(
            r#"{{"id":5,"cmd":"batch","nets":[{}],"target_fs":1}}"#,
            encoded.join(",")
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        for r in response.get("results").unwrap().as_arr().unwrap() {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
            assert!(r.get("error").unwrap().as_str().is_some());
        }
    }

    /// A small masked tree: node 2 (the mid node) is blocked.
    fn masked_tree_json() -> String {
        r#"{"driver":120,"nodes":[[0,0.08,0.2,1400,null,false],[1,0.06,0.18,1200,null,true],[2,0.08,0.2,1100,60,false],[1,0.08,0.2,1000,50,false]]}"#
            .to_string()
    }

    #[test]
    fn solve_tree_masks_are_binding_and_allowed_overrides_blocked_flags() {
        let state = state();
        let tree = masked_tree_json();
        let line = format!(r#"{{"id":1,"cmd":"solve_tree","tree":{tree},"target_mult":1.2}}"#);
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        // No buffer may sit on a blocked fine-tree node: `buffers`
        // indexes the fine subdivision, so project the mask the same
        // way the engine does and check every reported site.
        let tree_net_parsed = tree_from_json(&parse_json(&tree).unwrap()).unwrap();
        let rc = RcTree::from_tree_net(&tree_net_parsed, state.engine().technology().device());
        let (fine, map) = rc.subdivided(TreeRipConfig::paper().fine_step_um);
        let projected = rc.project_allowed(&fine, &map, &tree_net_parsed.allowed_mask());
        for buffer in response.get("buffers").unwrap().as_arr().unwrap() {
            let node = buffer.as_arr().unwrap()[0].as_usize().unwrap();
            assert!(
                projected[node],
                "buffer on a blocked fine node {node}: {response}"
            );
        }
        // An explicit `allowed` equal to the tree's own mask answers
        // byte-identically: the two spellings are one request.
        let line_override = format!(
            r#"{{"id":1,"cmd":"solve_tree","tree":{tree},"target_mult":1.2,"allowed":[true,true,false,true,true]}}"#
        );
        let (override_response, _) = state.handle_line(&line_override);
        assert_eq!(response.to_string(), override_response.to_string());
        // A misaligned or non-boolean override is a request error.
        let (bad, _) = state.handle_line(&format!(
            r#"{{"cmd":"solve_tree","tree":{tree},"target_mult":1.2,"allowed":[true,true]}}"#
        ));
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(bad
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("allowed"));
        let (bad, _) = state.handle_line(&format!(
            r#"{{"cmd":"solve_tree","tree":{tree},"target_mult":1.2,"allowed":[true,1,false,true,true]}}"#
        ));
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(bad
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("boolean"));
    }

    #[test]
    fn reset_stats_rezeroes_counters_without_dropping_caches() {
        let state = state();
        let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
            .unwrap()
            .remove(0);
        let solve = format!(
            r#"{{"id":1,"cmd":"solve","net":{},"target_mult":1.4}}"#,
            net_to_json(&net)
        );
        let (cold, _) = state.handle_line(&solve);
        assert_eq!(cold.get("ok"), Some(&Json::Bool(true)));
        let (reset, stop) = state.handle_line(r#"{"id":2,"cmd":"reset_stats"}"#);
        assert!(!stop);
        assert_eq!(reset.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(reset.get("reset"), Some(&Json::Bool(true)));
        // The response carries the pre-reset counters (2 requests so far).
        assert_eq!(reset.get("requests").unwrap().as_f64(), Some(2.0));
        assert!(reset.get("misses").unwrap().as_f64().unwrap() > 0.0);
        // After the reset the counters restart…
        let (stats, _) = state.handle_line(r#"{"id":3,"cmd":"stats"}"#);
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("nets_solved").unwrap().as_f64(), Some(0.0));
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(0.0));
        // …but the caches survive: a warm repeat answers byte-identically
        // and counts only hits.
        let (warm, _) = state.handle_line(&solve);
        assert_eq!(cold.to_string(), warm.to_string());
        let (stats, _) = state.handle_line(r#"{"id":4,"cmd":"stats"}"#);
        assert_eq!(stats.get("misses").unwrap().as_f64(), Some(0.0));
        assert!(stats.get("hits").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn stats_and_shutdown_respond() {
        let state = state();
        let (response, stop) = state.handle_line(r#"{"id":9,"cmd":"stats"}"#);
        assert!(!stop);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("requests").unwrap().as_f64(), Some(1.0));
        assert_eq!(response.get("hit_rate").unwrap().as_f64(), Some(0.0));
        let (response, stop) = state.handle_line(r#"{"id":10,"cmd":"shutdown"}"#);
        assert!(stop);
        assert_eq!(response.get("stopping"), Some(&Json::Bool(true)));
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let (response, stop) = request("not json at all");
        assert!(!stop);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        let (response, _) = request(r#"{"id":3}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("cmd"));
        assert_eq!(response.get("id").unwrap().as_f64(), Some(3.0));
        let (response, _) = request(r#"{"id":3,"cmd":"warp"}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("warp"));
        let (response, _) = request(r#"{"cmd":"solve","net":{"segments":[[1000,0.08,0.2]]}}"#);
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("target"));
        let (response, _) = request(
            r#"{"cmd":"solve","net":{"segments":[[1000,0.08,0.2]]},"target_ns":1,"target_mult":2}"#,
        );
        assert!(response
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("mutually exclusive"));
        let (response, _) = request(r#"{"cmd":"solve","net":{"segments":[]},"target_mult":1.4}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn infeasible_solves_are_errors_with_the_reason() {
        let state = state();
        let net = NetGenerator::suite(RandomNetConfig::default(), 11, 1)
            .unwrap()
            .remove(0);
        let line = format!(
            r#"{{"id":2,"cmd":"solve","net":{},"target_fs":1}}"#,
            net_to_json(&net)
        );
        let (response, _) = state.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert!(response.get("error").unwrap().as_str().unwrap().len() > 4);
    }
}
